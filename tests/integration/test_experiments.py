"""Integration: every figure module runs end-to-end at reduced scale.

The full paper-scale parameters live in the benchmark harness; here each
experiment runs with shrunken sweeps so the suite stays fast while proving
the figure code paths work and produce well-formed tables.
"""

import pytest

from repro.experiments import FIGURES, fig1, fig2, fig3, fig4, fig5
from repro.experiments import fig6, fig7, fig8, fig9, ablations


class TestToyFigures:
    def test_fig2_exact(self):
        result = fig2.run()
        avg_row = result.rows[-1]
        assert avg_row["event_level_ect"] == pytest.approx(22 / 3)
        assert avg_row["flow_level_ect"] == pytest.approx(32 / 3)

    def test_fig3_exact(self):
        result = fig3.run()
        avg_row = result.rows[-1]
        assert avg_row["fifo_ect"] == pytest.approx(7.0)
        assert avg_row["cost_order_ect"] == pytest.approx(5.0)


class TestSimFiguresSmoke:
    def test_fig1_small(self):
        result = fig1.run(seed=1, probes=40,
                          utilizations=(0.2, 0.6), flow_sizes=(10.0, 50.0))
        assert len(result.rows) == 8  # 2 traces x 2 utils x 2 sizes
        for row in result.rows:
            assert 0.0 <= row["desired_path_success"] <= 1.0
            assert row["any_path_success"] >= row["desired_path_success"]
        # success at low utilization must dominate high utilization
        by_key = {(r["trace"], r["utilization"], r["flow_mbps"]):
                  r["desired_path_success"] for r in result.rows}
        lows = [v for (t, u, s), v in by_key.items() if u <= 0.3]
        highs = [v for (t, u, s), v in by_key.items() if u >= 0.5]
        assert sum(lows) / len(lows) >= sum(highs) / len(highs)

    def test_fig4_small(self):
        result = fig4.run(seed=1, events=4, mean_flows=(10,))
        row = result.rows[0]
        assert row["avg_speedup"] > 1.0
        assert row["flow_avg_norm"] == pytest.approx(1.0)

    def test_fig5_small(self):
        result = fig5.run(seed=1, event_counts=(5,))
        assert result.rows[0]["avg_speedup"] > 1.0

    def test_fig6_small(self):
        result = fig6.run(seed=1, event_counts=(8,))
        row = result.rows[0]
        assert row["fifo_plan_s"] < row["lmtf_plan_s"]
        assert row["plmtf_avg_ect_red%"] > 0

    def test_fig7_small(self):
        result = fig7.run(seed=1, events=8, utilizations=(0.6,))
        assert len(result.rows) == 2  # heterogeneous + synchronous
        for row in result.rows:
            assert row["avg_ect_red%"] > 0

    def test_fig8_small(self):
        result = fig8.run(seed=1, event_counts=(8,))
        assert result.rows[0]["plmtf_avg_qd_red%"] > 0

    def test_fig9_small(self):
        result = fig9.run(seed=1, events=8)
        assert len(result.rows) == 8
        assert result.notes


class TestAblationsSmoke:
    def test_alpha_sweep(self):
        result = ablations.alpha_sweep(seed=1, events=8, alphas=(1, 2))
        assert [row["alpha"] for row in result.rows] == [1, 2]

    def test_admission_sweep(self):
        result = ablations.admission_sweep(seed=1, events=8,
                                           modes=("shared", "feasible"))
        assert len(result.rows) == 2

    def test_migration_strategies(self):
        result = ablations.migration_strategies(seed=1, events=4)
        assert {row["strategy"] for row in result.rows} == \
            {"best_fit", "smallest_first", "largest_first"}

    def test_barrier_sweep(self):
        result = ablations.barrier_sweep(seed=1, events=6)
        assert len(result.rows) == 6  # 2 barriers x 3 schedulers

    def test_consistency_rate(self):
        result = ablations.consistency_rate(seed=1, events=4,
                                            utilizations=(0.5,))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["sequential_safe%"] == 100.0
        assert 0.0 <= row["one_shot_safe%"] <= 100.0

    def test_rule_budget_sweep(self):
        result = ablations.rule_budget_sweep(seed=1,
                                             budgets=(None, 60))
        assert len(result.rows) == 2
        unlimited, tight = result.rows
        assert tight["bg_flows_placed"] <= unlimited["bg_flows_placed"]
        assert tight["probe_success%"] <= unlimited["probe_success%"]


class TestRegistry:
    def test_every_figure_registered(self):
        for name in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                     "fig7", "fig8", "fig9"):
            assert name in FIGURES

    def test_tables_render(self):
        table = fig2.run().to_table()
        assert "fig2" in table
