"""Integration tests pinning the parallel runner's core guarantees on a
real experiment: ``jobs=N`` is byte-identical to ``jobs=1``, and a resumed
sweep recomputes only what the checkpoint lost.

Uses a tiny ``fig6_with_spread`` configuration (2 trials x 4 events) to
keep the wall-clock cost of the process fan-out acceptable.
"""

import json

import pytest

from repro.experiments.multiseed import fig6_with_spread
from repro.experiments.runner import SweepListener


class Recorder(SweepListener):
    def __init__(self):
        self.started = []
        self.resumed = []

    def on_cell_start(self, key, attempt):
        self.started.append(key)

    def on_cell_resumed(self, key):
        self.resumed.append(key)


SWEEP = dict(seed=1, events=4, seeds=2)


class TestParallelDeterminism:
    def test_jobs2_matches_jobs1_byte_identical(self):
        sequential = fig6_with_spread(**SWEEP, jobs=1)
        parallel = fig6_with_spread(**SWEEP, jobs=2)
        assert parallel.to_json() == sequential.to_json()

    def test_runner_result_is_stable_across_repeat_calls(self):
        # hermetic cells: a second in-process run in the same (dirty)
        # process produces the same bytes
        first = fig6_with_spread(**SWEEP, jobs=1)
        second = fig6_with_spread(**SWEEP, jobs=1)
        assert first.to_json() == second.to_json()


class TestCheckpointResume:
    def test_resume_recomputes_only_lost_cells(self, tmp_path):
        ck = tmp_path / "fig6.jsonl"
        reference = fig6_with_spread(**SWEEP, jobs=2, checkpoint=ck)
        lines = ck.read_text().splitlines()
        assert len(lines) == 6  # 2 trials x 3 schedulers

        # simulate a kill mid-append: last full record lost, torn tail left
        ck.write_text("\n".join(lines[:-1]) + '\n{"key": "torn...\n')
        lost_key = json.loads(lines[-1])["key"]

        listener = Recorder()
        with pytest.warns(RuntimeWarning, match="malformed"):
            resumed = fig6_with_spread(**SWEEP, jobs=1, checkpoint=ck,
                                       resume=True, listener=listener)
        assert resumed.to_json() == reference.to_json()
        assert listener.started == [lost_key]
        assert len(listener.resumed) == 5

    def test_full_checkpoint_resumes_without_any_recompute(self, tmp_path):
        ck = tmp_path / "fig6.jsonl"
        reference = fig6_with_spread(**SWEEP, jobs=2, checkpoint=ck)
        listener = Recorder()
        resumed = fig6_with_spread(**SWEEP, jobs=2, checkpoint=ck,
                                   resume=True, listener=listener)
        assert resumed.to_json() == reference.to_json()
        assert listener.started == []
        assert len(listener.resumed) == 6

    def test_changed_sweep_params_invalidate_checkpoint(self, tmp_path):
        ck = tmp_path / "fig6.jsonl"
        fig6_with_spread(**SWEEP, jobs=1, checkpoint=ck)
        listener = Recorder()
        # different alpha -> different cell fingerprints for lmtf/plmtf
        fig6_with_spread(**SWEEP, alpha=2, jobs=1, checkpoint=ck,
                         resume=True, listener=listener)
        # fifo cells are alpha-independent and stay cached
        assert len(listener.resumed) == 2
        assert len(listener.started) == 4
