"""Sharded runs against the pinned schedule hashes.

The acceptance bar for the sharded admission pipeline: wrapping every
scheduler in :class:`~repro.sched.shard.ShardedScheduler` — at any shard
count, with or without the lifecycle auditor — must reproduce the exact
bytes of the *unsharded* pinned schedules in
:mod:`tests.integration.test_schedule_pins`. Sharding is a deployment
shape, not a policy: if a digest here drifts from the serial pin, the
speculative probe / deterministic merge broke byte-identity somewhere.

The shuffled-executor cases go further: they probe candidates in a
deliberately scrambled order and still must hit the serial pin — the
property that makes running shards concurrently safe at all.
"""

import pytest

from repro.experiments import fig5, fig6

from .test_schedule_pins import (
    FIG5_MINI_SHA256,
    FIG6_MINI_SHA256,
    _pinned_digest,
)


@pytest.fixture(params=["plain", "audited"])
def audit_mode(request, monkeypatch):
    if request.param == "audited":
        monkeypatch.setenv("REPRO_AUDIT", "1")
    else:
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
    return request.param


class TestShardedPins:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_fig5_mini_sharded_is_byte_identical(self, shards):
        digest = _pinned_digest(
            lambda: fig5.run(seed=0, utilization=0.6, event_counts=(6,),
                             shards=shards))
        assert digest == FIG5_MINI_SHA256, (
            f"fig5 mini-run diverged from the serial pin at "
            f"shards={shards}: {digest}")

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_fig6_mini_sharded_is_byte_identical(self, shards):
        digest = _pinned_digest(
            lambda: fig6.run(seed=0, utilization=0.6, event_counts=(6,),
                             shards=shards))
        assert digest == FIG6_MINI_SHA256, (
            f"fig6 mini-run diverged from the serial pin at "
            f"shards={shards}: {digest}")

    def test_fig6_sharded_audited_is_byte_identical(self, audit_mode):
        # the auditor's ledger must also hold on sharded runs — any
        # lifecycle drift raises AuditError before the hash compares
        digest = _pinned_digest(
            lambda: fig6.run(seed=0, utilization=0.6, event_counts=(6,),
                             shards=4))
        assert digest == FIG6_MINI_SHA256, (
            f"fig6 sharded mini-run ({audit_mode}) diverged: {digest}")
