"""Integration: pin the paper's worked examples and headline directions.

These tests encode what the paper *states*, so a regression that silently
changes the reproduced semantics fails loudly here.
"""

import pytest

from repro.experiments import fig2, fig3
from repro.experiments.toys import (
    cost_order_ects,
    event_level_ects,
    fifo_ects,
    flow_level_ects,
    paper_fig2_events,
    paper_fig3_events,
)


class TestFig2Statement:
    """Paper §II: 'The average ECT of the three events is (3+7+12)/3=22/3
    under the event-level scheduling manner, which is lower than
    (9+11+12)/3=32/3 under the flow-level scheduling manner.'"""

    def test_event_level_completions(self):
        assert event_level_ects(paper_fig2_events()) == [3.0, 7.0, 12.0]

    def test_flow_level_completions(self):
        assert flow_level_ects(paper_fig2_events(),
                               round_order=[2, 1, 0]) == [9.0, 11.0, 12.0]

    def test_averages(self):
        events = paper_fig2_events()
        event_avg = sum(event_level_ects(events)) / 3
        flow_avg = sum(flow_level_ects(events, round_order=[2, 1, 0])) / 3
        assert event_avg == pytest.approx(22 / 3)
        assert flow_avg == pytest.approx(32 / 3)
        assert event_avg < flow_avg

    def test_figure_module_agrees(self):
        rows = fig2.run().rows
        assert rows[0]["event_level_ect"] == 3.0
        assert rows[2]["flow_level_ect"] == 12.0


class TestFig3Statement:
    """Paper §IV-B: FIFO average ECT (5+7+9)/3 = 7 s and tail 9 s; cost
    ordering gives (2+4+9)/3 = 5 s with the same tail."""

    def test_fifo(self):
        ects = fifo_ects(paper_fig3_events())
        assert ects == [5.0, 7.0, 9.0]

    def test_cost_order(self):
        ects = cost_order_ects(paper_fig3_events())
        assert sorted(ects.values()) == [2.0, 4.0, 9.0]

    def test_tail_preserved(self):
        events = paper_fig3_events()
        assert max(fifo_ects(events)) == 9.0
        assert max(cost_order_ects(events).values()) == 9.0

    def test_figure_module_agrees(self):
        rows = fig3.run().rows
        assert rows[-1]["fifo_ect"] == pytest.approx(7.0)
        assert rows[-1]["cost_order_ect"] == pytest.approx(5.0)
