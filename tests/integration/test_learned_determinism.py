"""Integration: L-LMTF is seed-deterministic.

The acceptance claim: with the same seed (and, where used, the same
trained model file), L-LMTF produces an identical schedule hash across
repeat runs, across ``--jobs`` fan-out of bench cells, and across shard
counts of the sharded admission pipeline. This holds because candidate
ranking is RNG-free, the sample draws match exact LMTF's stream, and all
model mutation happens in the serial ``decide`` step.
"""

from dataclasses import replace

from repro.experiments.common import DEFAULTS, Scenario
from repro.experiments.learnedbench import (
    quality_cell,
    schedule_digest,
    scheduler_spec,
)
from repro.experiments.runner import Cell, hermetic_ids, run_cells
from repro.sched import build_scheduler
from repro.traces.events import EventGeneratorConfig

QUALITY_PARAMS = {"style": "fig5", "events": 10, "k": 4, "seed": 3,
                  "min_flows": 4, "max_flows": 8, "warmup": 8}


def _scenario(seed: int = 3) -> Scenario:
    return Scenario(utilization=0.5, seed=seed, events=10, churn=False,
                    event_config=EventGeneratorConfig(min_flows=4,
                                                      max_flows=8),
                    defaults=replace(DEFAULTS, k=4))


def _run(scheduler, seed: int = 3):
    # Global flow/event id counters feed the ECMP path hash, so direct
    # (non-cell-runner) runs must reset them to compare digests.
    with hermetic_ids():
        scenario = _scenario(seed)
        sim = scenario.simulator(scheduler)
        sim.submit(scenario.generate_events())
        return sim.run()


def _hermetic_quality_cell(**params):
    with hermetic_ids():
        return quality_cell(**params)


class TestLearnedDeterminism:
    def test_repeat_runs_hash_identically(self):
        first = _hermetic_quality_cell(**QUALITY_PARAMS)
        second = _hermetic_quality_cell(**QUALITY_PARAMS)
        assert first["digest_learned"] == second["digest_learned"]
        assert first["digest_lmtf"] == second["digest_lmtf"]

    def test_shard_counts_hash_identically(self):
        digests = {
            shards: schedule_digest(_run(build_scheduler(
                scheduler_spec("learned", seed=3, warmup=8,
                               shards=shards))))
            for shards in (1, 2, 4)
        }
        assert len(set(digests.values())) == 1, digests

    def test_jobs_fanout_hashes_identically(self):
        cells = [Cell(key=f"cell{i}",
                      fn="repro.experiments.learnedbench:quality_cell",
                      params=dict(QUALITY_PARAMS))
                 for i in range(2)]
        serial = run_cells(cells, jobs=1)
        pooled = run_cells(cells, jobs=2)
        for cell in cells:
            assert serial[cell.key].value == pooled[cell.key].value

    def test_pretrained_model_hashes_identically(self, tmp_path):
        from repro.sched.learned.scheduler import LearnedLMTFScheduler

        donor = LearnedLMTFScheduler(alpha=4, seed=12, budget=2,
                                     warmup=0, error_threshold=1e9)
        _run(donor, seed=12)  # train in-run
        path = tmp_path / "model.json"
        donor.save_model(path)

        digests = [
            schedule_digest(_run(LearnedLMTFScheduler(
                alpha=4, seed=12, budget=2, warmup=0,
                error_threshold=1e9, model_path=str(path)), seed=12))
            for _ in range(2)
        ]
        assert digests[0] == digests[1]
