"""Pinned end-to-end schedule hashes.

These pins were captured on the dict-keyed link-state implementation
immediately before the integer-indexed kernel landed, so they assert the
strongest contract the kernel makes: the rewrite is *schedule-invisible* —
every RNG draw, tie-break, admission, and reported metric is bit-identical,
all the way to the serialized JSON. A pin failure means some refactor
changed simulated behavior, not just wall-clock speed; the fix is to find
the divergence, not to re-pin (re-pinning is only legitimate for a change
that *intends* to alter planning semantics, e.g. a planner cost-model fix).
"""

import hashlib

from repro.core.flow import flow_id_state, set_flow_id_state
from repro.experiments import fig5

#: fig5.run(seed=0, utilization=0.6, event_counts=(6,)) on the pre-kernel
#: tree (planning-ops accounting fixes included).
FIG5_MINI_SHA256 = \
    "ab18203c7856f8c41d1451003d3c5903d9791d50d071c157b00d1db368a203e0"


class TestSchedulePins:
    def test_fig5_mini_run_is_byte_identical(self):
        # Flow ids feed the ECMP desired-path hash, so the run is a pure
        # function of its spec only from a pinned counter state (0 = fresh
        # process, how the baseline was captured). Restore afterwards so
        # flows minted by other tests cannot collide.
        saved = flow_id_state()
        set_flow_id_state(0)
        try:
            result = fig5.run(seed=0, utilization=0.6, event_counts=(6,))
        finally:
            set_flow_id_state(saved)
        digest = hashlib.sha256(result.to_json().encode()).hexdigest()
        assert digest == FIG5_MINI_SHA256, (
            "fig5 mini-run JSON diverged from the pinned pre-kernel "
            f"schedule: {digest}")
