"""Pinned end-to-end schedule hashes.

These pins were captured on the dict-keyed link-state implementation
immediately before the integer-indexed kernel landed, so they assert the
strongest contract the kernel makes: the rewrite is *schedule-invisible* —
every RNG draw, tie-break, admission, and reported metric is bit-identical,
all the way to the serialized JSON. A pin failure means some refactor
changed simulated behavior, not just wall-clock speed; the fix is to find
the divergence, not to re-pin (re-pinning is only legitimate for a change
that *intends* to alter planning semantics, e.g. a planner cost-model fix).

Each pin runs twice: plain, and with ``REPRO_AUDIT=1`` so every simulator
in the grid carries a :class:`~repro.sim.audit.LifecycleAuditor`. The
audited digests must equal the plain pins — the auditor only reads state,
so enabling it in production can never change a schedule — and any ledger
drift inside these workloads (faults, churn, retries, drops included)
would surface here as an ``AuditError`` instead of a hash mismatch.
"""

import hashlib

import pytest

from repro.core.flow import flow_id_state, set_flow_id_state
from repro.experiments import fig5, fig6
from repro.experiments.robustness import failure_sweep

#: fig5.run(seed=0, utilization=0.6, event_counts=(6,)) on the pre-kernel
#: tree (planning-ops accounting fixes included).
FIG5_MINI_SHA256 = \
    "ab18203c7856f8c41d1451003d3c5903d9791d50d071c157b00d1db368a203e0"

#: fig6.run(seed=0, utilization=0.6, event_counts=(6,)) — churny
#: heterogeneous workload through all three schedulers — captured on the
#: monolithic pre-pipeline simulator. Pins the lifecycle/pipeline/hook-bus
#: refactor as behavior-preserving.
FIG6_MINI_SHA256 = \
    "cb9ba7acb7f2a4611b773884587400e7fe713ab672e5f31fe45a6212fe78682e"

#: failure_sweep(seed=1, events=4, utilization=0.5, fault_rates=(0.0, 0.05),
#: horizon=40.0) — faults + background churn + flaky control plane +
#: defer/drop budgets, captured on the monolithic pre-pipeline simulator.
#: The differential test for the refactored round pipeline: every fault
#: injection, repair enqueue, execution retry, deferral and drop must land
#: on identical simulated timestamps and counters.
FAULTED_GRID_SHA256 = \
    "dafdd2d76ac406aaff795e88470ef1e98649b3541940e4d9919c403e7c2dad16"


def _pinned_digest(run):
    """Digest of ``run()``'s JSON from a pinned flow-id counter state.

    Flow ids feed the ECMP desired-path hash, so a run is a pure function
    of its spec only from a pinned counter state (0 = fresh process, how
    the baselines were captured). The counter is restored afterwards so
    flows minted by other tests cannot collide.
    """
    saved = flow_id_state()
    set_flow_id_state(0)
    try:
        result = run()
    finally:
        set_flow_id_state(saved)
    return hashlib.sha256(result.to_json().encode()).hexdigest()


def _fig5_digest():
    return _pinned_digest(
        lambda: fig5.run(seed=0, utilization=0.6, event_counts=(6,)))


def _fig6_digest():
    return _pinned_digest(
        lambda: fig6.run(seed=0, utilization=0.6, event_counts=(6,)))


def _faulted_grid_digest():
    # The full fault pipeline in one pin: mid-run link failures with
    # heals, repair events competing in the queue, an unreliable
    # control plane (install/migration failures + jitter) driving
    # retries and deferrals, drop budgets, and background churn — all
    # through FIFO/LMTF/P-LMTF. This is the differential test that the
    # staged round pipeline is byte-identical to the monolith it
    # replaced.
    return _pinned_digest(
        lambda: failure_sweep(seed=1, events=4, utilization=0.5,
                              fault_rates=(0.0, 0.05), horizon=40.0))


@pytest.fixture(params=["plain", "audited"])
def audit_mode(request, monkeypatch):
    """Run each pin twice: bare, and with the lifecycle auditor attached."""
    if request.param == "audited":
        monkeypatch.setenv("REPRO_AUDIT", "1")
    else:
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
    return request.param


class TestSchedulePins:
    def test_fig5_mini_run_is_byte_identical(self, audit_mode):
        digest = _fig5_digest()
        assert digest == FIG5_MINI_SHA256, (
            f"fig5 mini-run JSON ({audit_mode}) diverged from the pinned "
            f"pre-kernel schedule: {digest}")

    def test_fig6_mini_run_is_byte_identical(self, audit_mode):
        digest = _fig6_digest()
        assert digest == FIG6_MINI_SHA256, (
            f"fig6 mini-run JSON ({audit_mode}) diverged from the pinned "
            f"pre-pipeline schedule: {digest}")

    def test_faulted_churn_flaky_grid_is_byte_identical(self, audit_mode):
        digest = _faulted_grid_digest()
        assert digest == FAULTED_GRID_SHA256, (
            f"faulted+churn+flaky-control-plane grid JSON ({audit_mode}) "
            f"diverged from the pinned pre-pipeline schedule: {digest}")
