"""Integration: the example scripts run end-to-end.

The heavyweight k=8 comparison (`scheduler_comparison.py`) is exercised by
the benchmark harness instead; these cover the k=4 walk-throughs.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Cost(U)" in out
        assert "fifo:" in out and "plmtf:" in out

    def test_switch_upgrade(self):
        out = run_example("switch_upgrade.py")
        assert "SAFE TO UPGRADE" in out

    def test_vm_migration(self):
        out = run_example("vm_migration.py")
        assert "evacuation done" in out
        # P-LMTF parallelizes the per-host events
        lines = [l for l in out.splitlines() if "evacuation done" in l]
        assert len(lines) == 3

    def test_failure_recovery(self):
        out = run_example("failure_recovery.py")
        assert "FAILURE" in out
        assert "repair event completed" in out
        assert "healed" in out

    def test_trace_analysis(self):
        out = run_example("trace_analysis.py")
        assert "LMTF:" in out and "P-LMTF:" in out
        assert "structured log" in out

    def test_all_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "switch_upgrade.py", "vm_migration.py",
                "scheduler_comparison.py", "failure_recovery.py",
                "trace_analysis.py"} <= names
