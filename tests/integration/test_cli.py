"""Integration: the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.figure == "fig2"
        assert args.seed == 0
        assert args.events is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig6", "--seed", "3", "--events", "12",
             "--utilization", "0.6", "--alpha", "2"])
        assert args.seed == 3
        assert args.events == 12
        assert args.utilization == 0.6
        assert args.alpha == 2


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "ablation-alpha" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_runs_toy_figure(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "event_level_ect" in out
        assert "completed in" in out

    def test_runs_fig9_with_overrides(self, capsys):
        assert main(["fig9", "--events", "6", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "plmtf_qd_s" in out

    def test_extraneous_override_ignored(self, capsys):
        # fig2.run() takes no parameters; overrides must not crash it
        assert main(["fig2", "--events", "5"]) == 0
