"""Integration: crash-tolerant ``repro serve`` through the real CLI.

The in-process tests drive ``repro.cli.main`` directly (fast, no fork);
one subprocess test arms a real SIGKILL crash point through the
environment and proves the resumed run lands on the baseline's exact
schedule digest — a single cell of the full grid that
``scripts/check_crash_recovery.py`` sweeps.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_serve_parser, main
from repro.core.event import event_id_state, set_event_id_state
from repro.core.flow import flow_id_state, set_flow_id_state
from repro.sim.snapshot import CHECKPOINT_FILE, JOURNAL_FILE

REPO = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(autouse=True)
def _hermetic_ids():
    saved = (flow_id_state(), event_id_state())
    set_flow_id_state(0)
    set_event_id_state(0)
    yield
    set_flow_id_state(saved[0])
    set_event_id_state(saved[1])


def serve_args(state_dir, *extra):
    return ["serve", "--events", "4", "--rate", "1.0", "--k", "4",
            "--min-flows", "1", "--max-flows", "2", "--stats-every", "0",
            "--snapshot-every", "20", "--snapshot-dir", str(state_dir),
            "--state-dir", str(state_dir), *extra]


class TestServeParser:
    def test_recovery_flags(self):
        args = build_serve_parser().parse_args(
            ["--state-dir", "s", "--resume", "--shards", "4",
             "--scheduler", "l-lmtf", "--supervise", "2",
             "--stall-timeout", "30"])
        assert args.state_dir == "s"
        assert args.resume and args.shards == 4
        assert args.scheduler == "l-lmtf"
        assert args.supervise == 2 and args.stall_timeout == 30.0

    def test_defaults_leave_recovery_off(self):
        args = build_serve_parser().parse_args([])
        assert args.state_dir is None
        assert not args.resume and not args.fresh
        assert args.supervise is None


class TestServeStateDir:
    def test_run_leaves_final_checkpoint_and_journal(self, tmp_path,
                                                     capsys):
        state = tmp_path / "state"
        assert main(serve_args(state)) == 0
        out = capsys.readouterr().out
        assert "restarts=0" in out and "digest=" in out
        checkpoint = json.loads(
            (state / CHECKPOINT_FILE).read_text(encoding="utf-8"))
        assert checkpoint["origin"] == "final"
        assert (state / JOURNAL_FILE).stat().st_size > 0

    def test_rerun_refuses_existing_state(self, tmp_path, capsys):
        state = tmp_path / "state"
        assert main(serve_args(state)) == 0
        capsys.readouterr()
        set_flow_id_state(0)
        set_event_id_state(0)
        assert main(serve_args(state)) == 2
        err = capsys.readouterr().err
        assert "--resume" in err and "--fresh" in err

    def test_fresh_discards_and_reruns(self, tmp_path, capsys):
        state = tmp_path / "state"
        assert main(serve_args(state)) == 0
        capsys.readouterr()
        set_flow_id_state(0)
        set_event_id_state(0)
        assert main(serve_args(state, "--fresh")) == 0
        out = capsys.readouterr().out
        assert "discarded previous run" in out

    def test_resume_without_state_dir_is_an_error(self, capsys):
        assert main(["serve", "--resume"]) == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_resume_with_empty_state_dir_is_actionable(self, tmp_path,
                                                       capsys):
        state = tmp_path / "never-ran"
        state.mkdir()
        assert main(serve_args(state, "--resume")) == 2
        err = capsys.readouterr().err
        assert "holds no" in err and "remove --resume" in err

    def test_fresh_and_resume_conflict(self, tmp_path, capsys):
        assert main(serve_args(tmp_path, "--fresh", "--resume")) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestSigkillResume:
    def test_sigkill_mid_journal_append_resumes_exact(self, tmp_path):
        """One real-SIGKILL grid cell: kill halfway through a journal
        append (torn frame on disk), resume, compare final digests."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env.pop("REPRO_CRASH_AT", None)
        env.pop("REPRO_CRASH_MODE", None)

        def serve(state, *extra, crash=None):
            run_env = dict(env)
            if crash:
                run_env["REPRO_CRASH_AT"] = crash
            return subprocess.run(
                [sys.executable, "-m", "repro.cli",
                 *serve_args(state, *extra)],
                env=run_env, cwd=REPO, capture_output=True, text=True)

        baseline = serve(tmp_path / "baseline")
        assert baseline.returncode == 0, baseline.stderr
        crashed = serve(tmp_path / "crashed", crash="journal-append:3")
        assert crashed.returncode == -signal.SIGKILL
        resumed = serve(tmp_path / "crashed", "--resume")
        assert resumed.returncode == 0, resumed.stderr

        def digest(state):
            payload = json.loads((state / CHECKPOINT_FILE).read_text(
                encoding="utf-8"))
            assert payload["origin"] == "final"
            return payload["service"]["digest"]

        assert digest(tmp_path / "crashed") == digest(tmp_path / "baseline")
