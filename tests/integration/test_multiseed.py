"""Integration: the multi-seed statistical experiment."""

import pytest

from repro.experiments.multiseed import METRICS, fig6_with_spread


class TestFig6WithSpread:
    def test_small_run(self):
        result = fig6_with_spread(seed=1, events=5, seeds=2)
        # 2 schedulers x len(METRICS) rows
        assert len(result.rows) == 2 * len(METRICS)
        for row in result.rows:
            assert row["ci95_low%"] <= row["reduction_mean%"] \
                <= row["ci95_high%"]
            assert row["reduction_stdev"] >= 0

    def test_single_seed_has_zero_spread(self):
        result = fig6_with_spread(seed=1, events=5, seeds=1)
        assert all(row["reduction_stdev"] == 0 for row in result.rows)

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            fig6_with_spread(seeds=0)

    def test_registered(self):
        from repro.experiments import FIGURES
        assert "fig6-stats" in FIGURES
