"""Integration: the full pipeline on a k=4 Fat-Tree.

Loads Yahoo!-like background to 60%, queues Benson-style update events, and
runs every scheduler on identical network copies, checking both mechanical
soundness (invariants, completion) and the paper's qualitative orderings.
"""

import random

import pytest

from repro import (
    BackgroundLoader,
    BensonLikeTrace,
    CostReorderScheduler,
    EventGenerator,
    FatTreeTopology,
    FIFOScheduler,
    FlowLevelScheduler,
    LMTFScheduler,
    PathProvider,
    PLMTFScheduler,
    SimulationConfig,
    UpdateSimulator,
    YahooLikeTrace,
)
from repro.traces.events import EventGeneratorConfig


@pytest.fixture(scope="module")
def world():
    topo = FatTreeTopology(k=4)
    provider = PathProvider(topo)
    network = topo.network()
    trace = YahooLikeTrace(topo.hosts(), seed=11)
    loader = BackgroundLoader(network, provider, trace, random.Random(12))
    report = loader.load_to_utilization(0.6)
    assert report.utilization >= 0.55
    config = EventGeneratorConfig(min_flows=5, max_flows=20,
                                  host_demand_cap=100.0)
    generator = EventGenerator(
        BensonLikeTrace(topo.hosts(), seed=13, duration_median=1.0),
        config=config, seed=14)
    events = generator.generate(8)
    return topo, provider, network, events


def run(world, scheduler, **config_kwargs):
    topo, provider, network, events = world
    simulator = UpdateSimulator(
        network.copy(), provider, scheduler,
        config=SimulationConfig(seed=5, verify_invariants=True,
                                **config_kwargs))
    simulator.submit(events)
    return simulator.run()


class TestAllSchedulersComplete:
    @pytest.mark.parametrize("scheduler_factory", [
        FIFOScheduler,
        lambda: LMTFScheduler(alpha=2, seed=3),
        lambda: PLMTFScheduler(alpha=2, seed=3),
        CostReorderScheduler,
        FlowLevelScheduler,
        lambda: FlowLevelScheduler(order="arrival"),
    ])
    def test_completes_with_sane_metrics(self, world, scheduler_factory):
        metrics = run(world, scheduler_factory())
        assert metrics.event_count == 8
        assert metrics.average_ect > 0
        assert metrics.tail_ect >= metrics.p99_ect >= metrics.p95_ect
        assert metrics.worst_queuing_delay >= metrics.average_queuing_delay
        assert metrics.total_plan_time > 0
        assert len(metrics.per_event_ect) == 8


class TestPaperOrderings:
    def test_event_level_beats_flow_level(self, world):
        fifo = run(world, FIFOScheduler())
        flow = run(world, FlowLevelScheduler())
        assert fifo.average_ect < flow.average_ect
        assert fifo.tail_ect <= flow.tail_ect

    def test_plmtf_at_most_fifo_average(self, world):
        fifo = run(world, FIFOScheduler())
        plmtf = run(world, PLMTFScheduler(alpha=2, seed=3))
        assert plmtf.average_ect <= fifo.average_ect * 1.01
        assert plmtf.rounds <= fifo.rounds

    def test_plan_time_ordering(self, world):
        fifo = run(world, FIFOScheduler())
        lmtf = run(world, LMTFScheduler(alpha=2, seed=3))
        reorder = run(world, CostReorderScheduler())
        assert fifo.total_plan_time < lmtf.total_plan_time
        assert lmtf.total_plan_time < reorder.total_plan_time

    def test_same_events_same_arrivals(self, world):
        fifo = run(world, FIFOScheduler())
        lmtf = run(world, LMTFScheduler(alpha=2, seed=3))
        assert fifo.event_count == lmtf.event_count


class TestBarrierModes:
    def test_setup_barrier_runs(self, world):
        metrics = run(world, FIFOScheduler(), round_barrier="setup")
        assert metrics.event_count == 8
        # setup-time ECTs exclude flow transmissions: strictly faster
        completion = run(world, FIFOScheduler())
        assert metrics.average_ect < completion.average_ect


class TestChurnIntegration:
    def test_run_with_churn(self):
        topo = FatTreeTopology(k=4)
        provider = PathProvider(topo)
        network = topo.network()
        trace = YahooLikeTrace(topo.hosts(), seed=21,
                               duration_median=10.0)
        loader = BackgroundLoader(network, provider, trace,
                                  random.Random(22))
        loader.load_to_utilization(0.5, permanent=False)
        config = EventGeneratorConfig(min_flows=5, max_flows=15,
                                      host_demand_cap=100.0)
        events = EventGenerator(
            BensonLikeTrace(topo.hosts(), seed=23, duration_median=1.0),
            config=config, seed=24).generate(5)
        churn = YahooLikeTrace(topo.hosts(), seed=25, duration_median=10.0)
        simulator = UpdateSimulator(
            network, provider, LMTFScheduler(alpha=2, seed=3),
            config=SimulationConfig(seed=5, background_churn=True,
                                    verify_invariants=True),
            churn_trace=churn)
        simulator.submit(events)
        metrics = simulator.run()
        assert metrics.event_count == 5
        network.check_invariants()
