"""Integration: robustness experiments and failure-recovery pipeline."""

import random

import pytest

from repro import (
    BackgroundLoader,
    FailureInjector,
    FatTreeTopology,
    PathProvider,
    PLMTFScheduler,
    SimulationConfig,
    UpdateSimulator,
    YahooLikeTrace,
    repair_event,
)
from repro.experiments import robustness
from repro.network.topology.jellyfish import JellyfishTopology
from repro.network.topology.leafspine import LeafSpineTopology


class TestTopologySweep:
    def test_small_sweep_runs(self):
        builders = {
            "leaf-spine": lambda: LeafSpineTopology(
                leaves=4, spines=3, hosts_per_leaf=4),
            "jellyfish": lambda: JellyfishTopology(
                switches=12, degree=4, hosts_per_switch=2, seed=7),
        }
        result = robustness.topology_sweep(seed=1, events=6,
                                           utilization=0.5,
                                           topologies=builders)
        assert {row["topology"] for row in result.rows} == \
            {"leaf-spine", "jellyfish"}
        for row in result.rows:
            # gains may be modest off fat-tree, but P-LMTF must not regress
            # catastrophically
            assert row["plmtf_avg_ect_red%"] > -20


class TestOracleComparison:
    def test_small_comparison_runs(self):
        result = robustness.oracle_comparison(seed=1, events=8,
                                              utilization=0.6)
        names = {row["scheduler"] for row in result.rows}
        assert "lmtf" in names
        assert "oracle-sjf-duration" in names
        assert len(result.rows) == 4  # lmtf + 3 oracles


class TestFailureRecoveryPipeline:
    def test_core_failure_repair_end_to_end(self):
        topology = FatTreeTopology(k=4)
        provider = PathProvider(topology)
        network = topology.network()
        trace = YahooLikeTrace(topology.hosts(), seed=30)
        loader = BackgroundLoader(network, provider, trace,
                                  random.Random(31))
        loader.load_to_utilization(0.45)

        injector = FailureInjector(network)
        record = injector.fail_switch("c0_0")
        assert record.stranded  # a 45%-loaded fabric uses every core

        event = repair_event(record, duration=5.0)
        simulator = UpdateSimulator(
            network, provider, PLMTFScheduler(alpha=2, seed=32),
            config=SimulationConfig(seed=33, verify_invariants=True))
        simulator.submit([event])
        metrics = simulator.run()
        assert metrics.event_count == 1
        # nothing routed through the dead switch during the repair
        assert network.capacity("c0_0", "a0_0") == 0.0
        injector.heal(record)
        assert network.capacity("c0_0", "a0_0") == 1000.0

    def test_repair_infeasible_when_everything_dead(self):
        topology = FatTreeTopology(k=4)
        network = topology.network()
        provider = PathProvider(topology)
        from repro.core.flow import Flow
        network.place(Flow(flow_id="x", src="h0_0_0", dst="h1_0_0",
                           demand=10.0, duration=1.0),
                      ("h0_0_0", "e0_0", "a0_0", "c0_0", "a1_0", "e1_0",
                       "h1_0_0"))
        injector = FailureInjector(network)
        record = injector.fail_switch("e0_0")  # the host's only edge switch
        event = repair_event(record, duration=1.0)
        simulator = UpdateSimulator(network, provider,
                                    PLMTFScheduler(alpha=2, seed=1),
                                    config=SimulationConfig(seed=2))
        simulator.submit([event])
        from repro.core.exceptions import SimulationError
        with pytest.raises(SimulationError, match="deadlock"):
            simulator.run()


class TestFailureSweep:
    SWEEP = dict(seed=1, events=5, utilization=0.5,
                 fault_rates=(0.0, 0.05), horizon=60.0)

    def test_small_sweep_runs_with_accounting(self):
        result = robustness.failure_sweep(**self.SWEEP)
        assert len(result.rows) == 2 * 3  # 2 rates x 3 schedulers
        by_rate = {}
        for row in result.rows:
            by_rate.setdefault(row["fault_rate"], []).append(row)
        # The zero-rate rows ran the same unreliable control plane, so
        # retries may be nonzero, but no faults can have been injected.
        for row in by_rate[0.0]:
            assert row["faults"] == 0
        assert any(row["faults"] > 0 for row in by_rate[0.05])

    def test_jobs2_matches_jobs1_byte_identical(self):
        sequential = robustness.failure_sweep(**self.SWEEP, jobs=1)
        parallel = robustness.failure_sweep(**self.SWEEP, jobs=2)
        assert parallel.to_json() == sequential.to_json()

    def test_resume_after_partial_checkpoint(self, tmp_path):
        ck = tmp_path / "failures.jsonl"
        reference = robustness.failure_sweep(**self.SWEEP, jobs=2,
                                             checkpoint=ck)
        lines = ck.read_text().splitlines()
        assert len(lines) == 6
        ck.write_text("\n".join(lines[:3]) + "\n")  # lose half the cells
        resumed = robustness.failure_sweep(**self.SWEEP, jobs=1,
                                           checkpoint=ck, resume=True)
        assert resumed.to_json() == reference.to_json()
