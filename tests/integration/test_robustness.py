"""Integration: robustness experiments and failure-recovery pipeline."""

import random

import pytest

from repro import (
    BackgroundLoader,
    FailureInjector,
    FatTreeTopology,
    PathProvider,
    PLMTFScheduler,
    SimulationConfig,
    UpdateSimulator,
    YahooLikeTrace,
    repair_event,
)
from repro.experiments import robustness
from repro.network.topology.jellyfish import JellyfishTopology
from repro.network.topology.leafspine import LeafSpineTopology


class TestTopologySweep:
    def test_small_sweep_runs(self):
        builders = {
            "leaf-spine": lambda: LeafSpineTopology(
                leaves=4, spines=3, hosts_per_leaf=4),
            "jellyfish": lambda: JellyfishTopology(
                switches=12, degree=4, hosts_per_switch=2, seed=7),
        }
        result = robustness.topology_sweep(seed=1, events=6,
                                           utilization=0.5,
                                           topologies=builders)
        assert {row["topology"] for row in result.rows} == \
            {"leaf-spine", "jellyfish"}
        for row in result.rows:
            # gains may be modest off fat-tree, but P-LMTF must not regress
            # catastrophically
            assert row["plmtf_avg_ect_red%"] > -20


class TestOracleComparison:
    def test_small_comparison_runs(self):
        result = robustness.oracle_comparison(seed=1, events=8,
                                              utilization=0.6)
        names = {row["scheduler"] for row in result.rows}
        assert "lmtf" in names
        assert "oracle-sjf-duration" in names
        assert len(result.rows) == 4  # lmtf + 3 oracles


class TestFailureRecoveryPipeline:
    def test_core_failure_repair_end_to_end(self):
        topology = FatTreeTopology(k=4)
        provider = PathProvider(topology)
        network = topology.network()
        trace = YahooLikeTrace(topology.hosts(), seed=30)
        loader = BackgroundLoader(network, provider, trace,
                                  random.Random(31))
        loader.load_to_utilization(0.45)

        injector = FailureInjector(network)
        record = injector.fail_switch("c0_0")
        assert record.stranded  # a 45%-loaded fabric uses every core

        event = repair_event(record, duration=5.0)
        simulator = UpdateSimulator(
            network, provider, PLMTFScheduler(alpha=2, seed=32),
            config=SimulationConfig(seed=33, verify_invariants=True))
        simulator.submit([event])
        metrics = simulator.run()
        assert metrics.event_count == 1
        # nothing routed through the dead switch during the repair
        assert network.capacity("c0_0", "a0_0") == 0.0
        injector.heal(record)
        assert network.capacity("c0_0", "a0_0") == 1000.0

    def test_repair_infeasible_when_everything_dead(self):
        topology = FatTreeTopology(k=4)
        network = topology.network()
        provider = PathProvider(topology)
        from repro.core.flow import Flow
        network.place(Flow(flow_id="x", src="h0_0_0", dst="h1_0_0",
                           demand=10.0, duration=1.0),
                      ("h0_0_0", "e0_0", "a0_0", "c0_0", "a1_0", "e1_0",
                       "h1_0_0"))
        injector = FailureInjector(network)
        record = injector.fail_switch("e0_0")  # the host's only edge switch
        event = repair_event(record, duration=1.0)
        simulator = UpdateSimulator(network, provider,
                                    PLMTFScheduler(alpha=2, seed=1),
                                    config=SimulationConfig(seed=2))
        simulator.submit([event])
        from repro.core.exceptions import SimulationError
        with pytest.raises(SimulationError, match="deadlock"):
            simulator.run()
