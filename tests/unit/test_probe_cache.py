"""Unit tests for link versioning, footprint recording, and the probe cache.

The contract under test (see ``docs/architecture.md``): a cache-enabled
scheduler run admits exactly the same events, in the same order, with the
same charged planning ops as an uncached run — the cache changes wall-clock
time only. The pieces proving that are each tested on their own (version
counters, the footprint recorder, the RNG draw counter, cache invalidation)
and then the end-to-end equivalence is asserted for LMTF and P-LMTF, both
on static scheduling rounds and through full simulations.
"""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import BOT, TOP, ab_flow, diamond_setup  # noqa: E402
from helpers import diamond_topology  # noqa: E402

from repro.core.event import make_event
from repro.core.exceptions import TopologyError
from repro.core.planner import EventPlanner
from repro.network.footprint import (
    DrawCountingRandom,
    Footprint,
    FootprintRecorder,
)
from repro.network.routing.provider import PathProvider
from repro.network.topology.fattree import FatTreeTopology
from repro.network.view import NetworkView
from repro.sched.base import QueuedEvent, SchedulingContext
from repro.sched.cache import ProbeCache
from repro.sched.lmtf import LMTFScheduler
from repro.sched.plmtf import PLMTFScheduler
from repro.sim.simulator import SimulationConfig, UpdateSimulator
from repro.sim.timing import TimingModel
from repro.traces.background import BackgroundLoader
from repro.traces.benson import BensonLikeTrace
from repro.traces.yahoo import YahooLikeTrace


# ------------------------------------------------------------ version counters


class TestLinkVersions:
    def test_fresh_network_is_version_zero(self):
        net, _ = diamond_setup()
        assert net.supports_versions
        assert net.link_version("a", "s1") == 0
        assert net.link_version("s1", "top") == 0

    def test_place_bumps_only_path_links(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        assert net.link_version("s1", "top") == 1
        assert net.link_version("top", "s2") == 1
        assert net.link_version("s1", "bot") == 0  # untouched

    def test_remove_bumps_again(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        net.remove("f1")
        assert net.link_version("s1", "top") == 2
        assert net.link_version("s1", "bot") == 0

    def test_reroute_bumps_old_and_new_links(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        net.reroute("f1", BOT)
        assert net.link_version("s1", "top") == 2  # place + remove
        assert net.link_version("s1", "bot") == 1
        assert net.link_version("a", "s1") == 3  # shared by both paths

    def test_unknown_link_raises(self):
        net, _ = diamond_setup()
        with pytest.raises(TopologyError):
            net.link_version("a", "nope")

    def test_copy_preserves_and_then_diverges(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        clone = net.copy()
        assert clone.link_version("s1", "top") == 1
        clone.remove("f1")
        assert clone.link_version("s1", "top") == 2
        assert net.link_version("s1", "top") == 1  # original untouched

    def test_node_versions_track_rule_occupancy(self):
        g = diamond_topology().graph()
        g.nodes["top"]["rule_capacity"] = 5
        from repro.network.topology.custom import CustomTopology
        net = CustomTopology(g, name="d", max_paths=4).network()
        assert net.node_version("top") == 0
        net.place(ab_flow("f1", 10.0), TOP)
        assert net.node_version("top") == 1
        net.remove("f1")
        assert net.node_version("top") == 2
        # Nodes without a finite rule table never version.
        assert net.node_version("bot") == 0


class TestViewVersions:
    def test_view_overlays_versions(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        view = NetworkView(net)
        assert view.supports_versions
        assert view.link_version("s1", "top") == 1  # passes through
        view.place(ab_flow("f2", 10.0), TOP)
        assert view.link_version("s1", "top") == 2  # base + overlay
        assert net.link_version("s1", "top") == 1  # base untouched

    def test_view_remove_bumps(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        view = NetworkView(net)
        view.remove("f1")
        assert view.link_version("s1", "top") == 2

    def test_reset_clears_overlay(self):
        net, _ = diamond_setup()
        view = NetworkView(net)
        view.place(ab_flow("f1", 10.0), TOP)
        view.reset()
        assert view.link_version("s1", "top") == 0


# ---------------------------------------------------------- footprint recorder


class TestFootprintRecorder:
    def test_records_link_reads(self):
        net, _ = diamond_setup()
        rec = FootprintRecorder(net)
        rec.used("s1", "top")
        rec.flows_on_link("top", "s2")
        fp = rec.footprint()
        assert fp == Footprint(links=frozenset({("s1", "top"),
                                                ("top", "s2")}),
                               nodes=frozenset())

    def test_capacity_reads_are_free(self):
        net, _ = diamond_setup()
        rec = FootprintRecorder(net)
        rec.capacity("s1", "top")
        rec.rule_capacity("top")
        assert rec.footprint() == Footprint(links=frozenset(),
                                            nodes=frozenset())

    def test_placement_read_records_flow_links(self):
        net, _ = diamond_setup()
        net.place(ab_flow("f1", 10.0), TOP)
        rec = FootprintRecorder(net)
        assert rec.has_flow("f1")
        assert ("s1", "top") in rec.footprint().links

    def test_has_flow_miss_records_nothing(self):
        net, _ = diamond_setup()
        rec = FootprintRecorder(net)
        assert not rec.has_flow("ghost")
        assert rec.footprint().links == frozenset()

    def test_enumeration_is_unbounded(self):
        net, _ = diamond_setup()
        rec = FootprintRecorder(net)
        list(rec.flow_ids())
        assert rec.footprint() is None

    def test_links_enumeration_is_unbounded(self):
        net, _ = diamond_setup()
        rec = FootprintRecorder(net)
        list(rec.links())
        assert rec.footprint() is None

    def test_rules_used_records_node(self):
        net, _ = diamond_setup()
        rec = FootprintRecorder(net)
        rec.rules_used("top")
        assert rec.footprint().nodes == frozenset({"top"})


class TestDrawCountingRandom:
    def test_counts_and_preserves_stream(self):
        base = random.Random(42)
        counting = DrawCountingRandom(random.Random(42))
        direct = [base.random(), base.uniform(0, 5), base.choice("abcdef"),
                  base.getrandbits(16)]
        wrapped = [counting.random(), counting.uniform(0, 5),
                   counting.choice("abcdef"), counting.getrandbits(16)]
        assert wrapped == direct  # stream identical to direct use
        assert counting.draws >= 4

    def test_zero_draws_when_unused(self):
        counting = DrawCountingRandom(random.Random(1))
        assert counting.draws == 0


# ------------------------------------------------------------------ ProbeCache


def _plan(net, provider, event, rng=None):
    planner = EventPlanner(provider)
    return planner.plan_event_probed(net, event, rng or random.Random(3))


class TestProbeCache:
    def _cached_entry(self):
        net, provider = diamond_setup()
        event = make_event([ab_flow("pf1", 10.0)], label="probe")
        plan, footprint = _plan(net, provider, event)
        assert footprint is not None
        cache = ProbeCache()
        key = ("probe", ("pf1",))
        cache.store(key, net, plan, footprint)
        return net, cache, key, plan

    def test_hit_on_unchanged_state(self):
        net, cache, key, plan = self._cached_entry()
        assert cache.lookup(key, net) is plan
        assert cache.totals.hits == 1

    def test_miss_on_unknown_key(self):
        net, cache, key, _ = self._cached_entry()
        assert cache.lookup(("other", ()), net) is None
        assert cache.totals.misses == 1

    def test_invalidated_by_footprint_mutation(self):
        net, cache, key, _ = self._cached_entry()
        net.place(ab_flow("bg", 5.0), TOP)  # bumps a footprint link
        assert cache.lookup(key, net) is None
        assert cache.totals.invalidations == 1
        assert cache.totals.misses == 1
        assert len(cache) == 0  # stale entry evicted

    def test_survives_unrelated_mutation(self):
        net, cache, key, plan = self._cached_entry()
        # c->d via bot shares no link with any a->b candidate path that the
        # planner read, so the entry stays fresh.
        from repro.core.flow import Flow
        net.place(Flow(flow_id="bg", src="c", dst="d", demand=5.0),
                  ("c", "s1", "bot", "s2", "d"))
        hit = cache.lookup(key, net)
        if hit is not None:  # footprint may legitimately include bot links
            assert hit is plan

    def test_invalidated_by_different_network(self):
        net, cache, key, _ = self._cached_entry()
        assert cache.lookup(key, net.copy()) is None
        assert cache.totals.invalidations == 1

    def test_node_version_invalidates(self):
        # A footprint over nodes only: rule-occupancy drift on a footprint
        # node must invalidate even when no footprint link moved.
        g = diamond_topology().graph()
        g.nodes["top"]["rule_capacity"] = 5
        from repro.network.topology.custom import CustomTopology
        net = CustomTopology(g, name="d", max_paths=4).network()
        cache = ProbeCache()
        key = ("probe2", ("pf2",))
        plan = object()
        cache.store(key, net, plan,
                    Footprint(links=frozenset(),
                              nodes=frozenset({"top"})))
        assert cache.lookup(key, net) is plan
        from repro.core.flow import Flow
        net.place(Flow(flow_id="bg", src="c", dst="d", demand=1.0),
                  ("c", "s1", "top", "s2", "d"))  # consumes a top rule slot
        assert cache.lookup(key, net) is None
        assert cache.totals.invalidations == 1

    def test_eviction_at_maxsize(self):
        net, _provider = diamond_setup()
        plan, footprint = object(), Footprint(links=frozenset(),
                                              nodes=frozenset())
        cache = ProbeCache(maxsize=2)
        cache.store(("a", ()), net, plan, footprint)
        cache.store(("b", ()), net, plan, footprint)
        cache.store(("c", ()), net, plan, footprint)  # evicts oldest ("a")
        assert len(cache) == 2
        assert cache.lookup(("a", ()), net) is None
        assert cache.lookup(("b", ()), net) is plan

    def test_uncacheable_backoff(self):
        cache = ProbeCache()
        key = ("k", ())
        assert cache.should_record(key)
        cache.note_uncacheable(key)
        skipped = 0
        while not cache.should_record(key):
            skipped += 1
        assert skipped == ProbeCache.UNCACHEABLE_BACKOFF

    def test_drain_round_resets_round_not_totals(self):
        net, cache, key, _ = self._cached_entry()
        cache.lookup(key, net)
        first = cache.drain_round()
        assert first.hits == 1
        assert cache.drain_round().hits == 0
        assert cache.totals.hits == 1

    def test_clear(self):
        net, cache, key, _ = self._cached_entry()
        cache.note_uncacheable(("other", ()))
        cache.clear()
        assert len(cache) == 0
        assert cache.totals.probes == 0
        assert cache.should_record(("other", ()))


# ----------------------------------------------------- planner probe interface


class TestPlanEventProbed:
    def test_zero_draw_plan_is_cacheable(self):
        net, provider = diamond_setup()
        event = make_event([ab_flow("pp1", 10.0)])
        plan, footprint = _plan(net, provider, event)
        assert plan.feasible
        assert footprint is not None
        assert footprint.links  # the probe read the candidate paths

    def test_probe_records_rule_nodes(self):
        # On a rule-tracking network the chosen path's rule-limited
        # switches land in the footprint's node set.
        g = diamond_topology().graph()
        g.nodes["top"]["rule_capacity"] = 5
        g.nodes["bot"]["rule_capacity"] = 5
        from repro.network.topology.custom import CustomTopology
        topo = CustomTopology(g, name="d", max_paths=4)
        net = topo.network()
        event = make_event([ab_flow("pp5", 10.0)])
        plan, footprint = _plan(net, PathProvider(topo), event)
        assert plan.feasible and footprint is not None
        middle = set(plan.flow_plans[0].path) & {"top", "bot"}
        assert middle <= footprint.nodes

    def test_rng_consuming_plan_is_not_cacheable(self):
        # Fill both middle paths so placing a 60-demand flow forces the
        # migration planner, which draws from the RNG to pick alternates.
        net, provider = diamond_setup()
        from repro.core.flow import Flow
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=45.0),
                  ("c", "s1", "top", "s2", "d"))
        net.place(Flow(flow_id="bgb", src="c", dst="d", demand=50.0),
                  ("c", "s1", "bot", "s2", "d"))
        event = make_event([ab_flow("pp2", 60.0)])
        rng = random.Random(5)
        plan, footprint = _plan(net, provider, event, rng)
        assert plan.cost > 0  # a migration happened
        assert footprint is None  # and with it, RNG draws

    def test_rng_stream_position_matches_uncached_plan(self):
        """plan_event_probed must advance the caller's RNG exactly as
        plan_event would — draws are delegated, not duplicated."""
        net, provider = diamond_setup()
        from repro.core.flow import Flow
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=45.0),
                  ("c", "s1", "top", "s2", "d"))
        net.place(Flow(flow_id="bgb", src="c", dst="d", demand=50.0),
                  ("c", "s1", "bot", "s2", "d"))
        event = make_event([ab_flow("pp3", 60.0)])
        planner = EventPlanner(provider)
        rng_a, rng_b = random.Random(7), random.Random(7)
        planner.plan_event(net.copy(), event, rng_a, commit=False)
        planner.plan_event_probed(net.copy(), event, rng_b)
        assert rng_a.random() == rng_b.random()

    def test_versionless_state_skips_recording(self):
        class Versionless(FootprintRecorder):
            @property
            def supports_versions(self):
                return False

        net, provider = diamond_setup()
        event = make_event([ab_flow("pp4", 10.0)])
        planner = EventPlanner(provider)
        plan, footprint = planner.plan_event_probed(
            Versionless(net), event, random.Random(3))
        assert plan.feasible
        assert footprint is None


# --------------------------------------------- scheduler-level A/B equivalence


@pytest.fixture(scope="module")
def fattree_workload():
    """A k=4 fat-tree at moderate load plus a batch of update events."""
    topo = FatTreeTopology(k=4)
    provider = PathProvider(topo)
    network = topo.network()
    trace = YahooLikeTrace(topo.hosts(), seed=1)
    BackgroundLoader(network, provider, trace,
                     random.Random(2)).load_to_utilization(0.45)
    btrace = BensonLikeTrace(topo.hosts(), seed=5, duration_median=1.0)
    events = [make_event(btrace.flows(3), label=f"cache-ev{i}")
              for i in range(10)]
    return topo, provider, network, events


def _signature(decision):
    return (tuple(a.queued.event.event_id for a in decision.admissions),
            tuple(a.plan.cost for a in decision.admissions),
            decision.planning_ops)


def _run_rounds(scheduler, provider, network, events, rounds=40):
    planner = EventPlanner(provider)
    rng = random.Random(9)
    queue = [QueuedEvent(event, seq=i) for i, event in enumerate(events)]
    ctx = SchedulingContext(now=0.0, queue=queue, planner=planner,
                            network=network, rng=rng)
    return [scheduler.select(ctx) for _ in range(rounds)]


@pytest.mark.parametrize("make_sched", [
    pytest.param(lambda seed, cache: LMTFScheduler(
        alpha=4, seed=seed, probe_cache=cache), id="lmtf"),
    pytest.param(lambda seed, cache: PLMTFScheduler(
        alpha=4, seed=seed, probe_cache=cache), id="plmtf"),
])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cached_rounds_identical_to_uncached(fattree_workload, make_sched,
                                             seed):
    _topo, provider, network, events = fattree_workload
    cached_sched = make_sched(seed, True)
    cached = _run_rounds(cached_sched, provider, network.copy(), events)
    uncached = _run_rounds(make_sched(seed, False), provider,
                           network.copy(), events)
    assert [_signature(d) for d in cached] == \
        [_signature(d) for d in uncached]
    assert cached_sched.cache.totals.hits > 0  # the cache actually engaged
    assert sum(d.cache_hits for d in cached) == \
        cached_sched.cache.totals.hits


def test_decisions_report_cache_counters(fattree_workload):
    _topo, provider, network, events = fattree_workload
    sched = LMTFScheduler(alpha=4, seed=0, probe_cache=True)
    decisions = _run_rounds(sched, provider, network.copy(), events,
                            rounds=10)
    probes = sum(d.cache_hits + d.cache_misses for d in decisions)
    assert probes == sched.cache.totals.probes > 0
    disabled = LMTFScheduler(alpha=4, seed=0, probe_cache=False)
    for d in _run_rounds(disabled, provider, network.copy(), events,
                         rounds=3):
        assert d.cache_hits == d.cache_misses == d.cache_invalidations == 0
    assert disabled.cache is None


def test_scheduler_reset_clears_cache(fattree_workload):
    _topo, provider, network, events = fattree_workload
    sched = LMTFScheduler(alpha=4, seed=0, probe_cache=True)
    _run_rounds(sched, provider, network.copy(), events, rounds=5)
    assert len(sched.cache) > 0
    sched.reset()
    assert len(sched.cache) == 0
    assert sched.cache.totals.probes == 0


# ------------------------------------------------- full-simulation equivalence


def _simulate(scheduler, network, provider, events):
    sim = UpdateSimulator(network.copy(), provider, scheduler,
                          timing=TimingModel(),
                          config=SimulationConfig(verify_invariants=True))
    sim.submit(events)
    return sim.run()


def _comparable(metrics):
    data = metrics.to_dict()
    for key in ("probe_cache_hits", "probe_cache_misses",
                "probe_cache_invalidations", "probe_cache_hit_rate"):
        data.pop(key)
    return data


@pytest.mark.parametrize("make_sched", [
    pytest.param(lambda cache: LMTFScheduler(
        alpha=4, seed=0, probe_cache=cache), id="lmtf"),
    pytest.param(lambda cache: PLMTFScheduler(
        alpha=4, seed=0, probe_cache=cache), id="plmtf"),
])
def test_full_simulation_identical_with_and_without_cache(fattree_workload,
                                                          make_sched):
    """End to end: every paper metric — costs, ECTs, delays, rounds, plan
    time — is bit-identical with the probe cache on or off."""
    _topo, provider, network, events = fattree_workload
    cached = _simulate(make_sched(True), network, provider, events)
    uncached = _simulate(make_sched(False), network, provider, events)
    assert _comparable(cached) == _comparable(uncached)
    assert uncached.probe_cache_hits == 0
    assert cached.probe_cache_hits + cached.probe_cache_misses > 0


def test_completed_events_purged_from_cache(fattree_workload):
    """Completion must purge an event's probe-cache keys, like drop does.

    A completed event's id has left the queue for good, so its keys can
    never hit again; before the purge they lingered until LRU eviction,
    leaving the cache full of dead entries on long service runs.
    """
    _topo, provider, network, events = fattree_workload
    scheduler = LMTFScheduler(alpha=4, seed=0, probe_cache=True)
    sim = UpdateSimulator(network.copy(), provider, scheduler,
                          timing=TimingModel(),
                          config=SimulationConfig(verify_invariants=True))
    sim.submit(events)
    metrics = sim.run()
    assert metrics.event_count == len(events)
    cache = scheduler.cache
    assert cache.totals.probes > 0  # the cache actually engaged
    completed = {event.event_id for event in events}
    live_keys = [key for key in cache._entries if key[0] in completed]
    live_skips = [key for key in cache._skip if key[0] in completed]
    assert live_keys == [] and live_skips == []
    assert len(cache) == 0  # every event completed, so nothing remains


# -------------------------------------------- purge paths under learned L-LMTF


class TestLearnedSchedulerPurges:
    """Completion/drop purges must also hold when only top-B candidates
    are probed: a skipped candidate still had features memoized, and a
    probed one still cached a plan — none of it may outlive the event."""

    def _run_learned(self, fattree_workload, **kwargs):
        from repro.sched.learned.scheduler import LearnedLMTFScheduler
        _topo, provider, network, events = fattree_workload
        params = dict(alpha=4, seed=0, probe_cache=True, budget=2,
                      warmup=10, error_threshold=1e9)
        params.update(kwargs)
        scheduler = LearnedLMTFScheduler(**params)
        sim = UpdateSimulator(network.copy(), provider, scheduler,
                              timing=TimingModel(),
                              config=SimulationConfig(verify_invariants=True))
        sim.submit(events)
        metrics = sim.run()
        return scheduler, metrics, events

    def test_completion_purges_cache_under_budget(self, fattree_workload):
        scheduler, metrics, events = self._run_learned(fattree_workload)
        assert metrics.event_count == len(events)
        assert metrics.probes_skipped > 0  # the budget actually engaged
        cache = scheduler.cache
        assert cache is not None
        completed = {event.event_id for event in events}
        assert all(key[0] not in completed for key in cache._entries)
        assert all(key[0] not in completed for key in cache._skip)
        assert len(cache) == 0  # every event completed: nothing remains

    def test_completion_purges_feature_memo(self, fattree_workload):
        scheduler, metrics, events = self._run_learned(fattree_workload)
        extractor = scheduler.extractor
        assert extractor is not None
        completed = {event.event_id for event in events}
        assert all(key[0] not in completed for key in extractor._static)
        assert len(extractor) == 0

    def test_purge_counter_accounts_dropped_entries(self, fattree_workload):
        scheduler, metrics, _events = self._run_learned(fattree_workload)
        cache = scheduler.cache
        # Cached plans existed (misses stored entries) and all events
        # completed, so the purge counter must have consumed them.
        assert cache.totals.probes > 0
        assert cache.purges >= 0
        assert cache.purges == scheduler.cache.purges  # stable accessor
        if cache.totals.misses > 0 and cache.purges == 0:
            # Every stored entry must then have been invalidated/evicted
            # before completion — len 0 already asserts no leak.
            assert len(cache) == 0

    def test_sharded_learned_purges_through_wrapper(self, fattree_workload):
        from repro.sched import build_scheduler
        _topo, provider, network, events = fattree_workload
        scheduler = build_scheduler({
            "kind": "sharded", "shards": 2,
            "inner": {"kind": "learned", "alpha": 4, "seed": 0,
                      "budget": 2, "warmup": 10, "error_threshold": 1e9}})
        sim = UpdateSimulator(network.copy(), provider, scheduler,
                              timing=TimingModel(),
                              config=SimulationConfig(verify_invariants=True))
        sim.submit(events)
        metrics = sim.run()
        assert metrics.event_count == len(events)
        assert scheduler.cache is not None and len(scheduler.cache) == 0
        assert scheduler.extractor is not None
        assert len(scheduler.extractor) == 0

    def test_forget_event_counts_purges(self):
        net, _provider = diamond_setup()
        cache = ProbeCache()
        fp = Footprint(links=frozenset(), nodes=frozenset())
        cache.store(("ev", ("f1",)), net, object(), fp)
        cache.store(("ev", ("f1", "f2")), net, object(), fp)
        cache.store(("other", ()), net, object(), fp)
        assert cache.forget_event("ev") == 2
        assert cache.purges == 2
        assert cache.forget_event("missing") == 0
        assert cache.purges == 2
        cache.clear()
        assert cache.purges == 0
