"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.core.exceptions import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(3.0, lambda: order.append("c"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_ties(self):
        engine = SimulationEngine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_after(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule_after(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.5]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine(start_time=5.0)
        with pytest.raises(SimulationError, match="clock"):
            engine.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        engine = SimulationEngine()
        order = []

        def first():
            order.append("first")
            engine.schedule_after(1.0, lambda: order.append("second"))

        engine.schedule_at(0.0, first)
        engine.run()
        assert order == ["first", "second"]
        assert engine.processed == 2


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = SimulationEngine()
        seen = []
        handle = engine.schedule_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        engine.run()
        assert seen == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        engine = SimulationEngine()
        h1 = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.pending == 2
        h1.cancel()
        assert engine.pending == 1


class TestRun:
    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_run_until(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(1.0, lambda: seen.append(1))
        engine.schedule_at(5.0, lambda: seen.append(5))
        engine.run(until=2.0)
        assert seen == [1]
        assert engine.pending == 1

    def test_livelock_guard(self):
        engine = SimulationEngine()

        def respawn():
            engine.schedule_after(0.1, respawn)

        engine.schedule_at(0.0, respawn)
        with pytest.raises(SimulationError, match="livelock"):
            engine.run(max_events=100)
