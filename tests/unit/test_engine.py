"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.core.exceptions import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(3.0, lambda: order.append("c"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_ties(self):
        engine = SimulationEngine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_after(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule_after(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.5]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine(start_time=5.0)
        with pytest.raises(SimulationError, match="clock"):
            engine.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        engine = SimulationEngine()
        order = []

        def first():
            order.append("first")
            engine.schedule_after(1.0, lambda: order.append("second"))

        engine.schedule_at(0.0, first)
        engine.run()
        assert order == ["first", "second"]
        assert engine.processed == 2


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = SimulationEngine()
        seen = []
        handle = engine.schedule_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        engine.run()
        assert seen == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        engine = SimulationEngine()
        h1 = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.pending == 2
        h1.cancel()
        assert engine.pending == 1

    def test_cancel_after_execute_is_a_noop(self):
        """A stale handle must not corrupt the tombstone counter.

        Cancelling an entry that already executed used to increment
        ``_cancelled`` even though the entry had left the heap, making
        ``pending`` undercount — here it would read -1, which downstream
        mis-triggers the stall fallback (``pending == 0`` checks).
        """
        engine = SimulationEngine()
        handle = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.step()
        assert handle.executed
        handle.cancel()
        assert not handle.cancelled
        assert engine.pending == 1
        assert engine.pending == engine.live_pending()
        assert engine.step()
        assert engine.pending == 0
        assert engine._cancelled == 0

    def test_callback_cancelling_own_handle_is_a_noop(self):
        """The canonical corruption: a callback (or code it triggers)
        cancels the very handle being executed."""
        engine = SimulationEngine()
        handles = {}
        fired = []

        def fire():
            handles["self"].cancel()
            fired.append(engine.now)

        handles["self"] = engine.schedule_at(1.0, fire)
        engine.run()
        assert fired == [1.0]
        assert engine.pending == 0
        assert engine.live_pending() == 0
        assert engine._cancelled == 0

    def test_cancel_after_tombstone_pop_stays_idempotent(self):
        engine = SimulationEngine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        engine.schedule_at(2.0, lambda: None)
        engine.run()  # pops the tombstone and the live entry
        handle.cancel()  # still idempotent after the pop
        assert engine.pending == 0
        assert engine._cancelled == 0


class TestTombstoneCompaction:
    def test_pending_is_counter_not_scan(self):
        engine = SimulationEngine()
        handles = [engine.schedule_at(float(i), lambda: None)
                   for i in range(10)]
        for handle in handles[:4]:
            handle.cancel()
        assert engine.pending == 6
        # cancelling twice must not double-count the tombstone
        handles[0].cancel()
        assert engine.pending == 6

    def test_cancel_respawn_churn_bounds_heap(self):
        """Heavy cancel/respawn churn must not accumulate tombstones.

        This is the leak the old engine had: every (cancel, reschedule)
        pair grew the heap by one dead entry for the whole run. With
        compaction, tombstones can never outnumber live entries once the
        heap is past the compaction floor.
        """
        engine = SimulationEngine()
        live = [engine.schedule_at(float(i) + 1.0, lambda: None)
                for i in range(200)]
        for round_no in range(50):
            for i, handle in enumerate(live):
                handle.cancel()
                live[i] = engine.schedule_at(
                    handle.time + 1.0, lambda: None)
            assert engine.pending == 200
            assert len(engine._heap) <= 2 * 200 + 1
        # 10k cancels happened; without compaction the heap would hold
        # ~10200 entries here.

    def test_compaction_preserves_pop_order(self):
        noisy = SimulationEngine()
        clean = SimulationEngine()
        noisy_order, clean_order = [], []
        times = [(i * 7919) % 500 / 10.0 for i in range(400)]
        doomed = []
        for t in times:
            noisy.schedule_at(t, lambda t=t: noisy_order.append(t))
            clean.schedule_at(t, lambda t=t: clean_order.append(t))
            # interleave disposable events and cancel them, forcing
            # several compactions mid-build
            doomed.append(noisy.schedule_at(t + 0.05, lambda: None))
            if len(doomed) >= 3:
                doomed.pop(0).cancel()
                doomed.pop(0).cancel()
        for handle in doomed:
            handle.cancel()
        noisy.run()
        clean.run()
        assert noisy_order == clean_order

    def test_small_heaps_skip_compaction(self):
        engine = SimulationEngine()
        handles = [engine.schedule_at(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # below the compaction floor the tombstones just sit there
        assert engine.pending == 0
        assert len(engine._heap) == 10
        assert engine.step() is False
        assert len(engine._heap) == 0

    def test_tombstones_popped_by_step_update_counter(self):
        engine = SimulationEngine()
        h1 = engine.schedule_at(1.0, lambda: None)
        seen = []
        engine.schedule_at(2.0, lambda: seen.append(engine.now))
        h1.cancel()
        engine.run()
        assert seen == [2.0]
        assert engine.pending == 0
        assert engine._cancelled == 0


class TestRun:
    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_run_until(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(1.0, lambda: seen.append(1))
        engine.schedule_at(5.0, lambda: seen.append(5))
        engine.run(until=2.0)
        assert seen == [1]
        assert engine.pending == 1

    def test_livelock_guard(self):
        engine = SimulationEngine()

        def respawn():
            engine.schedule_after(0.1, respawn)

        engine.schedule_at(0.0, respawn)
        with pytest.raises(SimulationError, match="livelock"):
            engine.run(max_events=100)
