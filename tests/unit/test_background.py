"""Unit tests for the background-traffic loader."""

import random

import pytest

from repro.network.routing.provider import PathProvider
from repro.network.topology.fattree import FatTreeTopology
from repro.traces.background import BackgroundLoader
from repro.traces.yahoo import YahooLikeTrace


@pytest.fixture(scope="module")
def topo():
    return FatTreeTopology(k=4)


@pytest.fixture(scope="module")
def provider(topo):
    return PathProvider(topo)


def make_loader(topo, provider, seed=1, **kwargs):
    net = topo.network()
    trace = YahooLikeTrace(topo.hosts(), seed=seed)
    loader = BackgroundLoader(net, provider, trace,
                              random.Random(seed + 10), **kwargs)
    return net, loader


class TestValidation:
    def test_bad_host_cap(self, topo, provider):
        net = topo.network()
        trace = YahooLikeTrace(topo.hosts(), seed=1)
        with pytest.raises(ValueError):
            BackgroundLoader(net, provider, trace, host_link_cap=0.0)
        with pytest.raises(ValueError):
            BackgroundLoader(net, provider, trace, host_link_cap=1.5)

    def test_bad_path_policy(self, topo, provider):
        net = topo.network()
        trace = YahooLikeTrace(topo.hosts(), seed=1)
        with pytest.raises(ValueError, match="path policy"):
            BackgroundLoader(net, provider, trace, path_policy="scenic")

    def test_bad_target(self, topo, provider):
        net, loader = make_loader(topo, provider)
        with pytest.raises(ValueError):
            loader.load_to_utilization(1.0)
        with pytest.raises(ValueError):
            loader.load_to_utilization(-0.1)


class TestLoading:
    def test_reaches_target_utilization(self, topo, provider):
        net, loader = make_loader(topo, provider)
        report = loader.load_to_utilization(0.4)
        assert report.utilization >= 0.4
        assert report.utilization == pytest.approx(
            net.average_utilization())
        assert len(report.placed) > 0
        net.check_invariants()

    def test_placed_flows_are_permanent_by_default(self, topo, provider):
        net, loader = make_loader(topo, provider)
        report = loader.load_to_utilization(0.2)
        assert all(f.duration is None for f in report.placed)

    def test_finite_flows_on_request(self, topo, provider):
        net, loader = make_loader(topo, provider)
        report = loader.load_to_utilization(0.2, permanent=False)
        assert all(f.duration is not None for f in report.placed)

    def test_host_cap_respected(self, topo, provider):
        net, loader = make_loader(topo, provider, host_link_cap=0.5)
        loader.load_to_utilization(0.45, max_rejects=500)
        for host in net.hosts():
            for neighbor in net.graph.successors(host):
                assert net.used(host, neighbor) <= 0.5 * 1000.0 + 1e-6
                assert net.used(neighbor, host) <= 0.5 * 1000.0 + 1e-6

    def test_max_flows_cap(self, topo, provider):
        net, loader = make_loader(topo, provider)
        report = loader.load_to_utilization(0.6, max_flows=10)
        assert len(report.placed) == 10

    def test_deterministic(self, topo, provider):
        net1, loader1 = make_loader(topo, provider, seed=5)
        net2, loader2 = make_loader(topo, provider, seed=5)
        r1 = loader1.load_to_utilization(0.3)
        r2 = loader2.load_to_utilization(0.3)
        assert [f.flow_id[-3:] for f in r1.placed] != []  # ids differ but
        assert len(r1.placed) == len(r2.placed)           # structure matches
        assert r1.utilization == pytest.approx(r2.utilization)

    def test_best_policy_balances_better(self, topo, provider):
        net_r, loader_r = make_loader(topo, provider, seed=5)
        loader_r.load_to_utilization(0.4)
        topo2 = FatTreeTopology(k=4)
        net_b = topo2.network()
        trace = YahooLikeTrace(topo2.hosts(), seed=5)
        loader_b = BackgroundLoader(net_b, PathProvider(topo2), trace,
                                    random.Random(15), path_policy="best")
        loader_b.load_to_utilization(0.4)
        assert net_b.max_utilization() <= net_r.max_utilization() + 0.05


class TestWouldFit:
    def test_probe_does_not_place(self, topo, provider):
        net, loader = make_loader(topo, provider)
        trace = YahooLikeTrace(topo.hosts(), seed=99)
        flow = trace.sample_flow()
        assert loader.would_fit(flow)
        assert net.flow_count() == 0
