"""Unit tests for the report generator and its CLI subcommand."""

import json

import pytest

from repro.analysis.report import (
    QUICK_FIGURES,
    render_markdown,
    run_figures,
    write_report,
)
from repro.cli import main
from repro.experiments.results import ExperimentResult


def fake_result(name: str) -> ExperimentResult:
    result = ExperimentResult(name=name, title=f"title of {name}",
                              columns=["a", "b"])
    result.add_row(a=1, b=2.5)
    result.notes.append("a note")
    return result


class TestRunFigures:
    def test_runs_named_figures(self):
        results = run_figures(["fig2", "fig3"])
        assert list(results) == ["fig2", "fig3"]
        assert results["fig2"].rows

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            run_figures(["fig42"])

    def test_overrides_forwarded_when_accepted(self):
        # fig9 accepts seed/events; fig2 accepts nothing — both must work
        results = run_figures(["fig2", "fig9"], seed=1, events=5)
        assert len(results["fig9"].rows) == 5

    def test_progress_callback(self):
        lines = []
        run_figures(["fig2"], progress=lines.append)
        assert any("fig2" in line for line in lines)


class TestRendering:
    def test_markdown_contains_tables(self):
        text = render_markdown({"x": fake_result("x"),
                                "y": fake_result("y")})
        assert "## x — title of x" in text
        assert "note: a note" in text
        assert text.count("```") == 4

    def test_write_report(self, tmp_path):
        path = write_report({"x": fake_result("x")}, tmp_path / "out")
        assert path.name == "report.md"
        assert path.exists()
        payload = json.loads((tmp_path / "out" / "x.json").read_text())
        assert payload["rows"] == [{"a": 1, "b": 2.5}]


class TestCLIReport:
    def test_report_with_explicit_figures(self, tmp_path, capsys):
        code = main(["report", "--out", str(tmp_path),
                     "--figures", "fig2,fig3"])
        assert code == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig2.json").exists()

    def test_report_unknown_figure(self, tmp_path, capsys):
        code = main(["report", "--out", str(tmp_path),
                     "--figures", "fig99"])
        assert code == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_quick_set_is_cheap_figures(self):
        assert "fig2" in QUICK_FIGURES
        assert "fig6" not in QUICK_FIGURES
