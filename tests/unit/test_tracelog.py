"""Unit tests for the simulation trace log."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ab_flow, diamond_setup  # noqa: E402

from repro.core.event import make_event
from repro.sched.fifo import FIFOScheduler
from repro.sched.plmtf import PLMTFScheduler
from repro.sim.simulator import SimulationConfig, UpdateSimulator
from repro.sim.tracelog import SimulationListener, TraceLog, TraceRecord


def run_with_log(scheduler=None, capture_flows=False, events=3):
    net, provider = diamond_setup()
    log = TraceLog(capture_flows=capture_flows)
    sim = UpdateSimulator(net, provider, scheduler or FIFOScheduler(),
                          config=SimulationConfig(seed=1), listener=log)
    queue = [make_event([ab_flow(f"e{i}f{j}", 5.0, 1.0) for j in range(2)],
                        label=f"e{i}") for i in range(events)]
    sim.submit(queue)
    metrics = sim.run()
    return log, metrics


class TestTraceLog:
    def test_records_rounds_and_admissions(self):
        log, metrics = run_with_log()
        rounds = log.of_kind("round")
        assert len(rounds) == metrics.rounds
        assert rounds[0].data["queue"] == 3
        admissions = log.of_kind("admission")
        assert len(admissions) == 3
        assert all(a.data["flows"] == 2 for a in admissions)

    def test_records_completions(self):
        log, metrics = run_with_log()
        completions = log.of_kind("complete")
        assert len(completions) == metrics.event_count
        # completion times line up with the measured ECTs
        times = sorted(r.time for r in completions)
        assert times[-1] == pytest.approx(metrics.makespan)

    def test_flow_capture_off_by_default(self):
        log, __ = run_with_log(capture_flows=False)
        assert log.of_kind("flow_finish") == []

    def test_flow_capture_on(self):
        log, __ = run_with_log(capture_flows=True)
        assert len(log.of_kind("flow_finish")) == 6  # 3 events x 2 flows

    def test_plmtf_batching_visible(self):
        log, __ = run_with_log(PLMTFScheduler(alpha=4))
        first_round = log.of_kind("round")[0]
        assert len(first_round.data["admitted"]) == 3

    def test_jsonl_round_trips(self):
        log, __ = run_with_log()
        lines = log.to_jsonl().splitlines()
        assert len(lines) == len(log)
        for line in lines:
            record = json.loads(line)
            assert "t" in record and "kind" in record

    def test_save(self, tmp_path):
        log, __ = run_with_log()
        target = tmp_path / "run.jsonl"
        log.save(target)
        assert len(target.read_text().strip().splitlines()) == len(log)

    def test_records_in_time_order(self):
        log, __ = run_with_log()
        times = [record.time for record in log.records]
        assert times == sorted(times)


class TestListenerInterface:
    def test_noop_listener_is_safe(self):
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=SimulationConfig(seed=1),
                              listener=SimulationListener())
        sim.submit([make_event([ab_flow("f", 5.0, 1.0)])])
        metrics = sim.run()
        assert metrics.event_count == 1

    def test_record_json(self):
        record = TraceRecord(time=1.234567891, kind="x", data={"a": 1})
        payload = json.loads(record.to_json())
        assert payload["kind"] == "x"
        assert payload["a"] == 1


class TestAtomicSave:
    def test_save_replaces_atomically(self, tmp_path):
        log, __ = run_with_log()
        target = tmp_path / "trace.jsonl"
        target.write_text("stale contents that must fully disappear\n")
        log.save(target)
        lines = target.read_text().splitlines()
        assert "stale" not in lines[0]
        assert all(json.loads(line) for line in lines)
        # no temp-file droppings left behind
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_save_failure_leaves_no_temp_file(self, tmp_path, monkeypatch):
        import repro.core.ioutil as ioutil
        log, __ = run_with_log()
        real_replace = ioutil.os.replace

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(ioutil.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            log.save(tmp_path / "trace.jsonl")
        monkeypatch.setattr(ioutil.os, "replace", real_replace)
        assert list(tmp_path.iterdir()) == []
