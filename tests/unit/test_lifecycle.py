"""Unit tests for the event-lifecycle state machine (sim/lifecycle.py)."""

import pytest

from repro.sim.lifecycle import (
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    EventLifecycle,
    EventState,
    IllegalTransitionError,
    TransitionRecord,
)


class TestStateMachineShape:
    def test_terminal_states_are_completed_and_dropped(self):
        assert TERMINAL_STATES == {EventState.COMPLETED, EventState.DROPPED}

    def test_every_state_has_a_transition_entry(self):
        assert set(LEGAL_TRANSITIONS) == set(EventState)

    def test_every_nonterminal_state_reaches_a_terminal_state(self):
        # No livelock pockets: from any state some path ends the event.
        reachable = {}
        for state in EventState:
            seen = {state}
            frontier = [state]
            while frontier:
                nxt = frontier.pop()
                for succ in LEGAL_TRANSITIONS[nxt]:
                    if succ not in seen:
                        seen.add(succ)
                        frontier.append(succ)
            reachable[state] = seen
        for state in EventState:
            assert reachable[state] & TERMINAL_STATES, state


class TestRegister:
    def test_register_enters_queued(self):
        lc = EventLifecycle()
        record = lc.register("U1", at=0.0)
        assert lc.state("U1") is EventState.QUEUED
        assert record == TransitionRecord("U1", None, EventState.QUEUED, 0.0)
        assert lc.origin("U1") == "submitted"

    def test_register_twice_raises(self):
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        with pytest.raises(IllegalTransitionError, match="registered twice"):
            lc.register("U1", at=1.0)

    def test_repair_origin_is_kept(self):
        lc = EventLifecycle()
        lc.register("repair-1", at=3.0, origin="repair")
        assert lc.origin("repair-1") == "repair"


class TestAdvance:
    def _admitted(self):
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        lc.advance("U1", EventState.PROBED, 1.0)
        lc.advance("U1", EventState.ADMITTED, 1.0)
        return lc

    def test_happy_path_to_completed(self):
        lc = self._admitted()
        lc.advance("U1", EventState.EXECUTING, 1.0)
        lc.advance("U1", EventState.COMPLETED, 5.0)
        assert lc.state("U1") is EventState.COMPLETED

    def test_defer_requeue_drop_path(self):
        lc = self._admitted()
        lc.advance("U1", EventState.EXECUTING, 1.0)
        lc.advance("U1", EventState.DEFERRED, 2.0)
        lc.advance("U1", EventState.QUEUED, 2.0)
        lc.advance("U1", EventState.PROBED, 3.0)
        lc.advance("U1", EventState.QUEUED, 3.0)  # not selected
        lc.advance("U1", EventState.DEFERRED, 4.0)  # stall pass
        lc.advance("U1", EventState.DROPPED, 4.0)
        assert lc.state("U1") is EventState.DROPPED

    def test_unknown_event_raises(self):
        lc = EventLifecycle()
        with pytest.raises(IllegalTransitionError, match="unknown event"):
            lc.advance("ghost", EventState.PROBED, 0.0)

    def test_illegal_transition_raises_and_names_legal_moves(self):
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        with pytest.raises(IllegalTransitionError,
                           match="queued → executing"):
            lc.advance("U1", EventState.EXECUTING, 0.0)
        # The failed move must not corrupt the registry.
        assert lc.state("U1") is EventState.QUEUED

    def test_skipping_admitted_raises(self):
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        lc.advance("U1", EventState.PROBED, 0.0)
        with pytest.raises(IllegalTransitionError):
            lc.advance("U1", EventState.COMPLETED, 0.0)

    @pytest.mark.parametrize("terminal",
                             [EventState.COMPLETED, EventState.DROPPED])
    def test_terminal_states_accept_nothing(self, terminal):
        lc = self._admitted()
        lc.advance("U1", EventState.EXECUTING, 1.0)
        if terminal is EventState.COMPLETED:
            lc.advance("U1", EventState.COMPLETED, 2.0)
        else:
            lc.advance("U1", EventState.DEFERRED, 2.0)
            lc.advance("U1", EventState.DROPPED, 2.0)
        for target in EventState:
            with pytest.raises(IllegalTransitionError):
                lc.advance("U1", target, 3.0)

    def test_queued_cannot_reenter_queued_directly(self):
        # Requeue is only legal through DEFERRED (charged) or PROBED
        # (round bookkeeping); a silent QUEUED->QUEUED would hide lost
        # deferral accounting.
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        with pytest.raises(IllegalTransitionError):
            lc.advance("U1", EventState.QUEUED, 1.0)


class TestQueriesAndHistory:
    def test_history_records_moves_in_order(self):
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        lc.advance("U1", EventState.PROBED, 1.5)
        history = lc.history("U1")
        assert [r.to for r in history] == [EventState.QUEUED,
                                           EventState.PROBED]
        assert history[1].at == 1.5
        assert "queued→probed" in str(history[1])

    def test_history_is_bounded(self):
        lc = EventLifecycle(history_limit=3)
        lc.register("U1", at=0.0)
        for tick in range(5):
            lc.advance("U1", EventState.PROBED, float(tick))
            lc.advance("U1", EventState.QUEUED, float(tick))
        assert len(lc.history("U1")) == 3

    def test_counts_and_in_state(self):
        lc = EventLifecycle()
        lc.register("U1", at=0.0)
        lc.register("U2", at=0.0)
        lc.advance("U1", EventState.PROBED, 1.0)
        counts = lc.counts()
        assert counts[EventState.QUEUED] == 1
        assert counts[EventState.PROBED] == 1
        assert counts[EventState.COMPLETED] == 0
        assert lc.in_state(EventState.QUEUED) == ("U2",)
        assert len(lc) == 2
        assert lc.transition_count == 3  # two registrations + one advance

    def test_knows(self):
        lc = EventLifecycle()
        assert not lc.knows("U1")
        lc.register("U1", at=0.0)
        assert lc.knows("U1")

    def test_history_limit_validation(self):
        with pytest.raises(ValueError):
            EventLifecycle(history_limit=0)
