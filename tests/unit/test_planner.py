"""Unit tests for the event planner (Cost(U), Definition 2)."""

import random

import networkx as nx
import pytest

from repro.core.event import make_event
from repro.core.flow import Flow
from repro.core.migration import MigrationConfig
from repro.core.planner import EventPlanner, PlannerConfig
from repro.network.routing.provider import PathProvider
from repro.network.topology.custom import CustomTopology


def diamond_topology(capacity=100.0) -> CustomTopology:
    g = nx.Graph()
    for h in ("a", "b", "c", "d", "e", "f"):
        g.add_node(h, kind="host")
    for s in ("s1", "s2", "top", "bot"):
        g.add_node(s, kind="switch")
    for u, v in (("a", "s1"), ("c", "s1"), ("e", "s1"),
                 ("s1", "top"), ("s1", "bot"), ("top", "s2"),
                 ("bot", "s2"), ("s2", "b"), ("s2", "d"), ("s2", "f")):
        g.add_edge(u, v, capacity=capacity)
    return CustomTopology(g, name="diamond", max_paths=4)


BG_TOP = ("c", "s1", "top", "s2", "d")
BG_BOT = ("c", "s1", "bot", "s2", "d")


def update_flow(fid, demand, duration=1.0):
    return Flow(flow_id=fid, src="a", dst="b", demand=demand,
                duration=duration)


@pytest.fixture()
def setup():
    topo = diamond_topology()
    return topo.network(), PathProvider(topo)


class TestConfigValidation:
    def test_bad_path_selection(self):
        with pytest.raises(ValueError, match="path selection"):
            PlannerConfig(path_selection="psychic")

    def test_bad_flow_order(self):
        with pytest.raises(ValueError, match="flow order"):
            PlannerConfig(flow_order="chaotic")

    def test_bad_max_migration_paths(self):
        with pytest.raises(ValueError):
            PlannerConfig(max_migration_paths=0)


class TestDesiredPath:
    def test_deterministic(self, setup):
        net, provider = setup
        paths = provider.paths("a", "b")
        f = update_flow("fx", 10.0)
        assert EventPlanner.desired_path(f, paths) == \
            EventPlanner.desired_path(f, paths)

    def test_distributes_over_paths(self, setup):
        __, provider = setup
        paths = provider.paths("a", "b")
        chosen = {EventPlanner.desired_path(update_flow(f"f{i}", 1.0), paths)
                  for i in range(60)}
        assert len(chosen) == len(paths)  # both candidates get used


class TestPlanEvent:
    def test_free_placement_costs_zero(self, setup):
        net, provider = setup
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 10.0)])
        plan = planner.plan_event(net, event, random.Random(1))
        assert plan.feasible
        assert plan.cost == 0.0
        assert plan.migration_count == 0
        assert len(plan.flow_plans) == 1
        assert plan.planning_ops > 0

    def test_probe_does_not_mutate(self, setup):
        net, provider = setup
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 10.0)])
        planner.plan_event(net, event, random.Random(1), commit=False)
        assert net.flow_count() == 0

    def test_commit_applies(self, setup):
        net, provider = setup
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 10.0)])
        plan = planner.plan_event(net, event, random.Random(1), commit=True)
        assert net.has_flow(plan.flow_plans[0].flow.flow_id)
        net.check_invariants()

    def test_migration_when_desired_path_congested(self, setup):
        net, provider = setup
        # Fill both middle links so any desired path needs migration.
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=45.0), BG_TOP)
        net.place(Flow(flow_id="bgb", src="c", dst="d", demand=10.0), BG_BOT)
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 60.0)])
        plan = planner.plan_event(net, event, random.Random(1), commit=True)
        assert plan.feasible
        assert plan.cost > 0
        # cost equals the demand of the migrated background flow(s)
        migrated = {m.flow.flow_id for m in plan.migrations}
        assert migrated <= {"bgt", "bgb"}
        net.check_invariants()

    def test_infeasible_event_reports_blocked(self, setup):
        net, provider = setup
        planner = EventPlanner(provider)
        # two 60-Mbit/s flows from the same host cannot share a's uplink
        event = make_event([update_flow("f1", 60.0),
                            update_flow("f2", 60.0)])
        plan = planner.plan_event(net, event, random.Random(1), commit=True)
        assert not plan.feasible
        assert len(plan.blocked) == 1
        # infeasible plans never commit
        assert net.flow_count() == 0

    def test_event_flows_not_migrated_for_each_other(self, setup):
        net, provider = setup
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 60.0),
                            update_flow("f2", 30.0)])
        plan = planner.plan_event(net, event, random.Random(1))
        assert plan.feasible
        for m in plan.migrations:
            assert m.flow.event_id != event.event_id

    def test_extra_protected_respected(self, setup):
        net, provider = setup
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=45.0), BG_TOP)
        net.place(Flow(flow_id="bgb", src="c", dst="d", demand=45.0), BG_BOT)
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 60.0)])
        plan = planner.plan_event(net, event, random.Random(1),
                                  extra_protected=frozenset(["bgt", "bgb"]))
        assert not plan.feasible

    def test_probe_cost_inf_when_infeasible(self, setup):
        net, provider = setup
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 60.0),
                            update_flow("f2", 60.0)])
        assert planner.probe_cost(net, event, random.Random(1)) == \
            float("inf")

    def test_probe_cost_matches_plan_cost(self, setup):
        net, provider = setup
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=45.0), BG_TOP)
        net.place(Flow(flow_id="bgb", src="c", dst="d", demand=10.0), BG_BOT)
        planner = EventPlanner(provider)
        event = make_event([update_flow("f1", 60.0)])
        cost = planner.probe_cost(net, event, random.Random(1))
        plan = planner.plan_event(net, event, random.Random(2))
        assert cost == pytest.approx(plan.cost)


class TestNoMigrationMode:
    def test_blocked_without_migration(self, setup):
        net, provider = setup
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=95.0), BG_TOP)
        net.place(Flow(flow_id="bgb", src="e", dst="f", demand=95.0),
                  ("e", "s1", "bot", "s2", "f"))
        planner = EventPlanner(provider,
                               PlannerConfig(allow_migration=False))
        event = make_event([update_flow("f1", 10.0)])
        plan = planner.plan_event(net, event, random.Random(1))
        assert not plan.feasible


class TestFlowOrders:
    def _event(self):
        return make_event([update_flow("small", 10.0),
                           update_flow("large", 50.0)])

    def test_largest_first(self, setup):
        net, provider = setup
        planner = EventPlanner(provider,
                               PlannerConfig(flow_order="largest_first"))
        plan = planner.plan_event(net, self._event(), random.Random(1))
        assert plan.flow_plans[0].flow.demand == 50.0

    def test_smallest_first(self, setup):
        net, provider = setup
        planner = EventPlanner(provider,
                               PlannerConfig(flow_order="smallest_first"))
        plan = planner.plan_event(net, self._event(), random.Random(1))
        assert plan.flow_plans[0].flow.demand == 10.0


class TestSearchSelections:
    @pytest.mark.parametrize("mode", ["best_residual", "random", "first"])
    def test_search_modes_place_flow(self, setup, mode):
        net, provider = setup
        planner = EventPlanner(provider,
                               PlannerConfig(path_selection=mode))
        event = make_event([update_flow("f1", 10.0)])
        plan = planner.plan_event(net, event, random.Random(1))
        assert plan.feasible
        assert plan.cost == 0.0

    def test_best_residual_picks_emptier_path(self, setup):
        net, provider = setup
        net.place(Flow(flow_id="bgt", src="c", dst="d", demand=50.0), BG_TOP)
        planner = EventPlanner(
            provider, PlannerConfig(path_selection="best_residual"))
        event = make_event([update_flow("f1", 10.0)])
        plan = planner.plan_event(net, event, random.Random(1))
        assert "bot" in plan.flow_plans[0].path
