"""Tests for crash recovery: checkpoint/restore, journal replay, tampering.

Every crash here is injected *in-process* (``REPRO_CRASH_MODE=raise``
turns the SIGKILL crash points into a catchable exception) so the suite
stays fast and fork-free; ``scripts/check_crash_recovery.py`` and the CI
smoke job exercise the same kill points with real SIGKILLs through the
``repro serve`` subprocess path.

Runs on the small diamond network like the rest of the service suite.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import diamond_setup  # noqa: E402

from repro.core.event import event_id_state, set_event_id_state
from repro.core.flow import flow_id_state, set_flow_id_state
from repro.sched.fifo import FIFOScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sim import crashpoint
from repro.sim.crashpoint import CrashInjected
from repro.sim.journal import JournalCorruptionError, scan_journal
from repro.sim.service import ServiceConfig, SimulationService
from repro.sim.simulator import SimulationConfig, UpdateSimulator
from repro.sim.snapshot import (
    CHECKPOINT_FILE,
    JOURNAL_FILE,
    RecoveryError,
    discard_state,
    load_checkpoint,
)
from repro.traces.arrivals import SyntheticTrace
from repro.traces.events import EventGenerator, EventGeneratorConfig

DIAMOND_HOSTS = ("a", "b", "c", "d", "e", "f")


@pytest.fixture(autouse=True)
def _hermetic_ids():
    saved = (flow_id_state(), event_id_state())
    set_flow_id_state(0)
    set_event_id_state(0)
    yield
    set_flow_id_state(saved[0])
    set_event_id_state(saved[1])


@pytest.fixture(autouse=True)
def _clean_crashpoints(monkeypatch):
    monkeypatch.delenv(crashpoint.ENV_VAR, raising=False)
    monkeypatch.delenv(crashpoint.MODE_VAR, raising=False)
    crashpoint.reset_counts()
    yield
    crashpoint.reset_counts()


def build_service(state_dir, resume=False, scheduler=None, max_events=12,
                  snapshot_every=2.0, compile_mode="atomic"):
    """A deterministic diamond-network service; rebuildable bit-identically."""
    net, provider = diamond_setup()
    sim = UpdateSimulator(
        net, provider, scheduler or FIFOScheduler(),
        config=SimulationConfig(verify_invariants=True, max_deferrals=4,
                                compile_mode=compile_mode))
    trace = SyntheticTrace(DIAMOND_HOSTS, seed=3, demand_range=(2.0, 10.0))
    generator = EventGenerator(
        trace, config=EventGeneratorConfig(min_flows=1, max_flows=3),
        seed=4)
    config = ServiceConfig(queue_cap=8, resume_depth=4,
                           max_events=max_events,
                           snapshot_every=snapshot_every,
                           state_dir=state_dir, resume=resume)
    return SimulationService(sim, generator.stream(1.0), config)


def crash_at(monkeypatch, label, n):
    monkeypatch.setenv(crashpoint.ENV_VAR, f"{label}:{n}")
    monkeypatch.setenv(crashpoint.MODE_VAR, "raise")


def disarm(monkeypatch):
    monkeypatch.delenv(crashpoint.ENV_VAR, raising=False)
    monkeypatch.delenv(crashpoint.MODE_VAR, raising=False)
    crashpoint.reset_counts()


def run_baseline(tmp_path):
    set_flow_id_state(0)
    set_event_id_state(0)
    return build_service(tmp_path / "baseline").serve()


def crash_and_resume(tmp_path, monkeypatch, label, n, **kwargs):
    """Crash at ``label:n``, resume, return (baseline, resumed) reports."""
    baseline = run_baseline(tmp_path)
    state = tmp_path / "crashed"
    crash_at(monkeypatch, label, n)
    set_flow_id_state(0)
    set_event_id_state(0)
    with pytest.raises(CrashInjected):
        build_service(state, **kwargs).serve()
    disarm(monkeypatch)
    set_flow_id_state(0)
    set_event_id_state(0)
    resumed = build_service(state, resume=True, **kwargs).serve()
    return baseline, resumed


class TestExactResume:
    def test_crash_mid_round_resumes_bit_identical(self, tmp_path,
                                                   monkeypatch):
        baseline, resumed = crash_and_resume(tmp_path, monkeypatch,
                                             "post-round", 3)
        assert resumed.digest == baseline.digest
        assert resumed.completed == baseline.completed
        assert resumed.dropped == baseline.dropped
        assert resumed.final_time == baseline.final_time
        assert resumed.restarts == 1
        assert baseline.restarts == 0

    def test_crash_mid_journal_append_leaves_torn_tail(self, tmp_path,
                                                       monkeypatch):
        """The armed append flushes half a frame before dying; the resume
        must truncate it and still land on the baseline digest."""
        baseline = run_baseline(tmp_path)
        state = tmp_path / "crashed"
        crash_at(monkeypatch, "journal-append", 4)
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(CrashInjected):
            build_service(state).serve()
        scan = scan_journal(state / JOURNAL_FILE)
        assert scan.torn_bytes > 0
        assert len(scan.records) == 3
        disarm(monkeypatch)
        set_flow_id_state(0)
        set_event_id_state(0)
        resumed = build_service(state, resume=True).serve()
        assert resumed.digest == baseline.digest

    def test_crash_mid_checkpoint_write_keeps_previous(self, tmp_path,
                                                       monkeypatch):
        baseline, resumed = crash_and_resume(tmp_path, monkeypatch,
                                             "snapshot", 2)
        assert resumed.digest == baseline.digest

    def test_crash_before_first_checkpoint_replays_whole_journal(
            self, tmp_path, monkeypatch):
        """No checkpoint on disk yet: the resume is a fresh deterministic
        re-run verified record-by-record against the full journal."""
        baseline, resumed = crash_and_resume(tmp_path, monkeypatch,
                                             "snapshot", 1)
        assert resumed.digest == baseline.digest
        assert resumed.restarts == 1
        # Everything journaled before the crash is replay-verified; the
        # suffix after the crash point is freshly appended on top.
        assert (0 < resumed.counters["recovery_replayed_events"]
                <= resumed.counters["journal_records"])

    def test_resume_counters_surface_recovery_metrics(self, tmp_path,
                                                      monkeypatch):
        _, resumed = crash_and_resume(tmp_path, monkeypatch,
                                      "post-round", 3)
        counters = resumed.counters
        assert counters["restarts"] == 1
        assert counters["recovery_replayed_events"] > 0
        # journal_records covers every record: replay-verified + appended.
        assert (counters["journal_records"]
                == len(scan_journal(tmp_path / "crashed"
                                    / JOURNAL_FILE).records))

    def test_resume_passes_restore_audit(self, tmp_path, monkeypatch):
        """REPRO_AUDIT=1 runs assert_restored + per-round audits on the
        resumed service (the chaos-grid configuration)."""
        baseline = run_baseline(tmp_path)
        state = tmp_path / "crashed"
        crash_at(monkeypatch, "post-round", 3)
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(CrashInjected):
            build_service(state).serve()
        disarm(monkeypatch)
        monkeypatch.setenv("REPRO_AUDIT", "1")
        set_flow_id_state(0)
        set_event_id_state(0)
        resumed = build_service(state, resume=True).serve()
        assert resumed.digest == baseline.digest
        assert resumed.audits > 0

    def test_lmtf_scheduler_state_round_trips(self, tmp_path, monkeypatch):
        kwargs = {"scheduler": LMTFScheduler(alpha=2, seed=5)}
        baseline = run_lmtf_baseline(tmp_path)
        state = tmp_path / "crashed"
        crash_at(monkeypatch, "post-round", 3)
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(CrashInjected):
            build_service(state, **kwargs).serve()
        disarm(monkeypatch)
        set_flow_id_state(0)
        set_event_id_state(0)
        resumed = build_service(
            state, resume=True,
            scheduler=LMTFScheduler(alpha=2, seed=5)).serve()
        assert resumed.digest == baseline.digest


def run_lmtf_baseline(tmp_path):
    set_flow_id_state(0)
    set_event_id_state(0)
    return build_service(tmp_path / "baseline",
                         scheduler=LMTFScheduler(alpha=2, seed=5)).serve()


class TestSignalStop:
    def test_signal_stop_writes_resumable_state(self, tmp_path):
        """Satellite: SIGTERM-shaped stop = checkpoint + flushed journal
        before the drain; the state dir left behind must be resumable."""
        from repro.sim.hooks import PostRound

        state = tmp_path / "state"
        service = build_service(state, max_events=None)
        rounds = {"n": 0}

        def stopper(_hook):
            rounds["n"] += 1
            if rounds["n"] == 3:
                service.request_stop("signal")

        service._sim.hooks.subscribe(PostRound, stopper)
        report = service.serve()
        assert report.stopped == "signal"
        checkpoint = load_checkpoint(state / CHECKPOINT_FILE)
        assert checkpoint["origin"] == "final"  # drain completed cleanly
        # Journal is complete and consistent with the report.
        scan = scan_journal(state / JOURNAL_FILE)
        ingests = [r for r in scan.records if r["kind"] == "ingest"]
        assert len(ingests) == report.ingested
        # And the dir resumes (a drained run resumes to an immediate,
        # digest-preserving no-op).
        set_flow_id_state(0)
        set_event_id_state(0)
        resumed = build_service(state, resume=True, max_events=None).serve()
        assert resumed.digest == report.digest
        assert resumed.stopped == "signal"

    def test_stop_checkpoint_written_mid_drain(self, tmp_path, monkeypatch):
        """A crash *after* the signal stop but before the drain finishes
        resumes from the stop checkpoint and completes the drain."""
        from repro.sim.hooks import PostRound

        baseline = run_baseline(tmp_path)
        state = tmp_path / "state"
        # Round 4 settles before the next snapshot tick, so the "stop"
        # checkpoint written right after round 3's signal is still the
        # one on disk when the crash lands.
        crash_at(monkeypatch, "post-round", 4)
        set_flow_id_state(0)
        set_event_id_state(0)
        service = build_service(state)
        rounds = {"n": 0}

        def stopper(_hook):
            rounds["n"] += 1
            if rounds["n"] == 3:
                service.request_stop("signal")

        service._sim.hooks.subscribe(PostRound, stopper)
        with pytest.raises(CrashInjected):
            service.serve()
        assert load_checkpoint(state / CHECKPOINT_FILE)["origin"] == "stop"
        disarm(monkeypatch)
        set_flow_id_state(0)
        set_event_id_state(0)
        resumed = build_service(state, resume=True).serve()
        assert resumed.stopped == "signal"
        # The stopped run ingested a prefix of the baseline's events, so
        # its digest differs — but the resumed drain must terminate every
        # ingested event and satisfy the drain audit (serve asserts it).
        assert resumed.completed + resumed.dropped == resumed.ingested


class TestTampering:
    def crash_state(self, tmp_path, monkeypatch, label="post-round", n=3):
        state = tmp_path / "crashed"
        crash_at(monkeypatch, label, n)
        with pytest.raises(CrashInjected):
            build_service(state).serve()
        disarm(monkeypatch)
        return state

    def test_truncated_journal_below_checkpoint_rejected(self, tmp_path,
                                                         monkeypatch):
        state = self.crash_state(tmp_path, monkeypatch, "post-round", 4)
        journal = state / JOURNAL_FILE
        scan = scan_journal(journal)
        # Chop whole frames until we are below the checkpoint's offset.
        offset = load_checkpoint(state / CHECKPOINT_FILE)["journal"]["offset"]
        assert scan.valid_size >= offset
        journal.write_bytes(journal.read_bytes()[:offset - 1])
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(RecoveryError, match="truncated below"):
            build_service(state, resume=True).serve()

    def test_corrupted_journal_frame_rejected(self, tmp_path, monkeypatch):
        state = self.crash_state(tmp_path, monkeypatch)
        journal = state / JOURNAL_FILE
        data = bytearray(journal.read_bytes())
        data[-1] ^= 0xFF
        journal.write_bytes(bytes(data))
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(JournalCorruptionError, match="CRC mismatch"):
            build_service(state, resume=True).serve()

    def test_stale_fingerprint_rejected(self, tmp_path, monkeypatch):
        state = self.crash_state(tmp_path, monkeypatch)
        path = state / CHECKPOINT_FILE
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["service"]["ingested"] += 1  # tamper without re-signing
        path.write_text(json.dumps(payload, sort_keys=True) + "\n",
                        encoding="utf-8")
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(RecoveryError, match="fingerprint"):
            build_service(state, resume=True).serve()

    def test_unknown_version_rejected(self, tmp_path, monkeypatch):
        state = self.crash_state(tmp_path, monkeypatch)
        path = state / CHECKPOINT_FILE
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["version"] = 99
        path.write_text(json.dumps(payload, sort_keys=True) + "\n",
                        encoding="utf-8")
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(RecoveryError, match="version"):
            build_service(state, resume=True).serve()

    def test_scheduler_mismatch_rejected(self, tmp_path, monkeypatch):
        state = self.crash_state(tmp_path, monkeypatch)
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(RecoveryError, match="scheduler"):
            build_service(state, resume=True,
                          scheduler=LMTFScheduler(alpha=2, seed=5)).serve()

    def test_compile_config_mismatch_rejected(self, tmp_path, monkeypatch):
        """A checkpoint written under atomic compilation refuses to resume
        staged: the schedule would diverge from the journaled prefix."""
        state = self.crash_state(tmp_path, monkeypatch)
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(RecoveryError, match="compile config"):
            build_service(state, resume=True,
                          compile_mode="staged").serve()


class TestStateDirGuards:
    def test_resume_without_state_raises_actionable_error(self, tmp_path):
        with pytest.raises(RecoveryError, match="--resume"):
            build_service(tmp_path / "empty", resume=True).serve()

    def test_fresh_start_refuses_existing_run(self, tmp_path, monkeypatch):
        state = tmp_path / "state"
        crash_at(monkeypatch, "post-round", 3)
        with pytest.raises(CrashInjected):
            build_service(state).serve()
        disarm(monkeypatch)
        set_flow_id_state(0)
        set_event_id_state(0)
        with pytest.raises(RecoveryError, match="already holds a run"):
            build_service(state).serve()

    def test_discard_state_enables_fresh_start(self, tmp_path, monkeypatch):
        state = tmp_path / "state"
        crash_at(monkeypatch, "post-round", 3)
        with pytest.raises(CrashInjected):
            build_service(state).serve()
        disarm(monkeypatch)
        removed = discard_state(state)
        assert CHECKPOINT_FILE in removed and JOURNAL_FILE in removed
        set_flow_id_state(0)
        set_event_id_state(0)
        report = build_service(state).serve()
        assert report.restarts == 0

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="resume requires"):
            ServiceConfig(resume=True)
        # state_dir alone satisfies the snapshot_every requirement.
        ServiceConfig(snapshot_every=5.0, state_dir=tmp_path)


class TestCheckpointPayload:
    def test_checkpoint_is_versioned_and_fingerprinted(self, tmp_path,
                                                       monkeypatch):
        state = tmp_path / "state"
        crash_at(monkeypatch, "post-round", 3)
        with pytest.raises(CrashInjected):
            build_service(state).serve()
        checkpoint = load_checkpoint(state / CHECKPOINT_FILE)
        assert checkpoint["origin"] == "snapshot-tick"
        for key in ("engine", "pipeline", "lifecycle", "metrics", "network",
                    "sched", "sim_rng", "counters", "ids", "journal",
                    "service", "fingerprint"):
            assert key in checkpoint

    def test_completed_run_leaves_final_checkpoint(self, tmp_path):
        report = run_baseline(tmp_path)
        checkpoint = load_checkpoint(tmp_path / "baseline"
                                     / CHECKPOINT_FILE)
        assert checkpoint["origin"] == "final"
        assert checkpoint["service"]["digest"] == report.digest
