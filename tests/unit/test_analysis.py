"""Unit tests for normalization helpers and table rendering."""

import pytest

from repro.analysis.normalize import (
    normalize_by_max,
    percent_reduction,
    speedup,
)
from repro.analysis.tables import format_cell, render_table
from repro.experiments.results import ExperimentResult


class TestNormalize:
    def test_normalize_by_own_max(self):
        assert normalize_by_max([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]

    def test_normalize_by_reference(self):
        out = normalize_by_max([1.0, 2.0], reference=[10.0])
        assert out == [0.1, 0.2]

    def test_normalize_empty(self):
        assert normalize_by_max([]) == []

    def test_normalize_zero_peak(self):
        assert normalize_by_max([0.0, 0.0]) == [0.0, 0.0]

    def test_percent_reduction(self):
        assert percent_reduction(100.0, 25.0) == pytest.approx(75.0)
        assert percent_reduction(100.0, 150.0) == pytest.approx(-50.0)
        assert percent_reduction(0.0, 5.0) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_ranges(self):
        assert format_cell(1234.5) == "1234"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.1234) == "0.123"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_cell("plmtf") == "plmtf"


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "value"],
                            [{"name": "alpha", "value": 1.0},
                             {"name": "b", "value": 22.5}],
                            title="demo", notes=["a note"])
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[-1] == "note: a note"
        # all body rows align on the separator width
        assert len(lines[2]) == len(lines[3])

    def test_missing_cells_dash(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert "-" in text.splitlines()[-1]

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult(name="x", title="t", columns=["a", "b"])
        result.add_row(a=1, b=2)
        result.add_row(a=3, b=4)
        assert result.column("a") == [1, 3]

    def test_to_table_renders(self):
        result = ExperimentResult(name="x", title="t", columns=["a"])
        result.add_row(a=1)
        result.notes.append("context")
        text = result.to_table()
        assert "x: t" in text
        assert "note: context" in text
