"""Unit tests for the CSV trace loader."""

import pytest

from repro.traces.csvtrace import CSVTrace

HOSTS = [f"h{i}" for i in range(8)]


def write_trace(tmp_path, content):
    path = tmp_path / "trace.csv"
    path.write_text(content)
    return path


GOOD = """src,dst,demand,duration
h0,h1,25.0,12.5
h2,h3,4.0,3.0
10.1.2.3,10.4.5.6,9.0,
"""


class TestLoading:
    def test_loads_records(self, tmp_path):
        trace = CSVTrace(HOSTS, write_trace(tmp_path, GOOD))
        assert len(trace) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CSVTrace(HOSTS, tmp_path / "nope.csv")

    def test_missing_columns(self, tmp_path):
        path = write_trace(tmp_path, "src,dst\nh0,h1\n")
        with pytest.raises(ValueError, match="missing columns"):
            CSVTrace(HOSTS, path)

    def test_bad_demand(self, tmp_path):
        path = write_trace(tmp_path, "src,dst,demand\nh0,h1,potato\n")
        with pytest.raises(ValueError, match="bad demand"):
            CSVTrace(HOSTS, path)

    def test_nonpositive_demand(self, tmp_path):
        path = write_trace(tmp_path, "src,dst,demand\nh0,h1,0\n")
        with pytest.raises(ValueError, match="positive"):
            CSVTrace(HOSTS, path)

    def test_empty_trace(self, tmp_path):
        path = write_trace(tmp_path, "src,dst,demand\n")
        with pytest.raises(ValueError, match="no flow records"):
            CSVTrace(HOSTS, path)

    def test_bad_default_duration(self, tmp_path):
        with pytest.raises(ValueError):
            CSVTrace(HOSTS, write_trace(tmp_path, GOOD),
                     default_duration=0.0)


class TestSampling:
    def test_known_hosts_used_verbatim(self, tmp_path):
        trace = CSVTrace(HOSTS, write_trace(tmp_path, GOOD))
        flow = trace.sample_flow()
        assert (flow.src, flow.dst) == ("h0", "h1")
        assert flow.demand == 25.0
        assert flow.duration == 12.5

    def test_unknown_hosts_hashed_onto_host_set(self, tmp_path):
        trace = CSVTrace(HOSTS, write_trace(tmp_path, GOOD))
        trace.sample_flow()
        trace.sample_flow()
        third = trace.sample_flow()  # the 10.x.x.x record
        assert third.src in HOSTS and third.dst in HOSTS
        assert third.src != third.dst
        assert third.demand == 9.0
        assert third.duration == 5.0  # default_duration fallback

    def test_cycles_through_records(self, tmp_path):
        trace = CSVTrace(HOSTS, write_trace(tmp_path, GOOD))
        flows = [trace.sample_flow() for __ in range(6)]
        assert flows[0].demand == flows[3].demand == 25.0

    def test_size_column_derives_duration(self, tmp_path):
        path = write_trace(tmp_path, "src,dst,demand,size\nh0,h1,10.0,50\n")
        trace = CSVTrace(HOSTS, path)
        flow = trace.sample_flow()
        assert flow.duration == pytest.approx(5.0)

    def test_deterministic_hashing(self, tmp_path):
        path = write_trace(tmp_path, GOOD)
        a = CSVTrace(HOSTS, path).flows(3)
        b = CSVTrace(HOSTS, path).flows(3)
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]
