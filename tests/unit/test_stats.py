"""Unit tests for multi-seed statistics."""

import pytest

from repro.analysis.stats import (
    aggregate_runs,
    across_seeds,
    reduction_summary,
    summarize,
)
from repro.sim.metrics import RunMetrics


def metrics(avg_ect: float, cost: float = 100.0,
            scheduler: str = "x") -> RunMetrics:
    return RunMetrics(
        scheduler=scheduler, event_count=3, total_cost=cost,
        total_migrations=2, average_ect=avg_ect, tail_ect=avg_ect * 2,
        p95_ect=avg_ect * 1.5, p99_ect=avg_ect * 1.8,
        average_queuing_delay=avg_ect / 2, worst_queuing_delay=avg_ect,
        total_plan_time=0.1, makespan=avg_ect * 3, rounds=3,
        per_event_ect=(avg_ect,) * 3, per_event_delay=(0.0,) * 3,
        per_event_cost=(cost / 3,) * 3)


class TestSummarize:
    def test_single_sample(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.stdev == 0.0
        assert s.low == s.high == 5.0
        assert s.samples == 1

    def test_mean_and_stdev(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.stdev == pytest.approx(2.0)
        assert s.low < s.mean < s.high

    def test_interval_narrows_with_samples(self):
        narrow = summarize([1.0, 3.0] * 50)
        wide = summarize([1.0, 3.0])
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestAggregateRuns:
    def test_aggregates_all_metrics(self):
        runs = [metrics(10.0), metrics(20.0)]
        summary = aggregate_runs(runs)
        assert summary["average_ect"].mean == pytest.approx(15.0)
        assert summary["tail_ect"].mean == pytest.approx(30.0)
        assert summary["total_cost"].mean == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])


class TestAcrossSeeds:
    def test_runs_per_seed(self):
        calls = []

        def run_one(seed):
            calls.append(seed)
            return metrics(float(seed))

        summary = across_seeds(run_one, seeds=[1, 2, 3])
        assert calls == [1, 2, 3]
        assert summary["average_ect"].mean == pytest.approx(2.0)

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            across_seeds(lambda s: metrics(1.0), seeds=[])


class TestReductionSummary:
    def test_paired_reduction(self):
        baseline = [metrics(100.0), metrics(200.0)]
        treated = [metrics(50.0), metrics(100.0)]
        s = reduction_summary(baseline, treated, "average_ect")
        assert s.mean == pytest.approx(50.0)
        assert s.stdev == pytest.approx(0.0)

    def test_zero_baseline_maps_to_zero(self):
        s = reduction_summary([metrics(1.0, cost=0.0)],
                              [metrics(1.0, cost=5.0)], "total_cost")
        assert s.mean == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reduction_summary([metrics(1.0)], [], "average_ect")


class TestRunMetricsToDict:
    def test_round_trips_through_json(self):
        import json
        payload = json.dumps(metrics(12.0).to_dict())
        data = json.loads(payload)
        assert data["average_ect"] == 12.0
        assert data["per_event_ect"] == [12.0, 12.0, 12.0]
