"""Unit tests for the L-LMTF learned-ranking scheduler."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ab_flow, diamond_setup  # noqa: E402

from repro.core.event import make_event
from repro.core.planner import EventPlanner
from repro.sched import build_scheduler
from repro.sched.base import QueuedEvent, SchedulingContext
from repro.sched.learned.features import FEATURE_NAMES
from repro.sched.learned.scheduler import LearnedLMTFScheduler
from repro.sched.lmtf import LMTFScheduler


def make_context(network, provider, events):
    queue = [QueuedEvent(event, seq=i) for i, event in enumerate(events)]
    return SchedulingContext(now=0.0, queue=queue,
                             planner=EventPlanner(provider),
                             network=network, rng=random.Random(7))


def cheap_event(label: str, demand: float = 5.0):
    return make_event([ab_flow(f"{label}-f", demand)], label=label)


class TestConstruction:
    def test_registered_spec_kind(self):
        scheduler = build_scheduler(
            {"kind": "learned", "alpha": 3, "seed": 2, "budget": 2})
        assert isinstance(scheduler, LearnedLMTFScheduler)
        assert scheduler.name == "l-lmtf"
        assert scheduler.alpha == 3
        assert scheduler.budget == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LearnedLMTFScheduler(budget=0)
        with pytest.raises(ValueError):
            LearnedLMTFScheduler(warmup=-1)
        with pytest.raises(ValueError):
            LearnedLMTFScheduler(error_threshold=0.0)

    def test_model_path_loading(self, tmp_path):
        donor = LearnedLMTFScheduler(warmup=0)
        donor.model.update([1.0] * len(FEATURE_NAMES), 2.0)
        path = tmp_path / "model.json"
        donor.save_model(path)
        loaded = LearnedLMTFScheduler(model_path=str(path))
        assert loaded.model.to_dict() == donor.model.to_dict()

    def test_model_path_dim_mismatch_rejected(self, tmp_path):
        from repro.sched.learned.model import OnlineRidge
        path = tmp_path / "bad.json"
        OnlineRidge(dim=3).save(path)
        with pytest.raises(ValueError):
            LearnedLMTFScheduler(model_path=str(path))


class TestFallback:
    def test_cold_start_probes_everything(self):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(8)]
        ctx = make_context(net, provider, events)
        scheduler = LearnedLMTFScheduler(alpha=4, seed=1, budget=2,
                                         warmup=64)
        assert scheduler.fallback_active
        targets = scheduler.probe_targets(ctx)
        assert len(targets) == 5  # alpha+1, nothing skipped

        exact = LMTFScheduler(alpha=4, seed=1)
        expected = exact.probe_targets(make_context(net, provider, events))
        assert [t.seq for t in targets] == [t.seq for t in expected]

    def test_fallback_rounds_marked_on_decision(self):
        net, provider = diamond_setup()
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(8)])
        scheduler = LearnedLMTFScheduler(alpha=4, seed=1, warmup=64)
        decision = scheduler.select(ctx)
        assert decision.fallback
        assert decision.probes_skipped == 0
        assert decision.prediction_samples == 5  # every probe trains
        assert decision.prediction_error_sum >= 0.0

    def test_drift_reactivates_fallback(self):
        net, provider = diamond_setup()
        scheduler = LearnedLMTFScheduler(alpha=2, seed=1, warmup=0,
                                         error_threshold=0.1)
        assert not scheduler.fallback_active  # fresh model: zero drift
        # Wildly wrong samples push the drift tracker past the threshold.
        for _ in range(3):
            scheduler.model.update([1.0] * len(FEATURE_NAMES), 100.0)
        assert scheduler.fallback_active
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(4)])
        targets = scheduler.probe_targets(ctx)
        assert len(targets) == 3  # full probing resumed (alpha+1)


class TestBudget:
    def warmed(self, alpha=4, budget=2, threshold=1e9):
        """A scheduler whose model is trivially 'confident'."""
        return LearnedLMTFScheduler(alpha=alpha, seed=1, budget=budget,
                                    warmup=0, error_threshold=threshold)

    def test_confident_round_probes_only_budget(self):
        net, provider = diamond_setup()
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(10)])
        scheduler = self.warmed(budget=2)
        targets = scheduler.probe_targets(ctx)
        assert len(targets) == 2
        decision = scheduler.decide(
            ctx, [(t, scheduler.probe_event(ctx, t)) for t in targets],
            ops=0)
        assert decision.probes_skipped == 3
        assert not decision.fallback
        assert len(decision.admissions) == 1

    def test_head_always_probed(self):
        net, provider = diamond_setup()
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(10)])
        for budget in (1, 2, 3):
            scheduler = self.warmed(budget=budget)
            targets = scheduler.probe_targets(ctx)
            assert len(targets) == budget
            assert targets[0].seq == 0  # queue head survives every budget

    def test_budget_at_or_above_candidates_disables_skipping(self):
        net, provider = diamond_setup()
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(10)])
        scheduler = self.warmed(budget=5)
        assert len(scheduler.probe_targets(ctx)) == 5

    def test_targets_returned_in_seq_order(self):
        net, provider = diamond_setup()
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(12)])
        scheduler = self.warmed(budget=3)
        targets = scheduler.probe_targets(ctx)
        seqs = [t.seq for t in targets]
        assert seqs == sorted(seqs)

    def test_sampling_stream_matches_exact_lmtf(self):
        # Ranking must not perturb the sample draws: the candidate pool
        # (pre-trim) equals exact LMTF's for the same seed, round after
        # round.
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(20)]
        learned = self.warmed(budget=2)
        exact = LMTFScheduler(alpha=4, seed=1)
        for _ in range(5):
            lctx = make_context(net, provider, events)
            ectx = make_context(net, provider, events)
            learned.probe_targets(lctx)
            expected = exact.probe_targets(ectx)
            # The learned scheduler's next sample must continue from the
            # same stream position; compare via the private RNG state.
            assert (learned._sample_rng.getstate()
                    == exact._sample_rng.getstate())
            assert expected is not None


class TestTrainingLoop:
    def test_select_trains_model(self):
        net, provider = diamond_setup()
        scheduler = LearnedLMTFScheduler(alpha=4, seed=1, warmup=64)
        before = scheduler.model.samples
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(8)])
        scheduler.select(ctx)
        assert scheduler.model.samples == before + 5

    def test_completion_purges_extractor(self):
        net, provider = diamond_setup()
        scheduler = LearnedLMTFScheduler(alpha=4, seed=1, warmup=64)
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(3)])
        decision = scheduler.select(ctx)
        assert len(decision.admissions) == 1
        admitted = decision.admissions[0].queued.event.event_id
        extractor = scheduler.extractor
        assert extractor is not None
        assert all(key[0] != admitted for key in extractor._static)

    def test_reset_restores_initial_model(self):
        net, provider = diamond_setup()
        scheduler = LearnedLMTFScheduler(alpha=4, seed=1, warmup=64)
        initial = scheduler.model.to_dict()
        ctx = make_context(net, provider,
                           [cheap_event(f"e{i}") for i in range(8)])
        scheduler.select(ctx)
        assert scheduler.model.to_dict() != initial
        scheduler.reset()
        assert scheduler.model.to_dict() == initial

    def test_reset_restores_pretrained_snapshot(self, tmp_path):
        donor = LearnedLMTFScheduler(warmup=0)
        for i in range(10):
            donor.model.update([float(i)] * len(FEATURE_NAMES), float(i))
        path = tmp_path / "model.json"
        donor.save_model(path)
        scheduler = LearnedLMTFScheduler(model_path=str(path))
        pretrained = scheduler.model.to_dict()
        scheduler.model.update([0.0] * len(FEATURE_NAMES), 1.0)
        scheduler.reset()
        assert scheduler.model.to_dict() == pretrained
