"""Unit tests for the simulated timing model."""

import pytest

from repro.core.flow import Flow
from repro.core.plan import Migration
from repro.sim.timing import TimingModel


def migration(demand: float) -> Migration:
    flow = Flow(flow_id=f"m{demand}", src="a", dst="b", demand=demand)
    return Migration(flow=flow, old_path=("a", "x", "b"),
                     new_path=("a", "y", "b"))


class TestValidation:
    @pytest.mark.parametrize("field", ["rule_install_s", "migration_rule_s",
                                       "drain_s_per_mbps", "plan_s_per_op"])
    def test_negative_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            TimingModel(**{field: -0.1})


class TestMigrationTime:
    def test_empty_is_zero(self):
        assert TimingModel().migration_time([]) == 0.0

    def test_sums_rule_and_drain(self):
        timing = TimingModel(migration_rule_s=0.1, drain_s_per_mbps=0.01)
        total = timing.migration_time([migration(10.0), migration(20.0)])
        assert total == pytest.approx(0.1 + 0.1 + 0.1 + 0.2)

    def test_proportional_to_cost(self):
        timing = TimingModel(migration_rule_s=0.0, drain_s_per_mbps=0.5)
        assert timing.migration_time([migration(8.0)]) == pytest.approx(4.0)


class TestInstallTime:
    def test_parallel_install_is_constant(self):
        timing = TimingModel(rule_install_s=0.2, parallel_install=True)
        assert timing.install_time(1) == pytest.approx(0.2)
        assert timing.install_time(50) == pytest.approx(0.2)

    def test_serial_install_scales(self):
        timing = TimingModel(rule_install_s=0.2, parallel_install=False)
        assert timing.install_time(5) == pytest.approx(1.0)

    def test_zero_flows(self):
        assert TimingModel().install_time(0) == 0.0


class TestPlanTime:
    def test_scales_with_ops(self):
        timing = TimingModel(plan_s_per_op=0.001)
        assert timing.plan_time(500) == pytest.approx(0.5)

    def test_negative_ops_clamped(self):
        assert TimingModel().plan_time(-5) == 0.0
