"""Unit tests for the plan value objects."""

import pytest

from repro.core.event import make_event
from repro.core.flow import Flow
from repro.core.plan import EventPlan, ExecutionRecord, FlowPlan, Migration


def flow(fid, demand=10.0):
    return Flow(flow_id=fid, src="a", dst="b", demand=demand, duration=1.0)


def migration(fid, demand):
    return Migration(flow=Flow(flow_id=fid, src="c", dst="d",
                               demand=demand),
                     old_path=("c", "x", "d"), new_path=("c", "y", "d"))


class TestMigration:
    def test_migrated_traffic_is_demand(self):
        assert migration("m1", 25.0).migrated_traffic == 25.0


class TestFlowPlan:
    def test_cost_sums_migrations(self):
        plan = FlowPlan(flow=flow("f1"), path=("a", "x", "b"),
                        migrations=(migration("m1", 5.0),
                                    migration("m2", 7.0)))
        assert plan.cost == pytest.approx(12.0)

    def test_migration_free_cost_zero(self):
        plan = FlowPlan(flow=flow("f1"), path=("a", "x", "b"))
        assert plan.cost == 0.0


class TestEventPlan:
    def _plan(self, blocked=False):
        event = make_event([flow("f1"), flow("f2")])
        fp1 = FlowPlan(flow=event.flows[0], path=("a", "x", "b"),
                       migrations=(migration("m1", 5.0),))
        fp2 = FlowPlan(flow=event.flows[1], path=("a", "y", "b"),
                       migrations=(migration("m2", 3.0),
                                   migration("m3", 4.0)))
        blocked_flows = (flow("fb"),) if blocked else ()
        return EventPlan(event=event, flow_plans=(fp1, fp2),
                         blocked=blocked_flows, planning_ops=42)

    def test_cost_is_definition_two(self):
        # Cost(U) = sum over flows of sum(F_a)
        assert self._plan().cost == pytest.approx(12.0)

    def test_migrations_flattened_in_order(self):
        migrations = self._plan().migrations
        assert [m.flow.flow_id for m in migrations] == ["m1", "m2", "m3"]
        assert self._plan().migration_count == 3

    def test_feasible_iff_no_blocked(self):
        assert self._plan().feasible
        assert not self._plan(blocked=True).feasible

    def test_planning_ops_carried(self):
        assert self._plan().planning_ops == 42

    def test_empty_plan(self):
        event = make_event([flow("f9")])
        plan = EventPlan(event=event)
        assert plan.cost == 0.0
        assert plan.feasible
        assert plan.migrations == ()


class TestExecutionRecord:
    def test_defaults(self):
        event = make_event([flow("f1")])
        record = ExecutionRecord(plan=EventPlan(event=event))
        assert record.migration_time == 0.0
        assert record.rerouted_flow_ids == ()
