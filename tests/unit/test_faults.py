"""Unit tests for mid-run fault schedules and the stochastic process."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import diamond_setup  # noqa: E402

from repro.core.exceptions import SimulationError, TopologyError
from repro.sim.faults import (
    FaultProcess,
    FaultSchedule,
    LinkFault,
    SwitchFault,
    build_fault_source,
)


class TestFaultSpecs:
    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            LinkFault(u="s1", v="top", at=-1.0)

    def test_heal_must_follow_fault(self):
        with pytest.raises(SimulationError, match="heal time"):
            LinkFault(u="s1", v="top", at=5.0, heal_at=5.0)
        with pytest.raises(SimulationError, match="heal time"):
            SwitchFault(switch="top", at=5.0, heal_at=2.0)

    def test_descriptions(self):
        assert LinkFault(u="s1", v="top", at=0.0).description == \
            "link s1<->top"
        assert SwitchFault(switch="top", at=0.0).description == "switch top"


class TestFaultSchedule:
    def test_sorted_by_time_insertion_stable(self):
        a = LinkFault(u="s1", v="top", at=5.0)
        b = LinkFault(u="s1", v="bot", at=1.0)
        c = SwitchFault(switch="top", at=5.0)
        schedule = FaultSchedule([a, b, c])
        assert list(schedule) == [b, a, c]

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule([])
        assert len(FaultSchedule([])) == 0

    def test_rejects_non_fault_entries(self):
        with pytest.raises(SimulationError, match="LinkFault or"):
            FaultSchedule([("s1", "top", 5.0)])

    def test_materialize_validates_topology(self):
        net, _ = diamond_setup()
        good = FaultSchedule([LinkFault(u="s1", v="top", at=1.0)])
        assert good.materialize(net) is good
        with pytest.raises(TopologyError, match="missing link"):
            FaultSchedule([LinkFault(u="s1", v="mars", at=1.0)]) \
                .materialize(net)
        with pytest.raises(TopologyError, match="missing switch"):
            FaultSchedule([SwitchFault(switch="mars", at=1.0)]) \
                .materialize(net)


class TestFaultProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProcess(rate=-1.0, horizon=10.0)
        with pytest.raises(ValueError):
            FaultProcess(rate=1.0, horizon=-1.0)
        with pytest.raises(ValueError):
            FaultProcess(rate=1.0, horizon=10.0, mean_downtime_s=0.0)
        with pytest.raises(ValueError):
            FaultProcess(rate=1.0, horizon=10.0, switch_fault_prob=2.0)

    def test_zero_rate_materializes_empty(self):
        net, _ = diamond_setup()
        assert not FaultProcess(rate=0.0, horizon=100.0).materialize(net)
        assert not FaultProcess(rate=1.0, horizon=0.0).materialize(net)

    def test_deterministic_per_seed(self):
        net, _ = diamond_setup()
        one = list(FaultProcess(rate=0.2, horizon=60.0, seed=3)
                   .materialize(net))
        two = list(FaultProcess(rate=0.2, horizon=60.0, seed=3)
                   .materialize(net))
        assert one == two
        other = list(FaultProcess(rate=0.2, horizon=60.0, seed=4)
                     .materialize(net))
        assert one != other

    def test_targets_only_switch_links(self):
        net, _ = diamond_setup()
        switch_links = set(net.switch_links())
        specs = list(FaultProcess(rate=0.5, horizon=120.0, seed=1)
                     .materialize(net))
        assert specs, "a 0.5 faults/s process over 120s drew nothing"
        for spec in specs:
            assert isinstance(spec, LinkFault)
            assert (spec.u, spec.v) in switch_links

    def test_times_within_horizon_and_heals_after(self):
        net, _ = diamond_setup()
        specs = list(FaultProcess(rate=0.5, horizon=60.0, seed=2)
                     .materialize(net))
        for spec in specs:
            assert 0.0 <= spec.at < 60.0
            assert spec.heal_at is not None and spec.heal_at > spec.at

    def test_permanent_faults(self):
        net, _ = diamond_setup()
        specs = list(FaultProcess(rate=0.5, horizon=60.0, seed=2,
                                  mean_downtime_s=None).materialize(net))
        assert specs and all(s.heal_at is None for s in specs)

    def test_switch_faults_drawable(self):
        net, _ = diamond_setup()
        specs = list(FaultProcess(rate=1.0, horizon=60.0, seed=5,
                                  switch_fault_prob=1.0).materialize(net))
        assert specs and all(isinstance(s, SwitchFault) for s in specs)


class TestBuildFaultSource:
    def test_none_and_empty(self):
        assert build_fault_source(None) is None
        assert build_fault_source({}) is None

    def test_builds_process(self):
        source = build_fault_source({"rate": 0.1, "horizon": 50.0,
                                     "seed": 9})
        assert isinstance(source, FaultProcess)
        assert source.rate == 0.1 and source.seed == 9
