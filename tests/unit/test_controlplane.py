"""Unit tests for the control-plane failure/latency models."""

import pytest

from repro.sim.controlplane import (
    ReliableControlPlane,
    ScriptedControlPlane,
    UnreliableControlPlane,
    build_control_plane,
)


class TestReliable:
    def test_never_fails_never_jitters(self):
        cp = ReliableControlPlane()
        assert cp.reliable
        assert all(cp.install_ok() for _ in range(50))
        assert all(cp.migration_ok() for _ in range(50))
        assert cp.attempt_jitter_s() == 0.0


class TestUnreliable:
    def test_validation(self):
        with pytest.raises(ValueError):
            UnreliableControlPlane(install_failure_prob=1.5)
        with pytest.raises(ValueError):
            UnreliableControlPlane(migration_failure_prob=-0.1)
        with pytest.raises(ValueError):
            UnreliableControlPlane(jitter_s=-1.0)

    def test_all_zero_knobs_report_reliable(self):
        # The executor uses `reliable` to take the historical fast path;
        # a zero-probability unreliable model must qualify.
        assert UnreliableControlPlane().reliable
        assert not UnreliableControlPlane(install_failure_prob=0.1).reliable
        assert not UnreliableControlPlane(jitter_s=0.01).reliable

    def test_deterministic_per_seed(self):
        one = UnreliableControlPlane(install_failure_prob=0.5, seed=7)
        two = UnreliableControlPlane(install_failure_prob=0.5, seed=7)
        assert [one.install_ok() for _ in range(64)] == \
            [two.install_ok() for _ in range(64)]

    def test_eventually_fails(self):
        cp = UnreliableControlPlane(install_failure_prob=0.5, seed=0)
        assert not all(cp.install_ok() for _ in range(64))

    def test_zero_prob_draws_no_randomness(self):
        # With a knob at 0 the matching hook must not consume RNG state,
        # otherwise enabling jitter alone would shift the failure stream.
        cp = UnreliableControlPlane(install_failure_prob=0.0,
                                    migration_failure_prob=0.5, seed=3)
        ref = UnreliableControlPlane(migration_failure_prob=0.5, seed=3)
        for _ in range(16):
            assert cp.install_ok()
        assert [cp.migration_ok() for _ in range(32)] == \
            [ref.migration_ok() for _ in range(32)]

    def test_jitter_bounded(self):
        cp = UnreliableControlPlane(jitter_s=0.25, seed=1)
        for _ in range(32):
            assert 0.0 <= cp.attempt_jitter_s() <= 0.25


class TestScripted:
    def test_replays_script_then_succeeds(self):
        cp = ScriptedControlPlane([False, True, False])
        assert not cp.reliable
        assert cp.migration_ok() is False
        assert cp.install_ok() is True
        assert cp.install_ok() is False
        assert cp.consumed == 3
        assert all(cp.install_ok() for _ in range(10))

    def test_constant_jitter(self):
        assert ScriptedControlPlane([], jitter_s=0.5).attempt_jitter_s() \
            == 0.5


class TestBuildControlPlane:
    def test_none_and_empty(self):
        assert build_control_plane(None) is None
        assert build_control_plane({}) is None

    def test_builds_unreliable(self):
        cp = build_control_plane({"install_failure_prob": 0.1, "seed": 4})
        assert isinstance(cp, UnreliableControlPlane)
        assert cp.install_failure_prob == 0.1 and cp.seed == 4
