"""Unit tests for routing utilities and the PathProvider cache."""

import random

import networkx as nx
import pytest

from repro.core.exceptions import TopologyError
from repro.network.routing.paths import (
    k_shortest_paths,
    path_hops,
    paths_avoiding,
    paths_through,
)
from repro.network.routing.provider import PathProvider
from repro.network.topology.fattree import FatTreeTopology


class TestKShortestPaths:
    @pytest.fixture(scope="class")
    def g(self):
        graph = nx.DiGraph()
        graph.add_edges_from([("a", "m1"), ("m1", "b"),
                              ("a", "m2"), ("m2", "b"),
                              ("a", "x"), ("x", "y"), ("y", "b")])
        return graph

    def test_returns_shortest_first(self, g):
        paths = k_shortest_paths(g, "a", "b", k=3)
        assert len(paths) == 3
        assert path_hops(paths[0]) <= path_hops(paths[-1])

    def test_k_limits_result(self, g):
        assert len(k_shortest_paths(g, "a", "b", k=2)) == 2

    def test_no_path_returns_empty(self, g):
        g2 = g.copy()
        g2.add_node("island")
        assert k_shortest_paths(g2, "a", "island") == []

    def test_unknown_node_returns_empty(self, g):
        assert k_shortest_paths(g, "a", "ghost") == []

    def test_nonpositive_k(self, g):
        assert k_shortest_paths(g, "a", "b", k=0) == []


class TestPathFilters:
    PATHS = [("a", "m1", "b"), ("a", "m2", "b")]

    def test_paths_avoiding(self):
        kept = paths_avoiding(self.PATHS, ("a", "m1"))
        assert kept == [("a", "m2", "b")]

    def test_paths_through(self):
        kept = paths_through(self.PATHS, ("m2", "b"))
        assert kept == [("a", "m2", "b")]

    def test_path_hops(self):
        assert path_hops(("a", "b", "c")) == 2
        assert path_hops(("a",)) == 0


class TestPathProvider:
    @pytest.fixture(scope="class")
    def topo(self):
        return FatTreeTopology(k=4)

    def test_caches_results(self, topo):
        provider = PathProvider(topo)
        first = provider.paths("h0_0_0", "h1_0_0")
        second = provider.paths("h0_0_0", "h1_0_0")
        assert first is second
        assert provider.cache_size() == 1

    def test_max_paths_cap(self, topo):
        provider = PathProvider(topo, max_paths=2)
        assert len(provider.paths("h0_0_0", "h1_0_0")) == 2

    def test_max_paths_validation(self, topo):
        with pytest.raises(ValueError):
            PathProvider(topo, max_paths=0)

    def test_banned_nodes_filtered(self, topo):
        provider = PathProvider(topo, banned_nodes={"a0_0"})
        for path in provider.paths("h0_0_0", "h1_0_0"):
            assert "a0_0" not in path

    def test_banned_everything_raises(self, topo):
        provider = PathProvider(topo, banned_nodes={"e0_0"})
        with pytest.raises(TopologyError, match="no path"):
            provider.paths("h0_0_0", "h1_0_0")

    def test_shuffled_paths_preserve_cache_order(self, topo):
        provider = PathProvider(topo)
        original = provider.paths("h0_0_0", "h1_0_0")
        snapshot = tuple(original)
        provider.shuffled_paths("h0_0_0", "h1_0_0", random.Random(3))
        assert provider.paths("h0_0_0", "h1_0_0") == snapshot

    def test_shuffled_paths_same_set(self, topo):
        provider = PathProvider(topo)
        shuffled = provider.shuffled_paths("h0_0_0", "h1_0_0",
                                           random.Random(3))
        assert sorted(shuffled) == sorted(provider.paths("h0_0_0",
                                                         "h1_0_0"))

    def test_warm(self, topo):
        provider = PathProvider(topo)
        provider.warm([("h0_0_0", "h1_0_0"), ("h0_0_0", "h2_0_0")])
        assert provider.cache_size() == 2
