"""Unit tests for the online ridge regressor behind L-LMTF."""

import json
import math

import pytest

from repro.sched.learned.model import OnlineRidge


def teach(model: OnlineRidge, rows, labels):
    for row, label in zip(rows, labels):
        model.update(row, label)


class TestValidation:
    def test_dim_must_be_positive(self):
        with pytest.raises(ValueError):
            OnlineRidge(dim=0)

    def test_lr_bounds(self):
        with pytest.raises(ValueError):
            OnlineRidge(dim=2, lr=0.0)
        with pytest.raises(ValueError):
            OnlineRidge(dim=2, lr=1.5)

    def test_l2_nonnegative(self):
        with pytest.raises(ValueError):
            OnlineRidge(dim=2, l2=-1e-3)

    def test_ewma_beta_bounds(self):
        with pytest.raises(ValueError):
            OnlineRidge(dim=2, ewma_beta=1.0)

    def test_feature_length_checked(self):
        model = OnlineRidge(dim=3)
        with pytest.raises(ValueError):
            model.update([1.0, 2.0], 0.5)
        with pytest.raises(ValueError):
            model.predict([1.0, 2.0, 3.0, 4.0])


class TestLearning:
    def test_learns_linear_relationship(self):
        # y = 2*x0 - x1 + 3, deterministic grid of inputs.
        model = OnlineRidge(dim=2, lr=0.1)
        rows = [[float(i % 7), float((3 * i) % 5)] for i in range(400)]
        teach(model, rows, [2.0 * a - b + 3.0 for a, b in rows])
        for a, b in ((1.0, 2.0), (4.0, 0.0), (6.0, 4.0)):
            assert model.predict([a, b]) == pytest.approx(
                2.0 * a - b + 3.0, abs=0.3)
        assert model.ewma_error < 0.2

    def test_update_returns_pre_step_error(self):
        model = OnlineRidge(dim=1, lr=0.5)
        model.update([1.0], 4.0)
        # First sample: normalizer not yet warm, prediction is the zero
        # bias, so the reported error is the full label.
        assert model.samples == 1

    def test_ewma_error_tracks_drift(self):
        model = OnlineRidge(dim=1, lr=0.1, ewma_beta=0.9)
        rows = [[float(i % 5)] for i in range(200)]
        teach(model, rows, [2.0 * r[0] for r in rows])
        settled = model.ewma_error
        # Shift the concept: same features, very different labels.
        teach(model, rows[:50], [2.0 * r[0] + 50.0 for r in rows[:50]])
        assert model.ewma_error > settled + 1.0

    def test_constant_feature_does_not_divide_by_zero(self):
        model = OnlineRidge(dim=2)
        teach(model, [[1.0, 5.0]] * 10, [3.0] * 10)
        assert math.isfinite(model.predict([1.0, 5.0]))

    def test_training_is_deterministic(self):
        def run():
            model = OnlineRidge(dim=3, lr=0.07)
            rows = [[float(i % 4), float(i % 6), 1.0] for i in range(120)]
            teach(model, rows, [r[0] - 2 * r[1] for r in rows])
            return model.to_dict()
        assert run() == run()


class TestSaveLoad:
    def test_roundtrip_is_exact(self, tmp_path):
        model = OnlineRidge(dim=2, lr=0.08, l2=1e-3)
        rows = [[float(i % 5), float(i % 3)] for i in range(60)]
        teach(model, rows, [r[0] + 0.5 * r[1] for r in rows])
        path = tmp_path / "model.json"
        model.save(path)
        loaded = OnlineRidge.load(path)
        assert loaded.to_dict() == model.to_dict()
        probe = [2.0, 1.0]
        assert loaded.predict(probe) == model.predict(probe)

    def test_loaded_model_trains_identically(self, tmp_path):
        model = OnlineRidge(dim=1)
        teach(model, [[float(i)] for i in range(30)], list(range(30)))
        path = tmp_path / "model.json"
        model.save(path)
        loaded = OnlineRidge.load(path)
        more = [([float(i % 9)], float(2 * (i % 9))) for i in range(40)]
        for row, label in more:
            model.update(row, label)
            loaded.update(row, label)
        assert loaded.to_dict() == model.to_dict()

    def test_save_is_json(self, tmp_path):
        model = OnlineRidge(dim=2)
        path = tmp_path / "m.json"
        model.save(path)
        data = json.loads(path.read_text())
        assert data["dim"] == 2
        assert len(data["weights"]) == 2

    def test_from_dict_rejects_dim_mismatch(self):
        payload = OnlineRidge(dim=2).to_dict()
        payload["weights"] = [0.0, 0.0, 0.0]
        with pytest.raises(ValueError):
            OnlineRidge.from_dict(payload)
