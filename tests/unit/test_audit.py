"""Tests for the lifecycle-invariant auditor (:mod:`repro.sim.audit`).

The positive cases prove the auditor stays silent on healthy runs (fault
pipeline included); the desync cases tamper one ledger mid-run — through a
hook subscriber wired *before* the auditor — and assert the very next
``PostRound`` audit raises :class:`AuditError` naming the drifted invariant
in its machine-readable diff.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ab_flow, diamond_setup  # noqa: E402

from repro.core.event import make_event
from repro.core.exceptions import SimulationError
from repro.sched.fifo import FIFOScheduler
from repro.sim.audit import AuditError, LifecycleAuditor
from repro.sim.hooks import PostRound
from repro.sim.lifecycle import EventState
from repro.sim.simulator import SimulationConfig, UpdateSimulator


def simple_events(count=3, demand=10.0, duration=2.0):
    return [make_event([ab_flow(f"e{i}f{j}", demand, duration)
                        for j in range(2)], label=f"e{i}")
            for i in range(count)]


def build_simulator(events=None, audit=None, config=None):
    net, provider = diamond_setup()
    sim = UpdateSimulator(net, provider, FIFOScheduler(),
                          config=config or SimulationConfig(
                              verify_invariants=True),
                          audit=audit)
    sim.submit(events if events is not None else simple_events())
    return sim


class _Tamper:
    """Hook plugin corrupting one ledger on the first PostRound.

    Attached *before* the auditor so the corruption is visible to the
    audit of the same round.
    """

    def __init__(self, corrupt):
        self._corrupt = corrupt
        self._done = False

    def attach(self, sim):
        self._sim = sim
        sim.hooks.subscribe(PostRound, self._on_post_round)

    def _on_post_round(self, hook):
        if not self._done:
            self._done = True
            self._corrupt(self._sim)


def run_tampered(corrupt):
    """Run a sim with ``corrupt`` applied just before the first audit."""
    sim = build_simulator()
    sim.attach(_Tamper(corrupt))
    auditor = LifecycleAuditor()
    sim.attach(auditor)
    with pytest.raises(AuditError) as excinfo:
        sim.run()
    return excinfo.value


class TestCleanRuns:
    def test_auditor_silent_on_clean_run(self):
        sim = build_simulator()
        auditor = LifecycleAuditor()
        sim.attach(auditor)
        metrics = sim.run()
        assert metrics.event_count == 3
        assert auditor.audits == metrics.rounds == 3
        auditor.assert_drained()

    def test_audit_kwarg_attaches_auditor(self):
        sim = build_simulator(audit=True)
        assert sim.auditor is not None
        sim.run()
        assert sim.auditor.audits == 3
        sim.auditor.assert_drained()

    def test_audit_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert build_simulator().auditor is None

    def test_env_var_enables_audit(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        sim = build_simulator()
        assert sim.auditor is not None
        sim.run()
        assert sim.auditor.audits == 3

    def test_env_var_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "0")
        assert build_simulator().auditor is None

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert build_simulator(audit=False).auditor is None

    def test_every_dilutes_audits(self):
        sim = build_simulator()
        auditor = LifecycleAuditor(every=2)
        sim.attach(auditor)
        sim.run()
        assert auditor.audits == 1  # only round 2 of rounds 1..3

    def test_every_validated(self):
        with pytest.raises(ValueError, match="every"):
            LifecycleAuditor(every=0)

    def test_detached_auditor_raises(self):
        with pytest.raises(SimulationError, match="not attached"):
            LifecycleAuditor().audit()

    def test_audit_identical_schedule(self):
        plain = build_simulator().run()
        audited = build_simulator(audit=True).run()
        assert audited == plain


class TestDesyncDetection:
    def test_events_remaining_drift(self):
        err = run_tampered(lambda sim: setattr(
            sim.pipeline, "_events_remaining",
            sim.pipeline.events_remaining + 1))
        assert "events_remaining_vs_lifecycle_live" in err.diff
        observed, expected = err.diff["events_remaining_vs_lifecycle_live"]
        assert observed == expected + 1

    def test_lifecycle_count_drift(self):
        # A lost transition: the lifecycle thinks one more event is queued
        # than the pipeline's queue holds.
        def corrupt(sim):
            sim.lifecycle._counts[EventState.QUEUED] += 1
            sim.lifecycle._counts[EventState.EXECUTING] -= 1
        err = run_tampered(corrupt)
        assert "queue_depth_vs_lifecycle_queued" in err.diff

    def test_mid_round_state_leak(self):
        def corrupt(sim):
            sim.lifecycle._counts[EventState.QUEUED] -= 1
            sim.lifecycle._counts[EventState.ADMITTED] += 1
        err = run_tampered(corrupt)
        assert "mid_round_states" in err.diff
        observed, _ = err.diff["mid_round_states"]
        assert observed == {"admitted": 1}

    def test_engine_tombstone_drift(self):
        # The legacy cancel-after-execute bug: pending undercounts the heap.
        err = run_tampered(lambda sim: setattr(
            sim.engine, "_cancelled", sim.engine._cancelled + 1))
        assert "engine_pending_vs_heap_recount" in err.diff

    def test_metrics_record_drift(self):
        err = run_tampered(
            lambda sim: sim.metrics_collector._records.pop(
                next(iter(sim.metrics_collector._records))))
        assert "metrics_records_vs_lifecycle_registered" in err.diff

    def test_round_count_drift(self):
        err = run_tampered(lambda sim: setattr(
            sim.metrics_collector, "_rounds",
            sim.metrics_collector.round_count + 1))
        assert "metrics_rounds_vs_round_index" in err.diff

    def test_error_message_names_all_failures(self):
        def corrupt(sim):
            sim.pipeline._events_remaining += 1
            sim.metrics_collector._rounds += 1
        err = run_tampered(corrupt)
        assert set(err.diff) == {"events_remaining_vs_lifecycle_live",
                                 "metrics_rounds_vs_round_index"}
        message = str(err)
        assert "events_remaining_vs_lifecycle_live" in message
        assert "metrics_rounds_vs_round_index" in message
        assert "round 1" in message

    def test_assert_drained_catches_leftovers(self):
        sim = build_simulator()
        auditor = LifecycleAuditor()
        sim.attach(auditor)
        sim.run()
        sim.pipeline._events_remaining = 5
        with pytest.raises(AuditError) as excinfo:
            auditor.assert_drained()
        assert excinfo.value.diff["events_remaining_zero"] == (5, 0)
