"""Tests for the write-ahead event journal: framing, torn tails, CRC."""

import json
import struct

import pytest

from repro.sim.journal import (
    JournalCorruptionError,
    JournalWriter,
    encode_record,
    scan_journal,
)

_HEADER = struct.Struct("<II")


def write_frames(path, records):
    with JournalWriter(path) as journal:
        for record in records:
            journal.append(record)
    return path


class TestScan:
    def test_round_trip(self, tmp_path):
        records = [{"kind": "ingest", "n": 1, "event": {"id": "U1"}},
                   {"kind": "complete", "event": "U1", "time": 4.25}]
        path = write_frames(tmp_path / "j.wal", records)
        scan = scan_journal(path)
        assert scan.records == records
        assert scan.torn_bytes == 0
        assert scan.valid_size == path.stat().st_size

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scan_journal(tmp_path / "absent.wal")

    def test_empty_file_is_clean(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"")
        scan = scan_journal(path)
        assert scan.records == [] and scan.valid_size == 0

    def test_torn_header_tolerated(self, tmp_path):
        path = write_frames(tmp_path / "j.wal", [{"kind": "ingest", "n": 1}])
        good = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x07\x00")
        scan = scan_journal(path)
        assert len(scan.records) == 1
        assert scan.valid_size == good
        assert scan.torn_bytes == 2

    def test_torn_payload_tolerated(self, tmp_path):
        path = write_frames(tmp_path / "j.wal", [{"kind": "ingest", "n": 1}])
        good = path.stat().st_size
        frame = encode_record({"kind": "complete", "event": "U1"})
        path.write_bytes(path.read_bytes() + frame[:-3])
        scan = scan_journal(path)
        assert len(scan.records) == 1
        assert scan.valid_size == good
        assert scan.torn_bytes == len(frame) - 3

    def test_crc_mismatch_in_complete_frame_raises(self, tmp_path):
        path = write_frames(tmp_path / "j.wal",
                            [{"kind": "ingest", "n": 1},
                             {"kind": "complete", "event": "U1"}])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last complete frame
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptionError, match="CRC mismatch"):
            scan_journal(path)

    def test_implausible_length_raises(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(_HEADER.pack(1 << 30, 0) + b"xx")
        with pytest.raises(JournalCorruptionError, match="claims"):
            scan_journal(path)

    def test_non_json_payload_raises(self, tmp_path):
        import zlib
        payload = b"\x80\x81not-json"
        path = tmp_path / "j.wal"
        path.write_bytes(_HEADER.pack(len(payload), zlib.crc32(payload))
                         + payload)
        with pytest.raises(JournalCorruptionError, match="not.*valid JSON"):
            scan_journal(path)


class TestEncode:
    def test_canonical_and_stable(self):
        assert (encode_record({"b": 1, "a": 2})
                == encode_record({"a": 2, "b": 1}))

    def test_floats_round_trip_exactly(self):
        record = {"time": 0.1 + 0.2}
        frame = encode_record(record)
        assert json.loads(frame[_HEADER.size:]) == record

    def test_oversize_record_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            encode_record({"blob": "x" * (17 * 1024 * 1024)})


class TestWriter:
    def test_append_is_immediately_durable(self, tmp_path):
        path = tmp_path / "j.wal"
        with JournalWriter(path) as journal:
            offset = journal.append({"kind": "ingest", "n": 1})
            # Readable by an independent scan before close().
            assert scan_journal(path).records == [{"kind": "ingest", "n": 1}]
            assert offset == path.stat().st_size
            assert journal.size == offset

    def test_reopen_continues_after_last_valid_frame(self, tmp_path):
        path = write_frames(tmp_path / "j.wal", [{"n": 1}])
        with JournalWriter(path) as journal:
            journal.append({"n": 2})
        assert [r["n"] for r in scan_journal(path).records] == [1, 2]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        path = write_frames(tmp_path / "j.wal", [{"n": 1}])
        path.write_bytes(path.read_bytes() + b"\x99\x99\x99")
        journal = JournalWriter(path)
        scan = journal.open()
        assert scan.torn_bytes == 3
        journal.append({"n": 2})
        journal.close()
        assert [r["n"] for r in scan_journal(path).records] == [1, 2]
        assert scan_journal(path).torn_bytes == 0

    def test_reopen_refuses_corrupt_journal(self, tmp_path):
        path = write_frames(tmp_path / "j.wal", [{"n": 1}, {"n": 2}])
        data = bytearray(path.read_bytes())
        data[_HEADER.size] ^= 0xFF  # corrupt the first frame's payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptionError):
            JournalWriter(path).open()

    def test_append_before_open_raises(self, tmp_path):
        journal = JournalWriter(tmp_path / "j.wal")
        with pytest.raises(RuntimeError, match="not open"):
            journal.append({"n": 1})

    def test_double_open_raises(self, tmp_path):
        journal = JournalWriter(tmp_path / "j.wal")
        journal.open()
        try:
            with pytest.raises(RuntimeError, match="already open"):
                journal.open()
        finally:
            journal.close()
