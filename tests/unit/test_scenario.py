"""Unit tests for the experiment Scenario scaffolding."""

import pytest

from repro.experiments.common import (
    DEFAULTS,
    Scenario,
    reduction,
    run_schedulers,
)
from repro.sched.fifo import FIFOScheduler
from repro.traces.events import EventGeneratorConfig


@pytest.fixture(scope="module")
def small_scenario():
    # k=8 is the experiment default; tests use light parameters on top of
    # the session-cached background to stay fast.
    return Scenario(utilization=0.3, seed=1, events=3, churn=False,
                    event_config=EventGeneratorConfig(min_flows=3,
                                                      max_flows=5))


class TestScenario:
    def test_defaults_frozen(self):
        assert DEFAULTS.k == 8
        assert DEFAULTS.alpha == 4

    def test_topology_cached(self, small_scenario):
        assert small_scenario.topology is small_scenario.topology
        assert small_scenario.provider is small_scenario.provider

    def test_loaded_network_returns_fresh_copies(self, small_scenario):
        first = small_scenario.loaded_network()
        second = small_scenario.loaded_network()
        assert first is not second
        assert first.total_used() == pytest.approx(second.total_used())

    def test_achieved_utilization_reported(self, small_scenario):
        assert small_scenario.achieved_utilization >= 0.3

    def test_event_generation_deterministic(self, small_scenario):
        a = small_scenario.generate_events()
        b = small_scenario.generate_events()
        assert [len(e) for e in a] == [len(e) for e in b]
        assert [f.demand for e in a for f in e.flows] == \
            [f.demand for e in b for f in e.flows]

    def test_timing_uses_defaults(self, small_scenario):
        timing = small_scenario.timing()
        assert timing.drain_s_per_mbps == DEFAULTS.drain_s_per_mbps

    def test_with_returns_modified_copy(self, small_scenario):
        changed = small_scenario.with_(events=7)
        assert changed.events == 7
        assert small_scenario.events == 3


class TestRunSchedulers:
    def test_runs_same_queue_for_each(self, small_scenario):
        results = run_schedulers(small_scenario, [FIFOScheduler()])
        assert set(results) == {"fifo"}
        assert results["fifo"].event_count == 3


class TestReduction:
    def test_reduction_math(self):
        assert reduction(100.0, 40.0) == pytest.approx(60.0)
        assert reduction(0.0, 40.0) == 0.0
