"""Unit tests for metric collection and aggregation."""

import pytest

from repro.sim.metrics import (
    EventRecord,
    MetricsCollector,
    RunMetrics,
    percentile,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_max(self):
        assert percentile([5.0, 1.0, 3.0], 100) == 5.0

    def test_p95_of_hundred(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 95) == 95.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestEventRecord:
    def test_ect_and_delay(self):
        record = EventRecord(event_id="U1", arrival_time=10.0, flow_count=3,
                             exec_start_time=15.0, completion_time=30.0)
        assert record.ect == 20.0
        assert record.queuing_delay == 5.0

    def test_incomplete_raises(self):
        record = EventRecord(event_id="U1", arrival_time=0.0, flow_count=1)
        with pytest.raises(ValueError):
            __ = record.ect
        with pytest.raises(ValueError):
            __ = record.queuing_delay


class TestCollector:
    def _collect_two_events(self) -> MetricsCollector:
        collector = MetricsCollector("test-sched")
        collector.on_enqueue("U1", 0.0, flow_count=2)
        collector.on_enqueue("U2", 0.0, flow_count=3)
        collector.on_round(plan_time=0.1)
        collector.on_exec_start("U1", 1.0)
        collector.on_admission("U1", cost=50.0, migrations=2)
        collector.on_setup_done("U1", 2.0)
        collector.on_completion("U1", 5.0)
        collector.on_round(plan_time=0.2)
        collector.on_exec_start("U2", 6.0)
        collector.on_admission("U2", cost=10.0, migrations=1)
        collector.on_completion("U2", 11.0)
        return collector

    def test_finalize_aggregates(self):
        metrics = self._collect_two_events().finalize()
        assert metrics.event_count == 2
        assert metrics.total_cost == pytest.approx(60.0)
        assert metrics.total_migrations == 3
        assert metrics.average_ect == pytest.approx((5.0 + 11.0) / 2)
        assert metrics.tail_ect == pytest.approx(11.0)
        assert metrics.average_queuing_delay == pytest.approx((1 + 6) / 2)
        assert metrics.worst_queuing_delay == pytest.approx(6.0)
        assert metrics.total_plan_time == pytest.approx(0.3)
        assert metrics.rounds == 2
        assert metrics.makespan == pytest.approx(11.0)
        assert metrics.scheduler == "test-sched"

    def test_exec_start_idempotent(self):
        collector = MetricsCollector("s")
        collector.on_enqueue("U1", 0.0, 1)
        collector.on_exec_start("U1", 3.0)
        collector.on_exec_start("U1", 9.0)  # later rounds don't move it
        assert collector.records["U1"].exec_start_time == 3.0

    def test_admission_accumulates(self):
        collector = MetricsCollector("s")
        collector.on_enqueue("U1", 0.0, 1)
        collector.on_admission("U1", cost=5.0, migrations=1)
        collector.on_admission("U1", cost=7.0, migrations=2)
        record = collector.records["U1"]
        assert record.cost == pytest.approx(12.0)
        assert record.migrations == 3

    def test_double_enqueue_rejected(self):
        collector = MetricsCollector("s")
        collector.on_enqueue("U1", 0.0, 1)
        with pytest.raises(ValueError):
            collector.on_enqueue("U1", 1.0, 1)

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector("s").on_completion("ghost", 1.0)

    def test_finalize_requires_completion(self):
        collector = MetricsCollector("s")
        collector.on_enqueue("U1", 0.0, 1)
        assert collector.incomplete_events() == ["U1"]
        with pytest.raises(ValueError, match="never completed"):
            collector.finalize()

    def test_summary_is_one_line(self):
        metrics = self._collect_two_events().finalize()
        assert "\n" not in metrics.summary()
        assert "test-sched" in metrics.summary()

    def test_per_event_series_in_arrival_order(self):
        collector = MetricsCollector("s")
        collector.on_enqueue("late", 5.0, 1)
        collector.on_enqueue("early", 1.0, 1)
        for eid, start, done in (("late", 6.0, 8.0), ("early", 2.0, 3.0)):
            collector.on_exec_start(eid, start)
            collector.on_completion(eid, done)
        metrics = collector.finalize()
        # "early" arrived first, so it leads the per-event series
        assert metrics.per_event_ect[0] == pytest.approx(2.0)
        assert metrics.per_event_ect[1] == pytest.approx(3.0)


class TestRunMetricsSerialization:
    def _metrics(self):
        collector = MetricsCollector("test-sched")
        collector.on_enqueue("U1", 0.0, 2)
        collector.on_enqueue("U2", 0.1, 3)
        collector.on_round(0.25, cache_hits=3, cache_misses=1,
                           cache_invalidations=1)
        collector.on_exec_start("U1", 1.0)
        collector.on_admission("U1", cost=12.5, migrations=2)
        collector.on_completion("U1", 2.5)
        collector.on_exec_start("U2", 2.5)
        collector.on_admission("U2", cost=0.125, migrations=0)
        collector.on_completion("U2", 4.0)
        return collector.finalize()

    def test_summary_reports_cost_as_volume(self):
        summary = self._metrics().summary()
        # total_cost is migrated traffic volume (Mbit), not a rate
        assert "Mbit " in summary or summary.rstrip().endswith("Mbit")
        assert "Mbps" not in summary
        assert "Mbit/s" not in summary

    def test_from_dict_is_exact_inverse_of_to_dict(self):
        import json
        metrics = self._metrics()
        assert RunMetrics.from_dict(metrics.to_dict()) == metrics
        # and exact through a JSON round-trip (repr-based float encoding)
        rebuilt = RunMetrics.from_dict(json.loads(
            json.dumps(metrics.to_dict())))
        assert rebuilt == metrics
        assert rebuilt.total_cost == metrics.total_cost
        assert rebuilt.per_event_ect == metrics.per_event_ect

    def test_to_dict_hit_rate_is_derived_not_stored(self):
        metrics = self._metrics()
        payload = metrics.to_dict()
        assert payload["probe_cache_hit_rate"] == pytest.approx(0.75)
        rebuilt = RunMetrics.from_dict(payload)
        assert rebuilt.probe_cache_hit_rate == pytest.approx(0.75)
