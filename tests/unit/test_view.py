"""Unit tests for the copy-on-write NetworkView."""

import networkx as nx
import pytest

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    UnknownFlowError,
)
from repro.core.flow import Flow
from repro.network.network import Network
from repro.network.view import NetworkView


def diamond() -> Network:
    g = nx.DiGraph()
    g.add_node("a", kind="host")
    g.add_node("b", kind="host")
    for s in ("s1", "s2", "top", "bot"):
        g.add_node(s, kind="edge")
    for u, v in (("a", "s1"), ("s1", "top"), ("s1", "bot"),
                 ("top", "s2"), ("bot", "s2"), ("s2", "b")):
        g.add_edge(u, v, capacity=100.0)
        g.add_edge(v, u, capacity=100.0)
    return Network(g)


TOP = ("a", "s1", "top", "s2", "b")
BOT = ("a", "s1", "bot", "s2", "b")


def flow(fid, demand=10.0):
    return Flow(flow_id=fid, src="a", dst="b", demand=demand)


@pytest.fixture()
def base() -> Network:
    net = diamond()
    net.place(flow("base1", 20.0), TOP)
    return net


class TestReads:
    def test_transparent_reads(self, base):
        view = NetworkView(base)
        assert view.used("s1", "top") == base.used("s1", "top")
        assert view.capacity("a", "s1") == 100.0
        assert view.has_flow("base1")
        assert view.placement("base1").path == TOP
        assert set(view.flow_ids()) == {"base1"}

    def test_graph_walks_to_base(self, base):
        view = NetworkView(NetworkView(base))
        assert view.graph is base.graph


class TestMutationIsolation:
    def test_place_does_not_touch_base(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), BOT)
        assert view.has_flow("v1")
        assert not base.has_flow("v1")
        assert base.used("s1", "bot") == pytest.approx(0.0)
        assert view.used("s1", "bot") == pytest.approx(10.0)

    def test_remove_does_not_touch_base(self, base):
        view = NetworkView(base)
        view.remove("base1")
        assert not view.has_flow("base1")
        assert base.has_flow("base1")
        with pytest.raises(UnknownFlowError):
            view.placement("base1")

    def test_flows_on_link_overlay(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), TOP)
        assert view.flows_on_link("s1", "top") == {"base1", "v1"}
        assert base.flows_on_link("s1", "top") == {"base1"}

    def test_flow_ids_merge(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), BOT)
        view.remove("base1")
        assert set(view.flow_ids()) == {"v1"}


class TestValidation:
    def test_duplicate_rejected_across_layers(self, base):
        view = NetworkView(base)
        with pytest.raises(DuplicateFlowError):
            view.place(flow("base1"), BOT)

    def test_insufficient_bandwidth_in_view(self, base):
        view = NetworkView(base)
        view.place(flow("v1", 75.0), BOT)  # a->s1 now at 20+75 = 95
        with pytest.raises(InsufficientBandwidthError):
            view.place(flow("v2", 10.0), BOT)

    def test_failed_place_leaves_view_clean(self, base):
        view = NetworkView(base)
        with pytest.raises(InsufficientBandwidthError):
            view.place(flow("big", 90.0), TOP)  # 20 + 90 > 100 on a->s1
        assert not view.dirty


class TestCommit:
    def test_commit_replays_onto_base(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), BOT)
        view.remove("base1")
        view.commit()
        assert base.has_flow("v1")
        assert not base.has_flow("base1")
        base.check_invariants()

    def test_commit_resets_view(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), BOT)
        view.commit()
        assert not view.dirty
        # after commit the view tracks fresh base state
        assert view.used("s1", "bot") == base.used("s1", "bot")

    def test_reroute_commit_matches_direct(self, base):
        direct = base.copy()
        direct.reroute("base1", BOT)

        view = NetworkView(base)
        view.reroute("base1", BOT)
        view.commit()
        assert base.placement("base1").path == BOT
        for link in (("s1", "top"), ("s1", "bot")):
            assert base.used(*link) == pytest.approx(direct.used(*link))
        base.check_invariants()

    def test_discarding_view_is_free(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), BOT)
        del view
        assert not base.has_flow("v1")
        base.check_invariants()

    def test_reset_discards_mutations(self, base):
        view = NetworkView(base)
        view.place(flow("v1"), BOT)
        view.reset()
        assert not view.has_flow("v1")
        assert view.used("s1", "bot") == pytest.approx(0.0)


class TestNestedViews:
    def test_child_sees_parent_mutations(self, base):
        parent = NetworkView(base)
        parent.place(flow("p1"), BOT)
        child = NetworkView(parent)
        assert child.has_flow("p1")
        assert child.used("s1", "bot") == pytest.approx(10.0)

    def test_child_commit_lands_in_parent_not_base(self, base):
        parent = NetworkView(base)
        child = NetworkView(parent)
        child.place(flow("c1"), BOT)
        child.commit()
        assert parent.has_flow("c1")
        assert not base.has_flow("c1")

    def test_two_level_commit_reaches_base(self, base):
        parent = NetworkView(base)
        child = NetworkView(parent)
        child.place(flow("c1"), BOT)
        child.commit()
        parent.commit()
        assert base.has_flow("c1")
        base.check_invariants()
