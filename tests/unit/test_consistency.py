"""Unit tests for plan-level transition-consistency analysis."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import BG_BOT, BG_TOP, TOP, ab_flow, cd_flow, diamond_setup, ef_flow  # noqa: E402

from repro.core.consistency import (
    is_one_shot_safe,
    one_shot_safety_rate,
    sequential_order_is_safe,
    transient_overloads,
)
from repro.core.event import make_event
from repro.core.plan import EventPlan
from repro.core.planner import EventPlanner


def plan_one(net, provider, flows, seed=1):
    planner = EventPlanner(provider)
    event = make_event(flows)
    return planner.plan_event(net, event, random.Random(seed))


class TestMigrationFreePlans:
    def test_free_plan_is_one_shot_safe(self):
        net, provider = diamond_setup()
        plan = plan_one(net, provider, [ab_flow("f1", 10.0)])
        assert plan.cost == 0
        assert is_one_shot_safe(net, plan)
        assert transient_overloads(net, plan) == []
        assert sequential_order_is_safe(net, plan)

    def test_new_flows_alone_can_overload_transiently_never(self):
        # without migrations, one-shot == sequential: both safe
        net, provider = diamond_setup()
        plan = plan_one(net, provider,
                        [ab_flow("f1", 30.0), ab_flow("f2", 30.0)])
        assert is_one_shot_safe(net, plan) == \
            sequential_order_is_safe(net, plan)


class TestMigrationPlans:
    def _tight_setup(self):
        """bg (45) blocks the desired middle; migrating it to the other
        middle works sequentially, but one-shot transiently needs bg on
        BOTH middles while the 60-Mbit/s event flow also lands."""
        net, provider = diamond_setup()
        net.place(cd_flow("bg", 45.0), BG_TOP)
        net.place(ef_flow("padding", 60.0), ("e", "s1", "bot", "s2", "f"))
        return net, provider

    def test_sequential_safe_by_construction(self):
        net, provider = self._tight_setup()
        plan = plan_one(net, provider, [ab_flow("new", 50.0)])
        if plan.feasible:
            assert sequential_order_is_safe(net, plan)

    def test_one_shot_overload_detected(self):
        net, provider = diamond_setup()
        # both middles carry 45, so whichever path the new 60-Mbit/s flow
        # hashes to needs a migration off it.
        net.place(cd_flow("bg", 45.0), BG_TOP)
        net.place(ef_flow("bg2", 45.0), ("e", "s1", "bot", "s2", "f"))
        plan = plan_one(net, provider, [ab_flow("new", 60.0)])
        assert plan.feasible and plan.cost > 0
        # one-shot: the migrated blocker transiently still occupies the
        # chosen middle (45) while the new flow (60) lands -> 105 > 100.
        overloads = transient_overloads(net, plan)
        chosen_middle = plan.flow_plans[0].path[2]  # 'top' or 'bot'
        assert any(chosen_middle in o.link for o in overloads)
        assert all(o.excess > 0 for o in overloads)
        assert not is_one_shot_safe(net, plan)
        # sequential order is fine regardless
        assert sequential_order_is_safe(net, plan)

    def test_infeasible_plan_is_not_sequential_safe(self):
        net, provider = diamond_setup()
        plan = plan_one(net, provider,
                        [ab_flow("f1", 60.0), ab_flow("f2", 60.0)])
        assert not plan.feasible
        assert not sequential_order_is_safe(net, plan)


class TestSafetyRate:
    def test_rate_over_mixed_plans(self):
        net, provider = diamond_setup()
        net.place(cd_flow("bg", 45.0), BG_TOP)
        plans = [
            plan_one(net, provider, [ab_flow("a", 5.0)], seed=1),
            plan_one(net, provider, [ab_flow("b", 60.0)], seed=2),
        ]
        rate = one_shot_safety_rate(net, plans)
        assert 0.0 <= rate <= 1.0

    def test_rate_empty_is_one(self):
        net, __ = diamond_setup()
        assert one_shot_safety_rate(net, []) == 1.0

    def test_rate_ignores_infeasible(self):
        net, provider = diamond_setup()
        bad = EventPlan(event=make_event([ab_flow("x", 1.0)]),
                        flow_plans=(),
                        blocked=(ab_flow("x2", 1.0),))
        good = plan_one(net, provider, [ab_flow("g", 5.0)])
        assert one_shot_safety_rate(net, [bad, good]) == 1.0
