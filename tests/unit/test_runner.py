"""Unit tests for the parallel experiment runner's mechanics.

Cheap cell functions live in ``tests/runner_cells.py`` so forked workers
can resolve them by ``"runner_cells:<name>"`` reference.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
import runner_cells  # noqa: E402,F401  (importable for worker fn refs)

from repro.core.flow import flow_id_state, next_flow_id
from repro.experiments.runner import (
    Cell,
    SweepError,
    SweepListener,
    hermetic_ids,
    load_checkpoint,
    resolve_cell_fn,
    run_cells,
)


def echo_cell(key, value):
    return Cell(key=key, fn="runner_cells:echo", params={"value": value})


class Recorder(SweepListener):
    def __init__(self):
        self.events = []

    def on_sweep_start(self, total, resumed, jobs):
        self.events.append(("start", total, resumed))

    def on_cell_start(self, key, attempt):
        self.events.append(("cell", key, attempt))

    def on_cell_done(self, key, elapsed, done, total):
        self.events.append(("done", key))

    def on_cell_failed(self, key, error, attempt, will_retry):
        self.events.append(("failed", key, attempt, will_retry))

    def on_cell_resumed(self, key):
        self.events.append(("resumed", key))

    def on_sweep_end(self, completed, failed, elapsed):
        self.events.append(("end", completed, failed))

    def count(self, kind):
        return sum(1 for e in self.events if e[0] == kind)


class TestCellBasics:
    def test_resolve_cell_fn(self):
        assert resolve_cell_fn("runner_cells:echo") is runner_cells.echo

    def test_resolve_rejects_bad_refs(self):
        with pytest.raises(ValueError, match="pkg.module:function"):
            resolve_cell_fn("no_colon_here")

    def test_fingerprint_tracks_params(self):
        a = echo_cell("k", 1)
        b = echo_cell("k", 2)
        assert a.fingerprint() == echo_cell("k", 1).fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_cells([echo_cell("k", 1), echo_cell("k", 2)])

    def test_hermetic_ids_restore(self):
        before = flow_id_state()
        with hermetic_ids():
            assert next_flow_id() == "f0"
        assert flow_id_state() == before
        # and restores even when the body raises
        with pytest.raises(RuntimeError):
            with hermetic_ids():
                next_flow_id()
                raise RuntimeError("boom")
        assert flow_id_state() == before


class TestSerial:
    def test_results_in_cell_order(self):
        cells = [echo_cell(f"c{i}", i) for i in range(5)]
        outcomes = run_cells(cells)
        assert list(outcomes) == [f"c{i}" for i in range(5)]
        assert [o.value["value"] for o in outcomes.values()] == list(range(5))

    def test_strict_failure_raises_sweep_error(self):
        cells = [echo_cell("good", 1),
                 Cell(key="bad", fn="runner_cells:boom",
                      params={"message": "nope"}),
                 echo_cell("also-good", 2)]
        with pytest.raises(SweepError, match="bad"):
            run_cells(cells, retries=0)

    def test_non_strict_records_traceback(self):
        outcomes = run_cells(
            [Cell(key="bad", fn="runner_cells:boom", params={})],
            retries=0, strict=False)
        assert not outcomes["bad"].ok
        assert "kaboom" in outcomes["bad"].error

    def test_retry_recovers_flaky_cell(self, tmp_path):
        listener = Recorder()
        outcomes = run_cells(
            [Cell(key="flaky", fn="runner_cells:flaky",
                  params={"scratch": str(tmp_path)})],
            retries=1, listener=listener)
        assert outcomes["flaky"].value == {"attempts": 2}
        assert outcomes["flaky"].attempts == 2
        assert listener.count("failed") == 1


class TestPool:
    def test_parallel_matches_serial(self):
        cells = [echo_cell(f"c{i}", i * 10) for i in range(6)]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=3)
        assert list(parallel) == list(serial)
        assert ([o.value["value"] for o in parallel.values()]
                == [o.value["value"] for o in serial.values()])

    def test_cells_run_in_other_processes(self):
        import os
        cells = [Cell(key=f"p{i}", fn="runner_cells:record_pid", params={})
                 for i in range(4)]
        outcomes = run_cells(cells, jobs=2)
        assert all(o.value != os.getpid() for o in outcomes.values())

    def test_worker_exception_reported_with_retry(self):
        listener = Recorder()
        outcomes = run_cells(
            [Cell(key="bad", fn="runner_cells:boom", params={})],
            jobs=2, retries=1, strict=False, listener=listener)
        assert not outcomes["bad"].ok
        assert "kaboom" in outcomes["bad"].error
        assert outcomes["bad"].attempts == 2
        assert listener.count("failed") == 2

    def test_timeout_kills_hung_worker(self):
        cells = [Cell(key="hang", fn="runner_cells:nap",
                      params={"seconds": 60.0}),
                 echo_cell("quick", 1)]
        outcomes = run_cells(cells, jobs=2, timeout=1.0, retries=0,
                             strict=False)
        assert not outcomes["hang"].ok
        assert "killed" in outcomes["hang"].error
        assert outcomes["quick"].ok

    def test_pool_needs_at_least_two_pending(self):
        # one runnable cell short-circuits to the in-process path
        outcomes = run_cells([echo_cell("only", 7)], jobs=8)
        assert outcomes["only"].value["value"] == 7


class TestCheckpoint:
    def test_checkpoint_roundtrip_and_resume(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        cells = [echo_cell(f"c{i}", i) for i in range(3)]
        first = run_cells(cells, checkpoint=ck)
        listener = Recorder()
        second = run_cells(cells, checkpoint=ck, resume=True,
                           listener=listener)
        assert listener.count("resumed") == 3
        assert listener.count("cell") == 0  # nothing recomputed
        assert ([o.value for o in second.values()]
                == [o.value for o in first.values()])
        assert all(o.cached for o in second.values())

    def test_fingerprint_mismatch_forces_recompute(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_cells([echo_cell("c0", 1)], checkpoint=ck)
        listener = Recorder()
        outcomes = run_cells([echo_cell("c0", 999)], checkpoint=ck,
                             resume=True, listener=listener)
        assert listener.count("resumed") == 0
        assert outcomes["c0"].value["value"] == 999

    def test_malformed_trailing_line_warns_and_recomputes(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        cells = [echo_cell(f"c{i}", i) for i in range(3)]
        run_cells(cells, checkpoint=ck)
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:-1]) + '\n{"key": "c2", "status\n')
        with pytest.warns(RuntimeWarning, match="trailing line"):
            entries = load_checkpoint(ck)
        assert set(entries) == {"c0", "c1"}
        listener = Recorder()
        with pytest.warns(RuntimeWarning):
            outcomes = run_cells(cells, checkpoint=ck, resume=True,
                                 listener=listener)
        assert listener.count("resumed") == 2
        assert listener.count("cell") == 1
        assert outcomes["c2"].value["value"] == 2

    def test_failed_entries_are_retried_on_resume(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_cells([Cell(key="flaky", fn="runner_cells:flaky",
                        params={"scratch": str(tmp_path)})],
                  checkpoint=ck, retries=0, strict=False)
        outcomes = run_cells(
            [Cell(key="flaky", fn="runner_cells:flaky",
                  params={"scratch": str(tmp_path)})],
            checkpoint=ck, resume=True, retries=0)
        assert outcomes["flaky"].ok
        # the checkpoint now ends with the successful entry
        entries = load_checkpoint(ck)
        assert entries["flaky"]["status"] == "ok"

    def test_without_resume_checkpoint_starts_fresh(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_cells([echo_cell("old", 1)], checkpoint=ck)
        run_cells([echo_cell("new", 2)], checkpoint=ck)
        entries = load_checkpoint(ck)
        assert set(entries) == {"new"}

    def test_checkpoint_lines_are_valid_json_records(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_cells([echo_cell("c0", 5)], checkpoint=ck)
        (line,) = ck.read_text().splitlines()
        entry = json.loads(line)
        assert entry["key"] == "c0"
        assert entry["status"] == "ok"
        assert len(entry["fingerprint"]) == 16
        assert entry["value"]["value"] == 5
