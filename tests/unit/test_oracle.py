"""Unit tests for the oracle SJF scheduler baselines."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ab_flow, cd_flow, diamond_setup  # noqa: E402

from repro.core.event import make_event
from repro.core.planner import EventPlanner
from repro.sched.base import QueuedEvent, SchedulingContext
from repro.sched.oracle import OracleSJFScheduler, event_signal


def make_context(network, provider, events):
    queue = [QueuedEvent(event, seq=i) for i, event in enumerate(events)]
    return SchedulingContext(now=0.0, queue=queue,
                             planner=EventPlanner(provider),
                             network=network, rng=random.Random(7))


class TestEventSignal:
    def test_width(self):
        event = make_event([ab_flow("w1", 5.0), ab_flow("w2", 5.0)])
        assert event_signal(event, "width") == 2.0

    def test_duration(self):
        event = make_event([ab_flow("d1", 5.0, duration=3.0),
                            ab_flow("d2", 5.0, duration=9.0)])
        assert event_signal(event, "duration") == 9.0

    def test_demand(self):
        event = make_event([ab_flow("m1", 5.0), ab_flow("m2", 7.0)])
        assert event_signal(event, "demand") == 12.0


class TestOracle:
    def test_signal_validation(self):
        with pytest.raises(ValueError):
            OracleSJFScheduler(signal="vibes")

    def test_name_includes_signal(self):
        assert OracleSJFScheduler(signal="width").name == "oracle-sjf-width"

    def test_picks_smallest_by_duration(self):
        net, provider = diamond_setup()
        slow = make_event([ab_flow("slow", 5.0, duration=60.0)],
                          label="slow")
        fast = make_event([cd_flow("fast", 5.0, duration=1.0)],
                          label="fast")
        ctx = make_context(net, provider, [slow, fast])
        decision = OracleSJFScheduler(signal="duration").select(ctx)
        assert decision.admissions[0].queued.event.label == "fast"

    def test_picks_smallest_by_width(self):
        net, provider = diamond_setup()
        wide = make_event([ab_flow(f"w{i}", 2.0) for i in range(4)],
                          label="wide")
        narrow = make_event([cd_flow("n", 2.0, duration=1.0)],
                            label="narrow")
        ctx = make_context(net, provider, [wide, narrow])
        decision = OracleSJFScheduler(signal="width").select(ctx)
        assert decision.admissions[0].queued.event.label == "narrow"

    def test_falls_back_when_smallest_blocked(self):
        net, provider = diamond_setup()
        net.place(cd_flow("hog", 95.0, duration=None),
                  ("c", "s1", "top", "s2", "d"))
        net.place(ab_flow("hog2", 95.0, duration=None)
                  .replace(duration=None),
                  ("a", "s1", "bot", "s2", "b"))
        # the small event (c->d, 60 Mbps) cannot fit anywhere: c's uplink
        # has 95 used; the bigger a->b event fits on top path? a's uplink
        # has 95 used too -> also blocked. Use a feasible bigger event.
        small_blocked = make_event([cd_flow("sb", 60.0, 1.0)],
                                   label="small")
        big_ok = make_event([ab_flow("ok", 4.0, duration=10.0)],
                            label="big")
        ctx = make_context(net, provider, [small_blocked, big_ok])
        decision = OracleSJFScheduler(signal="demand").select(ctx)
        assert decision.admissions[0].queued.event.label == "big"

    def test_empty_queue(self):
        net, provider = diamond_setup()
        assert OracleSJFScheduler().select(
            make_context(net, provider, [])).empty
