"""Unit tests for the migration planner (Definition 1 / Eq. 2-5).

Scenarios run on a diamond network: hosts ``a``/``b`` talk across two
disjoint middle paths (via ``top`` or ``bot``), and hosts ``c``/``d`` inject
background flows that share only the *middle* links with ``a->b`` traffic —
so migration (which can never free a host's own access link) has something
it can actually fix.
"""

import random

import networkx as nx
import pytest

from repro.core.flow import Flow
from repro.core.migration import MigrationConfig, MigrationPlanner
from repro.network.routing.provider import PathProvider
from repro.network.topology.custom import CustomTopology
from repro.network.view import NetworkView


def diamond_topology(capacity=100.0) -> CustomTopology:
    g = nx.Graph()
    for h in ("a", "b", "c", "d", "e", "f"):
        g.add_node(h, kind="host")
    for s in ("s1", "s2", "top", "bot"):
        g.add_node(s, kind="switch")
    for u, v in (("a", "s1"), ("c", "s1"), ("e", "s1"),
                 ("s1", "top"), ("s1", "bot"), ("top", "s2"),
                 ("bot", "s2"), ("s2", "b"), ("s2", "d"), ("s2", "f")):
        g.add_edge(u, v, capacity=capacity)
    return CustomTopology(g, name="diamond", max_paths=4)


TOP = ("a", "s1", "top", "s2", "b")
BOT = ("a", "s1", "bot", "s2", "b")
BG_TOP = ("c", "s1", "top", "s2", "d")
BG_BOT = ("c", "s1", "bot", "s2", "d")


def probe(fid, demand):
    """An a->b flow (the update flow whose path must be cleared)."""
    return Flow(flow_id=fid, src="a", dst="b", demand=demand)


def background(fid, demand):
    """A c->d flow sharing only middle links with a->b paths."""
    return Flow(flow_id=fid, src="c", dst="d", demand=demand)


@pytest.fixture()
def setup():
    topo = diamond_topology()
    net = topo.network()
    provider = PathProvider(topo)
    planner = MigrationPlanner(provider)
    return net, provider, planner


class TestConfig:
    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            MigrationConfig(strategy="magic")

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError):
            MigrationConfig(max_rounds=0)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            MigrationConfig(max_migrations_per_flow=0)


class TestCongestedLinks:
    def test_detects_congestion(self, setup):
        net, __, planner = setup
        net.place(probe("bg", 95.0), TOP)
        congested = planner.congested_links(net, TOP, demand=10.0)
        assert set(congested) == {("a", "s1"), ("s1", "top"),
                                  ("top", "s2"), ("s2", "b")}

    def test_clear_path_has_none(self, setup):
        net, __, planner = setup
        assert planner.congested_links(net, TOP, demand=10.0) == []


class TestMakeRoom:
    def test_no_congestion_returns_empty(self, setup):
        net, __, planner = setup
        view = NetworkView(net)
        migrations, ops = planner.make_room(view, probe("new", 10.0), TOP,
                                             frozenset(), random.Random(1))
        assert migrations == []
        assert ops > 0

    def test_migrates_blocking_flow(self, setup):
        net, __, planner = setup
        net.place(background("bg", 45.0), BG_TOP)
        view = NetworkView(net)
        migrations, __ops = planner.make_room(view, probe("new", 60.0), TOP,
                                               frozenset(), random.Random(1))
        assert migrations is not None
        assert [m.flow.flow_id for m in migrations] == ["bg"]
        assert migrations[0].new_path == BG_BOT
        assert view.path_feasible(TOP, 60.0)
        # base untouched until commit
        assert net.placement("bg").path == BG_TOP

    def test_protected_flows_not_migrated(self, setup):
        net, __, planner = setup
        net.place(background("bg", 45.0), BG_TOP)
        view = NetworkView(net)
        migrations, ops = planner.make_room(view, probe("new", 60.0), TOP,
                                             frozenset(["bg"]),
                                             random.Random(1))
        assert migrations is None  # bg was the only migratable flow
        assert ops > 0  # the failed attempt still charges its work

    def test_fails_when_alternate_is_full(self, setup):
        net, __, planner = setup
        net.place(background("bg1", 45.0), BG_TOP)
        net.place(Flow(flow_id="bg2", src="e", dst="f", demand=60.0),
                  ("e", "s1", "bot", "s2", "f"))
        view = NetworkView(net)
        # moving bg1 to bot needs 45+60 <= 100 there: impossible, and bg2
        # on bot cannot help the top path; no migration set exists.
        migrations, __ops = planner.make_room(view, probe("new", 60.0), TOP,
                                               frozenset(), random.Random(1))
        assert migrations is None

    def test_host_access_shortage_cannot_be_migrated(self, setup):
        net, __, planner = setup
        # a's own uplink is exhausted by another a-flow: no migration of
        # c/d traffic can ever free it.
        net.place(Flow(flow_id="mine", src="a", dst="b", demand=90.0), TOP)
        view = NetworkView(net)
        migrations, __ops = planner.make_room(view, probe("new", 60.0), TOP,
                                               frozenset(), random.Random(1))
        assert migrations is None

    def test_migration_cost_is_sum_of_demands(self, setup):
        net, __, planner = setup
        net.place(background("bg1", 20.0), BG_TOP)
        net.place(background("bg2", 25.0), BG_TOP)
        view = NetworkView(net)
        migrations, __ops = planner.make_room(view, probe("new", 80.0), TOP,
                                               frozenset(), random.Random(1))
        assert migrations is not None
        # residual was 55, need 80 -> deficit 25; best_fit moves bg2 alone
        total = sum(m.migrated_traffic for m in migrations)
        assert total == pytest.approx(25.0)
        assert [m.flow.flow_id for m in migrations] == ["bg2"]


class TestStrategies:
    def _net_with_two_blockers(self):
        topo = diamond_topology()
        net = topo.network()
        net.place(background("small", 20.0), BG_TOP)
        net.place(background("large", 30.0), BG_TOP)
        provider = PathProvider(topo)
        return net, provider

    def test_best_fit_prefers_single_cover(self):
        net, provider = self._net_with_two_blockers()
        planner = MigrationPlanner(provider,
                                   MigrationConfig(strategy="best_fit"))
        view = NetworkView(net)
        # middle residual 50, need 75 -> deficit 25: small(20) alone cannot
        # cover, large(30) can; best_fit moves exactly the large flow.
        migrations, __ = planner.make_room(view, probe("new", 75.0), TOP,
                                            frozenset(), random.Random(1))
        assert migrations is not None
        assert [m.flow.flow_id for m in migrations] == ["large"]

    def test_smallest_first_accumulates(self):
        net, provider = self._net_with_two_blockers()
        planner = MigrationPlanner(
            provider, MigrationConfig(strategy="smallest_first"))
        view = NetworkView(net)
        migrations, __ = planner.make_room(view, probe("new", 75.0), TOP,
                                            frozenset(), random.Random(1))
        assert migrations is not None
        moved = [m.flow.flow_id for m in migrations]
        assert moved[0] == "small"
        assert set(moved) == {"small", "large"}

    def test_largest_first_moves_large(self):
        net, provider = self._net_with_two_blockers()
        planner = MigrationPlanner(
            provider, MigrationConfig(strategy="largest_first"))
        view = NetworkView(net)
        migrations, __ = planner.make_room(view, probe("new", 75.0), TOP,
                                            frozenset(), random.Random(1))
        assert migrations is not None
        assert [m.flow.flow_id for m in migrations] == ["large"]


class TestBudgets:
    def test_migration_budget_respected(self):
        topo = diamond_topology()
        net = topo.network()
        for i in range(5):
            net.place(background(f"bg{i}", 10.0), BG_TOP)
        provider = PathProvider(topo)
        planner = MigrationPlanner(
            provider, MigrationConfig(strategy="smallest_first",
                                      max_migrations_per_flow=2))
        view = NetworkView(net)
        # middle residual 50, need 80 -> deficit 30 needs 3 flows of 10,
        # but the budget allows only 2.
        migrations, ops = planner.make_room(view, probe("new", 80.0), TOP,
                                             frozenset(), random.Random(1))
        assert migrations is None
        assert ops > 0
