"""Unit tests for leaf-spine and Jellyfish topologies."""

import pytest

from repro.core.exceptions import TopologyError
from repro.network.link import path_links
from repro.network.topology.jellyfish import JellyfishTopology
from repro.network.topology.leafspine import LeafSpineTopology


class TestLeafSpine:
    @pytest.fixture(scope="class")
    def topo(self):
        return LeafSpineTopology(leaves=4, spines=3, hosts_per_leaf=2)

    def test_counts(self, topo):
        assert len(topo.hosts()) == 8
        assert len(topo.switches()) == 7

    def test_validation(self):
        with pytest.raises(TopologyError):
            LeafSpineTopology(leaves=1)
        with pytest.raises(TopologyError):
            LeafSpineTopology(spines=0)
        with pytest.raises(TopologyError):
            LeafSpineTopology(link_capacity=-1)

    def test_same_leaf_single_path(self, topo):
        paths = topo.equal_cost_paths("h0_0", "h0_1")
        assert paths == [("h0_0", "l0", "h0_1")]

    def test_cross_leaf_one_path_per_spine(self, topo):
        paths = topo.equal_cost_paths("h0_0", "h3_1")
        assert len(paths) == 3
        spines = {path[2] for path in paths}
        assert spines == {"s0", "s1", "s2"}

    def test_paths_exist_in_graph(self, topo):
        g = topo.graph()
        for path in topo.equal_cost_paths("h0_0", "h2_0"):
            for u, v in path_links(path):
                assert g.has_edge(u, v)

    def test_locate_host(self, topo):
        assert topo.locate_host("h3_1") == (3, 1)
        with pytest.raises(TopologyError):
            topo.locate_host("h9_0")

    def test_same_host_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.equal_cost_paths("h0_0", "h0_0")


class TestJellyfish:
    @pytest.fixture(scope="class")
    def topo(self):
        return JellyfishTopology(switches=10, degree=3, hosts_per_switch=2,
                                 seed=1)

    def test_counts(self, topo):
        assert len(topo.hosts()) == 20
        assert len(topo.switches()) == 10

    def test_deterministic_given_seed(self):
        a = JellyfishTopology(switches=10, degree=3, seed=5)
        b = JellyfishTopology(switches=10, degree=3, seed=5)
        assert sorted(a.graph().edges()) == sorted(b.graph().edges())

    def test_switch_degree(self, topo):
        g = topo.graph()
        for j in range(10):
            switch = topo.switch_name(j)
            neighbors = [n for n in g.successors(switch)
                         if n.startswith("t")]
            assert len(neighbors) == 3

    def test_validation(self):
        with pytest.raises(TopologyError):
            JellyfishTopology(switches=3, degree=4)
        with pytest.raises(TopologyError):
            JellyfishTopology(switches=5, degree=3)  # odd product

    def test_paths_found_and_valid(self, topo):
        g = topo.graph()
        paths = topo.equal_cost_paths("h0_0", "h5_1")
        assert paths
        assert len(paths) <= topo.max_paths
        for path in paths:
            assert path[0] == "h0_0" and path[-1] == "h5_1"
            for u, v in path_links(path):
                assert g.has_edge(u, v)

    def test_non_host_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.equal_cost_paths("t0", "h0_0")
