"""Unit tests for switch rule-table (TCAM) capacity tracking."""

import random

import networkx as nx
import pytest

from repro.core.event import make_event
from repro.core.exceptions import RuleSpaceError, TopologyError
from repro.core.flow import Flow
from repro.core.planner import EventPlanner
from repro.network.network import Network
from repro.network.routing.provider import PathProvider
from repro.network.topology.custom import CustomTopology
from repro.network.view import NetworkView


def rules_diamond(top_rules=None, bot_rules=None, capacity=100.0):
    """The usual diamond; the middle switches may have finite rule tables."""
    g = nx.Graph()
    for h in ("a", "b", "c", "d"):
        g.add_node(h, kind="host")
    g.add_node("s1", kind="switch")
    g.add_node("s2", kind="switch")
    g.add_node("top", kind="switch",
               **({"rule_capacity": top_rules} if top_rules is not None
                  else {}))
    g.add_node("bot", kind="switch",
               **({"rule_capacity": bot_rules} if bot_rules is not None
                  else {}))
    for u, v in (("a", "s1"), ("c", "s1"), ("s1", "top"), ("s1", "bot"),
                 ("top", "s2"), ("bot", "s2"), ("s2", "b"), ("s2", "d")):
        g.add_edge(u, v, capacity=capacity)
    return CustomTopology(g, name="rules-diamond", max_paths=4)


TOP = ("a", "s1", "top", "s2", "b")
BOT = ("a", "s1", "bot", "s2", "b")


def flow(fid, demand=1.0):
    return Flow(flow_id=fid, src="a", dst="b", demand=demand, duration=1.0)


class TestNetworkRules:
    def test_untracked_network_is_free(self):
        net = rules_diamond().network()
        assert not net.tracks_rules
        assert net.rule_capacity("top") is None
        assert net.rules_free("top") is None
        for i in range(50):
            net.place(flow(f"f{i}"), TOP)
        net.check_invariants()

    def test_rules_consumed_and_freed(self):
        net = rules_diamond(top_rules=3).network()
        assert net.tracks_rules
        net.place(flow("f1"), TOP)
        assert net.rules_used("top") == 1
        assert net.rules_free("top") == 2
        net.remove("f1")
        assert net.rules_used("top") == 0
        net.check_invariants()

    def test_exhaustion_raises(self):
        net = rules_diamond(top_rules=2).network()
        net.place(flow("f1"), TOP)
        net.place(flow("f2"), TOP)
        with pytest.raises(RuleSpaceError) as err:
            net.place(flow("f3"), TOP)
        assert err.value.switch == "top"
        # state untouched by the failed placement
        assert net.rules_used("top") == 2
        assert not net.has_flow("f3")
        net.check_invariants()

    def test_other_path_still_open(self):
        net = rules_diamond(top_rules=1).network()
        net.place(flow("f1"), TOP)
        net.place(flow("f2"), BOT)  # bot is unlimited
        net.check_invariants()

    def test_negative_capacity_rejected(self):
        with pytest.raises(TopologyError):
            rules_diamond(top_rules=-1).network()

    def test_default_rule_capacity_applies_to_switches(self):
        topo = rules_diamond()
        net = Network(topo.graph(), default_rule_capacity=2)
        assert net.rule_capacity("top") == 2
        assert net.rule_capacity("a") is None  # hosts exempt

    def test_copy_preserves_rules(self):
        net = rules_diamond(top_rules=3).network()
        net.place(flow("f1"), TOP)
        clone = net.copy()
        assert clone.rules_used("top") == 1
        clone.remove("f1")
        assert net.rules_used("top") == 1
        net.check_invariants()
        clone.check_invariants()

    def test_invariants_catch_rule_drift(self):
        net = rules_diamond(top_rules=3).network()
        net.place(flow("f1"), TOP)
        net._rules_used_col[net._node_index["top"]] += 1
        with pytest.raises(AssertionError):
            net.check_invariants()

    def test_reroute_moves_rules(self):
        net = rules_diamond(top_rules=2, bot_rules=2).network()
        net.place(flow("f1"), TOP)
        net.reroute("f1", BOT)
        assert net.rules_used("top") == 0
        assert net.rules_used("bot") == 1
        net.check_invariants()


class TestViewRules:
    def test_view_overlay_isolated(self):
        net = rules_diamond(top_rules=2).network()
        view = NetworkView(net)
        view.place(flow("v1"), TOP)
        assert view.rules_used("top") == 1
        assert net.rules_used("top") == 0

    def test_view_enforces_limits(self):
        net = rules_diamond(top_rules=1).network()
        view = NetworkView(net)
        view.place(flow("v1"), TOP)
        with pytest.raises(RuleSpaceError):
            view.place(flow("v2"), TOP)

    def test_commit_lands_rules_in_base(self):
        net = rules_diamond(top_rules=2).network()
        view = NetworkView(net)
        view.place(flow("v1"), TOP)
        view.commit()
        assert net.rules_used("top") == 1
        net.check_invariants()

    def test_remove_in_view_frees_rules(self):
        net = rules_diamond(top_rules=1).network()
        net.place(flow("f1"), TOP)
        view = NetworkView(net)
        view.remove("f1")
        assert view.rules_used("top") == 0
        view.place(flow("v1"), TOP)  # slot freed in the view
        assert net.rules_used("top") == 1  # base untouched


class TestPlannerWithRules:
    def test_planner_routes_around_full_switch(self):
        topo = rules_diamond(top_rules=0)
        net = topo.network()
        planner = EventPlanner(PathProvider(topo))
        event = make_event([flow(f"u{i}") for i in range(3)])
        plan = planner.plan_event(net, event, random.Random(1),
                                  commit=True)
        assert plan.feasible
        for fp in plan.flow_plans:
            assert "top" not in fp.path
        net.check_invariants()

    def test_planner_blocks_when_all_tables_full(self):
        topo = rules_diamond(top_rules=0, bot_rules=0)
        net = topo.network()
        planner = EventPlanner(PathProvider(topo))
        event = make_event([flow("u1")])
        plan = planner.plan_event(net, event, random.Random(1))
        assert not plan.feasible
