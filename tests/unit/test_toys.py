"""Unit tests for the Fig. 2 / Fig. 3 toy models — pinned to the paper."""

import pytest

from repro.experiments.toys import (
    ToyEvent,
    cost_order_ects,
    event_level_ects,
    fifo_ects,
    flow_level_ects,
    paper_fig2_events,
    paper_fig3_events,
)


class TestFig2Arithmetic:
    def test_event_level_matches_paper(self):
        ects = event_level_ects(paper_fig2_events())
        assert ects == [3.0, 7.0, 12.0]
        assert sum(ects) / 3 == pytest.approx(22 / 3)

    def test_flow_level_matches_paper(self):
        ects = flow_level_ects(paper_fig2_events(), round_order=[2, 1, 0])
        assert ects == [9.0, 11.0, 12.0]
        assert sum(ects) / 3 == pytest.approx(32 / 3)

    def test_flow_level_default_order(self):
        ects = flow_level_ects(paper_fig2_events())
        # forward RR: E1's three flows land on slots 1,4,7
        assert ects == [7.0, 10.0, 12.0]

    def test_bad_round_order_rejected(self):
        with pytest.raises(ValueError):
            flow_level_ects(paper_fig2_events(), round_order=[0, 0, 1])

    def test_tail_identical_both_ways(self):
        events = paper_fig2_events()
        assert max(event_level_ects(events)) == \
            max(flow_level_ects(events, round_order=[2, 1, 0]))


class TestFig3Arithmetic:
    def test_fifo_matches_paper(self):
        ects = fifo_ects(paper_fig3_events())
        assert ects == [5.0, 7.0, 9.0]
        assert sum(ects) / 3 == pytest.approx(7.0)

    def test_cost_order_matches_paper(self):
        ects = cost_order_ects(paper_fig3_events())
        assert ects["U2"] == 2.0
        assert ects["U3"] == 4.0
        assert ects["U1"] == 9.0
        assert sum(ects.values()) / 3 == pytest.approx(5.0)

    def test_tail_unchanged(self):
        events = paper_fig3_events()
        assert max(fifo_ects(events)) == max(cost_order_ects(events)
                                             .values())


class TestGenericToys:
    def test_custom_slot_length(self):
        events = [ToyEvent("A", flows=2)]
        assert event_level_ects(events, slot=0.5) == [1.0]

    def test_single_event_flow_level_equals_event_level(self):
        events = [ToyEvent("A", flows=4)]
        assert flow_level_ects(events) == event_level_ects(events)
