"""Unit tests for the plan compiler, staged execution, and tie-breaking.

The hypothesis suite (``tests/property/test_compile_properties.py``) covers
the compiler's invariants over random workloads; these tests pin the exact
behavior on one hand-built scenario — config validation, stage boundaries,
the augmented merge, whole-plan rollback, per-stage timing charges, and the
staged schedulers' cost-tie stage-count preference.
"""

import random
import sys
import types
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import BG_BOT, BG_TOP, TOP, ab_flow, cd_flow, diamond_setup  # noqa: E402

from repro.core.compile import (
    COMPILE_MODES,
    PlanCompilerConfig,
    compile_plan,
)
from repro.core.event import make_event
from repro.core.exceptions import PlacementError
from repro.core.executor import PlanExecutor, apply_plan, apply_stages
from repro.core.ordering import plan_steps
from repro.core.plan import EventPlan, FlowPlan
from repro.core.planner import EventPlanner
from repro.sched.base import QueuedEvent
from repro.sched.staged import StagedLMTFScheduler, StagedPLMTFScheduler
from repro.sim.timing import TimingModel


@pytest.fixture()
def planned():
    """(network, provider, plan) where the plan needs one migration.

    Background: 45 units a-top (``bgt``), 10 units a-bot (``bgb``); the
    event flow wants 60 on the 100-capacity diamond, so the planner must
    move ``bgt`` to the bottom path first. One-shot application transiently
    holds both flows on the top links (105/100), so staged compilation
    splits the plan at exactly that boundary.
    """
    net, provider = diamond_setup()
    net.place(cd_flow("bgt", 45.0), BG_TOP)
    net.place(cd_flow("bgb", 10.0), BG_BOT)
    planner = EventPlanner(provider)
    event = make_event([ab_flow("f1", 60.0)])
    plan = planner.plan_event(net, event, random.Random(1), commit=False)
    assert plan.feasible and plan.cost == 45.0
    return net, provider, plan


class TestConfigValidation:
    def test_defaults_are_atomic(self):
        config = PlanCompilerConfig()
        assert config.mode == "atomic" and config.epsilon == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown compile mode"):
            PlanCompilerConfig(mode="eventual")

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError, match="epsilon"):
            PlanCompilerConfig(mode="augmented", epsilon=-0.1)

    @pytest.mark.parametrize("mode", ["atomic", "staged"])
    def test_epsilon_requires_augmented(self, mode):
        with pytest.raises(ValueError, match="augmented"):
            PlanCompilerConfig(mode=mode, epsilon=0.1)

    def test_all_modes_construct(self):
        for mode in COMPILE_MODES:
            assert PlanCompilerConfig(mode=mode).mode == mode


class TestCompile:
    def test_atomic_is_one_stage_with_overshoot_recorded(self, planned):
        net, _, plan = planned
        compiled = compile_plan(net, plan)  # None config == atomic
        assert compiled.mode == "atomic"
        assert compiled.stage_count == 1
        assert compiled.stages[0].steps == tuple(plan_steps(plan))
        # One-shot application holds bgt and f1 on top simultaneously:
        # 105 on a 100-capacity link.
        assert compiled.max_transient_overload == pytest.approx(0.05)

    def test_atomic_one_shot_safe_records_zero(self, planned):
        net, provider, _ = planned
        planner = EventPlanner(provider)
        event = make_event([ab_flow("tiny", 10.0)])
        plan = planner.plan_event(net, event, random.Random(1), commit=False)
        assert plan.cost == 0.0
        compiled = compile_plan(net, plan)
        assert compiled.stage_count == 1
        assert compiled.max_transient_overload == 0.0

    def test_staged_splits_at_the_transient_conflict(self, planned):
        net, _, plan = planned
        compiled = compile_plan(net, plan,
                                PlanCompilerConfig(mode="staged"))
        # Stage 1 drains bgt to the bottom path; stage 2 installs f1 once
        # the top links are genuinely free. No stage oversubscribes.
        assert compiled.stage_count == 2
        assert [s.kind.value for s in compiled.stages[0].steps] == ["migrate"]
        assert [s.kind.value for s in compiled.stages[1].steps] == ["place"]
        assert compiled.max_transient_overload == 0.0
        # Stage-by-stage steps are the plan order, just partitioned.
        assert compiled.steps == tuple(plan_steps(plan))

    def test_augmented_merges_within_epsilon(self, planned):
        net, _, plan = planned
        compiled = compile_plan(
            net, plan, PlanCompilerConfig(mode="augmented", epsilon=0.1))
        # The 5% transient overshoot fits the 10% budget: one stage.
        assert compiled.stage_count == 1
        assert compiled.epsilon == 0.1
        assert compiled.max_transient_overload == pytest.approx(0.05)

    def test_augmented_below_the_overshoot_still_splits(self, planned):
        net, _, plan = planned
        compiled = compile_plan(
            net, plan, PlanCompilerConfig(mode="augmented", epsilon=0.01))
        assert compiled.stage_count == 2
        assert compiled.max_transient_overload == 0.0

    def test_compile_is_read_only(self, planned):
        net, _, plan = planned
        before = {lk: net.used(*lk) for lk in net.links()}
        compile_plan(net, plan, PlanCompilerConfig(mode="staged"))
        assert {lk: net.used(*lk) for lk in net.links()} == before
        net.check_invariants()


class TestApplyStages:
    def test_staged_final_state_matches_atomic(self, planned):
        net, _, plan = planned
        compiled = compile_plan(net, plan,
                                PlanCompilerConfig(mode="staged"))
        rerouted = apply_stages(net, compiled)
        assert rerouted == ["bgt"]
        assert net.placement("bgt").path == BG_BOT
        assert net.placement("f1").path == TOP
        net.check_invariants()

    def test_failure_in_late_stage_rolls_back_earlier_stages(self, planned):
        net, _, plan = planned
        compiled = compile_plan(net, plan,
                                PlanCompilerConfig(mode="staged"))
        assert compiled.stage_count == 2
        # Invalidate stage 2 only: a thief takes the top capacity f1
        # needs, while stage 1's migration to the bottom path still fits.
        net.place(ab_flow("thief", 50.0), TOP)
        with pytest.raises(PlacementError):
            apply_stages(net, compiled)
        # Whole-plan rollback: the stage-1 migration was undone too.
        assert net.placement("bgt").path == BG_TOP
        assert not net.has_flow("f1")
        net.check_invariants()


class TestExecutorCompiled:
    def test_atomic_compiler_normalized_away(self):
        executor = PlanExecutor(compiler=PlanCompilerConfig())
        assert executor.compiler is None

    def test_record_carries_stage_telemetry(self, planned):
        net, _, plan = planned
        timing = TimingModel()
        executor = PlanExecutor(
            timing=timing, compiler=PlanCompilerConfig(mode="staged"))
        record = executor.execute(net, plan, start_time=3.0)
        assert record.stage_count == 2
        assert record.max_transient_overload == 0.0
        assert record.epsilon == 0.0
        # Each stage past the first costs one extra install round trip.
        assert record.install_time == pytest.approx(
            timing.install_time(len(plan.flow_plans), stages=2))
        assert record.install_time > timing.install_time(
            len(plan.flow_plans))
        assert record.finish_setup_time == pytest.approx(
            3.0 + record.migration_time + record.install_time)

    def test_augmented_record_reports_overshoot(self, planned):
        net, _, plan = planned
        executor = PlanExecutor(
            compiler=PlanCompilerConfig(mode="augmented", epsilon=0.1))
        record = executor.execute(net, plan, start_time=0.0)
        assert record.stage_count == 1
        assert record.epsilon == 0.1
        assert record.max_transient_overload == pytest.approx(0.05)


class TestStagedSchedulers:
    def test_predict_stages_matches_compile(self, planned):
        net, _, plan = planned
        sched = StagedLMTFScheduler(alpha=1)
        assert sched.predict_stages(net, plan) == 2
        augmented = StagedLMTFScheduler(alpha=1, mode="augmented",
                                        epsilon=0.1)
        assert augmented.predict_stages(net, plan) == 1

    def _probe(self, event_id, arrival, seq):
        event = make_event([ab_flow(f"{event_id}-f", 5.0)],
                           arrival_time=arrival, label=event_id)
        queued = QueuedEvent(event=event, seq=seq)
        plan = EventPlan(event=event, flow_plans=(
            FlowPlan(flow=event.flows[0], path=TOP),))
        return queued, plan

    def test_stage_count_breaks_cost_ties(self):
        # Both probes cost 0; the later arrival compiles shorter, so the
        # staged pick inverts the FIFO order — exactly the tie-break rule.
        sched = StagedLMTFScheduler(alpha=1)
        first = self._probe("early", arrival=0.0, seq=0)
        second = self._probe("late", arrival=1.0, seq=1)
        stages = {"early": 3, "late": 1}
        sched.predict_stages = (
            lambda state, plan: stages[plan.event.label])
        ctx = types.SimpleNamespace(network=None)
        picked = sched.pick_staged(ctx, [first, second])
        assert picked is not None
        (queued, _), predicted = picked
        assert queued.event.label == "late"
        assert predicted == 1

    def test_equal_stages_falls_back_to_arrival_order(self):
        sched = StagedLMTFScheduler(alpha=1)
        first = self._probe("early", arrival=0.0, seq=0)
        second = self._probe("late", arrival=1.0, seq=1)
        sched.predict_stages = lambda state, plan: 1
        ctx = types.SimpleNamespace(network=None)
        picked = sched.pick_staged(ctx, [first, second])
        assert picked is not None
        assert picked[0][0].event.label == "early"

    def test_decide_reports_predicted_stages(self, planned):
        net, _, plan = planned
        queued = QueuedEvent(event=plan.event)
        ctx = types.SimpleNamespace(network=net)
        for sched in (StagedLMTFScheduler(alpha=1),
                      StagedPLMTFScheduler(alpha=1)):
            decision = sched.decide(ctx, [(queued, plan)], ops=1)
            assert [a.plan for a in decision.admissions] == [plan]
            assert decision.predicted_stages == {plan.event.event_id: 2}


class TestStagedVsAtomicParity:
    def test_settled_loads_identical(self, planned):
        net, _, plan = planned
        twin, _ = diamond_setup()
        twin.place(cd_flow("bgt", 45.0), BG_TOP)
        twin.place(cd_flow("bgb", 10.0), BG_BOT)
        apply_plan(net, plan)
        apply_stages(twin, compile_plan(
            twin, plan, PlanCompilerConfig(mode="staged")))
        assert ({lk: net.used(*lk) for lk in net.links()}
                == {lk: twin.used(*lk) for lk in twin.links()})
