"""Unit tests for greedy safe ordering of update steps."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import BG_BOT, BG_TOP, ab_flow, cd_flow, diamond_setup, ef_flow  # noqa: E402

from repro.core.event import make_event
from repro.core.flow import Flow
from repro.core.ordering import (
    OrderingResult,
    Step,
    StepKind,
    find_safe_order,
    plan_steps,
    reorder_plan,
)
from repro.core.plan import FlowPlan, Migration
from repro.core.planner import EventPlanner


def place_step(flow, path):
    return Step(kind=StepKind.PLACE, flow_id=flow.flow_id,
                path=tuple(path), demand=flow.demand,
                payload=FlowPlan(flow=flow, path=tuple(path)))


def migrate_step(flow, old_path, new_path):
    migration = Migration(flow=flow, old_path=tuple(old_path),
                          new_path=tuple(new_path))
    return Step(kind=StepKind.MIGRATE, flow_id=flow.flow_id,
                path=tuple(new_path), demand=flow.demand,
                payload=migration)


class TestPlanSteps:
    def test_decomposition_preserves_order(self):
        net, provider = diamond_setup()
        net.place(cd_flow("bgt", 45.0), BG_TOP)
        net.place(ef_flow("bgb", 45.0), ("e", "s1", "bot", "s2", "f"))
        planner = EventPlanner(provider)
        plan = planner.plan_event(net, make_event([ab_flow("f1", 60.0)]),
                                  random.Random(1))
        steps = plan_steps(plan)
        assert steps[-1].kind is StepKind.PLACE
        assert any(s.kind is StepKind.MIGRATE for s in steps)


class TestFindSafeOrder:
    def test_already_ordered_steps_pass(self):
        net, __ = diamond_setup()
        steps = [place_step(ab_flow("f1", 10.0),
                            ("a", "s1", "top", "s2", "b"))]
        result = find_safe_order(net, steps)
        assert result.complete
        assert len(result.order) == 1
        assert not net.has_flow("f1")  # probe only

    def test_apply_commits_complete_order(self):
        net, __ = diamond_setup()
        steps = [place_step(ab_flow("f1", 10.0),
                            ("a", "s1", "top", "s2", "b"))]
        result = find_safe_order(net, steps, apply=True)
        assert result.complete
        assert net.has_flow("f1")
        net.check_invariants()

    def test_reorders_out_of_order_steps(self):
        """The placement is listed first but only fits after the migration
        frees the link — greedy must discover migration-then-place."""
        net, __ = diamond_setup()
        bg = cd_flow("bg", 60.0)
        net.place(bg, BG_TOP)
        new_flow = ab_flow("new", 70.0)
        steps = [
            place_step(new_flow, ("a", "s1", "top", "s2", "b")),
            migrate_step(bg, BG_TOP, BG_BOT),
        ]
        result = find_safe_order(net, steps, apply=True)
        assert result.complete
        assert [s.flow_id for s in result.order] == ["bg", "new"]
        assert net.placement("bg").path == BG_BOT
        net.check_invariants()

    def test_swap_deadlock_reported(self):
        """Two flows that must swap links cannot be ordered sequentially
        (real Dionysus would split them)."""
        net, __ = diamond_setup()
        f_top = cd_flow("swap_top", 60.0)
        f_bot = ef_flow("swap_bot", 60.0)
        net.place(f_top, BG_TOP)
        net.place(f_bot, ("e", "s1", "bot", "s2", "f"))
        steps = [
            migrate_step(f_top, BG_TOP, BG_BOT),
            migrate_step(f_bot, ("e", "s1", "bot", "s2", "f"),
                         ("e", "s1", "top", "s2", "f")),
        ]
        result = find_safe_order(net, steps)
        assert not result.complete
        assert len(result.stuck) == 2
        # nothing committed on failure
        assert net.placement("swap_top").path == BG_TOP

    def test_partial_order_not_applied(self):
        net, __ = diamond_setup()
        ok = place_step(ab_flow("ok", 10.0),
                        ("a", "s1", "top", "s2", "b"))
        impossible = place_step(ab_flow("nope", 200.0),
                                ("a", "s1", "bot", "s2", "b"))
        result = find_safe_order(net, [ok, impossible], apply=True)
        assert not result.complete
        assert len(result.order) == 1
        assert not net.has_flow("ok")  # partial orders never commit

    def test_migration_of_absent_flow_is_stuck(self):
        net, __ = diamond_setup()
        ghost = cd_flow("ghost", 10.0)
        steps = [migrate_step(ghost, BG_TOP, BG_BOT)]
        result = find_safe_order(net, steps)
        assert not result.complete


class TestReorderPlan:
    def test_recovers_stale_plan(self):
        """Plan computed on one state, applied after drift: the built-in
        order may break, but a reorder still works when feasible."""
        net, provider = diamond_setup()
        net.place(cd_flow("bgt", 45.0), BG_TOP)
        planner = EventPlanner(provider)
        plan = planner.plan_event(net, make_event([ab_flow("f1", 60.0)]),
                                  random.Random(1))
        assert plan.feasible
        result = reorder_plan(net, plan, apply=True)
        assert result.complete
        assert net.has_flow(plan.flow_plans[0].flow.flow_id)
        net.check_invariants()

    def test_describe(self):
        step = place_step(ab_flow("fx", 12.0),
                          ("a", "s1", "top", "s2", "b"))
        assert "place fx" in step.describe()
