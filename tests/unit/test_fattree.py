"""Unit tests for the Fat-Tree topology."""

import pytest

from repro.core.exceptions import TopologyError
from repro.network.link import path_links
from repro.network.topology.fattree import FatTreeTopology


class TestConstruction:
    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            FatTreeTopology(k=3)

    def test_k_below_two_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(k=0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(k=4, link_capacity=0.0)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_paper_counts(self, k):
        """5k^2/4 switches and k^3/4 hosts (paper §V-A)."""
        topo = FatTreeTopology(k=k)
        assert topo.num_switches == 5 * k * k // 4
        assert topo.num_hosts == k ** 3 // 4
        assert len(topo.hosts()) == topo.num_hosts
        assert len(topo.switches()) == topo.num_switches

    def test_k8_matches_paper(self):
        topo = FatTreeTopology(k=8)
        assert topo.num_switches == 80
        assert topo.num_hosts == 128

    def test_links_are_duplex_with_capacity(self):
        topo = FatTreeTopology(k=4, link_capacity=1000.0)
        g = topo.graph()
        for u, v, data in g.edges(data=True):
            assert g.has_edge(v, u)
            assert data["capacity"] == 1000.0

    def test_graph_is_cached(self):
        topo = FatTreeTopology(k=4)
        assert topo.graph() is topo.graph()


class TestNaming:
    def test_locate_host_roundtrip(self):
        topo = FatTreeTopology(k=4)
        assert topo.locate_host(topo.host_name(2, 1, 0)) == (2, 1, 0)

    def test_locate_rejects_garbage(self):
        topo = FatTreeTopology(k=4)
        for bad in ("x1_2_3", "h1_2", "h9_0_0", "e0_1", "h1_5_0"):
            with pytest.raises(TopologyError):
                topo.locate_host(bad)


class TestPaths:
    @pytest.fixture(scope="class")
    def topo(self):
        return FatTreeTopology(k=4)

    def test_same_edge_single_path(self, topo):
        paths = topo.equal_cost_paths("h0_0_0", "h0_0_1")
        assert len(paths) == 1
        assert paths[0] == ("h0_0_0", "e0_0", "h0_0_1")

    def test_same_pod_k_half_paths(self, topo):
        paths = topo.equal_cost_paths("h0_0_0", "h0_1_0")
        assert len(paths) == 2  # k/2
        for path in paths:
            assert len(path) == 5
            assert path[0] == "h0_0_0" and path[-1] == "h0_1_0"

    def test_inter_pod_k_half_squared_paths(self, topo):
        paths = topo.equal_cost_paths("h0_0_0", "h3_1_1")
        assert len(paths) == 4  # (k/2)^2
        cores = {path[3] for path in paths}
        assert len(cores) == 4  # each path uses a distinct core
        for path in paths:
            assert len(path) == 7

    def test_k8_inter_pod_path_count(self):
        topo = FatTreeTopology(k=8)
        paths = topo.equal_cost_paths("h0_0_0", "h7_3_3")
        assert len(paths) == 16

    def test_paths_exist_in_graph(self, topo):
        g = topo.graph()
        for dst in ("h0_0_1", "h0_1_0", "h2_0_0"):
            for path in topo.equal_cost_paths("h0_0_0", dst):
                for u, v in path_links(path):
                    assert g.has_edge(u, v), f"missing {u}->{v}"

    def test_paths_are_simple(self, topo):
        for path in topo.equal_cost_paths("h0_0_0", "h1_0_0"):
            assert len(set(path)) == len(path)

    def test_same_host_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.equal_cost_paths("h0_0_0", "h0_0_0")

    def test_non_host_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.equal_cost_paths("e0_0", "h0_0_0")

    def test_network_builder(self, topo):
        net = topo.network()
        assert net.capacity("h0_0_0", "e0_0") == 1000.0
        assert len(net.hosts()) == topo.num_hosts
