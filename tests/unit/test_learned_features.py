"""Unit tests for the learned-ranking feature extractor."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import (  # noqa: E402
    BG_TOP,
    EF_BOT,
    ab_flow,
    cd_flow,
    diamond_setup,
    ef_flow,
)

from repro.core.event import make_event
from repro.core.planner import EventPlanner
from repro.sched.base import QueuedEvent
from repro.sched.learned.features import FEATURE_NAMES, FeatureExtractor


def setup_extractor():
    net, provider = diamond_setup()
    planner = EventPlanner(provider)
    return net, planner, FeatureExtractor(planner)


def queued(label: str, demands, seq: int = 0) -> QueuedEvent:
    flows = [ab_flow(f"{label}-f{i}", d) for i, d in enumerate(demands)]
    return QueuedEvent(make_event(flows, label=label), seq=seq)


class TestExtract:
    def test_vector_matches_feature_names(self):
        net, _planner, extractor = setup_extractor()
        vec = extractor.extract(queued("e", [10.0, 20.0]), net)
        assert len(vec) == len(FEATURE_NAMES)
        assert all(isinstance(x, float) for x in vec)

    def test_width_and_demand_features(self):
        net, _planner, extractor = setup_extractor()
        vec = extractor.extract(queued("e", [10.0, 20.0, 5.0]), net)
        named = dict(zip(FEATURE_NAMES, vec))
        assert named["width"] == 3.0
        assert named["total_demand"] == 35.0
        assert named["max_demand"] == 20.0

    def test_margin_reflects_residual(self):
        net, _planner, extractor = setup_extractor()
        roomy = extractor.extract(queued("roomy", [10.0]), net)
        named = dict(zip(FEATURE_NAMES, roomy))
        # Empty diamond: desired path has the full 100 units spare.
        assert named["min_margin"] == pytest.approx(90.0)
        assert named["tight_flows"] == 0.0
        assert named["deficit_total"] == 0.0

    def test_tight_flow_detected_under_load(self):
        net, _planner, extractor = setup_extractor()
        event = queued("tight", [50.0])
        before = dict(zip(FEATURE_NAMES, extractor.extract(event, net)))
        assert before["tight_flows"] == 0.0
        # Saturate both middle paths (from hosts off the a->s1 link) so no
        # a->b desired path can fit 50 units.
        net.place(cd_flow("hog-top", 95.0), BG_TOP)
        net.place(ef_flow("hog-bot", 95.0), EF_BOT)
        after = dict(zip(FEATURE_NAMES, extractor.extract(event, net)))
        assert after["tight_flows"] == 1.0
        assert after["deficit_total"] == pytest.approx(45.0)
        assert after["min_margin"] == pytest.approx(-45.0)

    def test_recency_features_pass_through(self):
        net, _planner, extractor = setup_extractor()
        vec = extractor.extract(queued("e", [1.0]), net,
                                congestion=2.5, fault_pressure=0.75)
        named = dict(zip(FEATURE_NAMES, vec))
        assert named["congestion"] == 2.5
        assert named["fault_pressure"] == 0.75

    def test_extraction_consumes_no_rng(self):
        net, _planner, extractor = setup_extractor()
        # Extraction takes no RNG parameter — assert it also draws nothing
        # through ambient module-level randomness.
        state = random.getstate()
        extractor.extract(queued("e", [10.0, 20.0]), net)
        assert random.getstate() == state


class TestMemoization:
    def test_repeat_extraction_hits_memo(self):
        net, _planner, extractor = setup_extractor()
        event = queued("e", [10.0])
        extractor.extract(event, net)
        extractor.extract(event, net)
        assert extractor.misses == 1
        assert extractor.hits == 1
        assert len(extractor) == 1

    def test_remaining_change_is_a_new_key(self):
        net, _planner, extractor = setup_extractor()
        event = queued("e", [10.0, 20.0])
        extractor.extract(event, net)
        event.remaining = event.remaining[:1]
        extractor.extract(event, net)
        assert extractor.misses == 2
        assert len(extractor) == 2

    def test_memoized_values_track_live_residuals(self):
        # The memo caches only static data; residual-derived features must
        # follow the live network.
        net, _planner, extractor = setup_extractor()
        event = queued("e", [10.0])
        first = dict(zip(FEATURE_NAMES, extractor.extract(event, net)))
        # Load both middle paths from other hosts so only the desired
        # path's bottleneck moves, not the a->s1 host link.
        net.place(cd_flow("bg", 30.0), BG_TOP)
        net.place(ef_flow("bg2", 30.0), EF_BOT)
        second = dict(zip(FEATURE_NAMES, extractor.extract(event, net)))
        assert extractor.hits == 1
        assert second["min_margin"] == pytest.approx(
            first["min_margin"] - 30.0)

    def test_forget_event_purges_all_keys(self):
        net, _planner, extractor = setup_extractor()
        event = queued("e", [10.0, 20.0])
        extractor.extract(event, net)
        event.remaining = event.remaining[:1]
        extractor.extract(event, net)
        other = queued("other", [5.0])
        extractor.extract(other, net)
        assert extractor.forget_event(event.event.event_id) == 2
        assert len(extractor) == 1
        assert extractor.forget_event("never-seen") == 0

    def test_cap_evicts_oldest(self):
        net, planner, _ = setup_extractor()
        extractor = FeatureExtractor(planner, maxsize=2)
        events = [queued(f"e{i}", [1.0]) for i in range(3)]
        for event in events:
            extractor.extract(event, net)
        assert len(extractor) == 2
        # Oldest (e0) evicted: extracting it again is a miss.
        misses = extractor.misses
        extractor.extract(events[0], net)
        assert extractor.misses == misses + 1

    def test_clear_resets_counters(self):
        net, _planner, extractor = setup_extractor()
        extractor.extract(queued("e", [1.0]), net)
        extractor.clear()
        assert len(extractor) == 0
        assert extractor.hits == 0
        assert extractor.misses == 0

    def test_maxsize_validated(self):
        _net, planner, _ = setup_extractor()
        with pytest.raises(ValueError):
            FeatureExtractor(planner, maxsize=0)
