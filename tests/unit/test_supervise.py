"""Tests for the crash supervisor: restart policy, backoff, watchdog."""

import json
import subprocess
import sys
import textwrap
import time

import pytest

from repro.sim import crashpoint
from repro.sim.snapshot import CHECKPOINT_FILE, HEARTBEAT_FILE, JOURNAL_FILE
from repro.sim.supervise import Supervisor, SupervisorConfig


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisorConfig(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            SupervisorConfig(backoff_factor=0.5)
        with pytest.raises(ValueError, match="backoff_max_s"):
            SupervisorConfig(backoff_initial_s=5.0, backoff_max_s=1.0)
        with pytest.raises(ValueError, match="stall_timeout_s"):
            SupervisorConfig(stall_timeout_s=-1)
        with pytest.raises(ValueError, match="poll_interval_s"):
            SupervisorConfig(poll_interval_s=0)


def child_script(tmp_path, body):
    script = tmp_path / "child.py"
    script.write_text(textwrap.dedent(body), encoding="utf-8")
    return [sys.executable, str(script)]


def quiet():
    lines = []
    return lines, lines.append


class TestRestartPolicy:
    def test_clean_exit_no_restart(self, tmp_path):
        lines, sink = quiet()
        supervisor = Supervisor(
            child_script(tmp_path, "raise SystemExit(0)"),
            state_dir=tmp_path,
            config=SupervisorConfig(max_restarts=3, backoff_initial_s=0,
                                    stall_timeout_s=0),
            sink=sink)
        assert supervisor.run() == 0
        assert supervisor.restarts == 0

    def test_crash_then_success_restarts_once(self, tmp_path):
        # First run dies; the marker file makes the retry exit cleanly.
        argv = child_script(tmp_path, f"""
            import os, sys
            marker = {str(tmp_path / "marker")!r}
            if os.path.exists(marker):
                sys.exit(0)
            open(marker, "w").close()
            os.kill(os.getpid(), 9)
        """)
        lines, sink = quiet()
        supervisor = Supervisor(
            argv, state_dir=tmp_path,
            config=SupervisorConfig(max_restarts=3, backoff_initial_s=0,
                                    stall_timeout_s=0),
            sink=sink)
        assert supervisor.run() == 0
        assert supervisor.restarts == 1

    def test_restart_budget_exhausted(self, tmp_path):
        lines, sink = quiet()
        supervisor = Supervisor(
            child_script(tmp_path, "raise SystemExit(3)"),
            state_dir=tmp_path,
            config=SupervisorConfig(max_restarts=2, backoff_initial_s=0,
                                    stall_timeout_s=0),
            sink=sink)
        assert supervisor.run() == 3
        assert supervisor.restarts == 2
        assert any("giving up" in line for line in lines)

    def test_crash_env_stripped_from_restarts(self, tmp_path, monkeypatch):
        """Only the first child may be the chaos victim: a restart that
        inherited REPRO_CRASH_AT would re-crash forever."""
        monkeypatch.setenv(crashpoint.ENV_VAR, "post-round:1")
        monkeypatch.setenv(crashpoint.MODE_VAR, "raise")
        argv = child_script(tmp_path, f"""
            import json, os, sys
            out = {str(tmp_path / "seen.jsonl")!r}
            with open(out, "a") as handle:
                handle.write(json.dumps(
                    [os.environ.get("REPRO_CRASH_AT"),
                     os.environ.get("REPRO_CRASH_MODE")]) + "\\n")
            sys.exit(0 if os.path.getsize(out) > 40 else 1)
        """)
        lines, sink = quiet()
        supervisor = Supervisor(
            argv, state_dir=tmp_path,
            config=SupervisorConfig(max_restarts=3, backoff_initial_s=0,
                                    stall_timeout_s=0),
            sink=sink)
        assert supervisor.run() == 0
        seen = [json.loads(line) for line in
                (tmp_path / "seen.jsonl").read_text().splitlines()]
        assert seen[0] == ["post-round:1", "raise"]  # first child armed
        assert all(entry == [None, None] for entry in seen[1:])
        assert len(seen) >= 2

    def test_resume_flag_added_only_with_recoverable_state(self, tmp_path):
        lines, sink = quiet()
        supervisor = Supervisor(["serve"], state_dir=tmp_path, sink=sink)
        assert supervisor._child_argv(0) == ["serve"]
        assert supervisor._child_argv(1) == ["serve"]  # nothing on disk
        (tmp_path / JOURNAL_FILE).write_bytes(b"")
        assert supervisor._child_argv(1) == ["serve"]  # 0-byte journal
        (tmp_path / CHECKPOINT_FILE).write_text("{}")
        assert supervisor._child_argv(1) == ["serve", "--resume"]
        assert supervisor._child_argv(0) == ["serve"]

    def test_resume_not_duplicated(self, tmp_path):
        (tmp_path / CHECKPOINT_FILE).write_text("{}")
        lines, sink = quiet()
        supervisor = Supervisor(["serve", "--resume"], state_dir=tmp_path,
                                sink=sink)
        assert supervisor._child_argv(1) == ["serve", "--resume"]


class TestWatchdog:
    def test_stalled_child_killed_and_reported(self, tmp_path):
        """A child with a frozen heartbeat is killed once the stall
        timeout lapses, and counts as a crash."""
        (tmp_path / HEARTBEAT_FILE).write_text(
            json.dumps({"wall": time.time(), "round": 7}))
        argv = child_script(tmp_path, "import time; time.sleep(60)")
        lines, sink = quiet()
        supervisor = Supervisor(
            argv, state_dir=tmp_path,
            config=SupervisorConfig(max_restarts=0, backoff_initial_s=0,
                                    stall_timeout_s=0.4,
                                    poll_interval_s=0.05),
            sink=sink)
        started = time.time()
        assert supervisor.run() == 1
        assert time.time() - started < 30
        assert any("no heartbeat progress" in line for line in lines)

    def test_progressing_heartbeat_not_killed(self, tmp_path):
        """A short-lived child whose heartbeat advances is left alone."""
        beat = tmp_path / HEARTBEAT_FILE
        argv = child_script(tmp_path, f"""
            import json, time
            for i in range(6):
                open({str(beat)!r}, "w").write(
                    json.dumps({{"wall": time.time(), "round": i}}))
                time.sleep(0.1)
        """)
        lines, sink = quiet()
        supervisor = Supervisor(
            argv, state_dir=tmp_path,
            config=SupervisorConfig(max_restarts=0, backoff_initial_s=0,
                                    stall_timeout_s=0.45,
                                    poll_interval_s=0.05),
            sink=sink)
        assert supervisor.run() == 0


class TestGuards:
    def test_empty_argv_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="argv"):
            Supervisor([], state_dir=tmp_path)

    def test_garbage_heartbeat_ignored(self, tmp_path):
        (tmp_path / HEARTBEAT_FILE).write_text("not json{")
        lines, sink = quiet()
        supervisor = Supervisor(["x"], state_dir=tmp_path, sink=sink)
        assert supervisor._read_heartbeat() is None
