"""Unit tests for the update simulator on the small diamond network."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ab_flow, cd_flow, diamond_setup  # noqa: E402
from helpers import BG_TOP  # noqa: E402

from repro.core.event import make_event
from repro.core.exceptions import SimulationError
from repro.sched.fifo import FIFOScheduler
from repro.sched.flowlevel import FlowLevelScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sched.plmtf import PLMTFScheduler
from repro.sim.simulator import SimulationConfig, UpdateSimulator
from repro.sim.timing import TimingModel
from repro.traces.yahoo import YahooLikeTrace


def simple_events(count=3, demand=10.0, duration=2.0):
    return [make_event([ab_flow(f"e{i}f{j}", demand, duration)
                        for j in range(2)], label=f"e{i}")
            for i in range(count)]


def build_simulator(scheduler=None, events=None, config=None, timing=None):
    net, provider = diamond_setup()
    sim = UpdateSimulator(net, provider, scheduler or FIFOScheduler(),
                          timing=timing or TimingModel(),
                          config=config or SimulationConfig(
                              verify_invariants=True))
    sim.submit(events if events is not None else simple_events())
    return sim


class TestConfigValidation:
    def test_bad_barrier(self):
        with pytest.raises(ValueError, match="round_barrier"):
            SimulationConfig(round_barrier="vibes")

    def test_churn_needs_trace(self):
        net, provider = diamond_setup()
        with pytest.raises(ValueError, match="churn_trace"):
            UpdateSimulator(net, provider, FIFOScheduler(),
                            config=SimulationConfig(background_churn=True))


class TestBasicRuns:
    def test_fifo_completes_all_events(self):
        metrics = build_simulator().run()
        assert metrics.event_count == 3
        assert metrics.rounds == 3
        assert metrics.average_ect > 0
        assert metrics.tail_ect >= metrics.average_ect

    def test_fifo_sequential_timing(self):
        timing = TimingModel(rule_install_s=0.0, migration_rule_s=0.0,
                             drain_s_per_mbps=0.0, plan_s_per_op=0.0)
        metrics = build_simulator(timing=timing).run()
        # 3 events, each occupying exactly its 2s flow duration, no costs
        assert metrics.per_event_ect == pytest.approx((2.0, 4.0, 6.0))
        assert metrics.per_event_delay == pytest.approx((0.0, 2.0, 4.0))
        assert metrics.makespan == pytest.approx(6.0)

    def test_flows_removed_after_completion(self):
        sim = build_simulator()
        sim.run()
        # only (permanent) background remains; events' flows are gone
        assert sim.network.flow_count() == 0

    def test_empty_submit_rejected(self):
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler())
        with pytest.raises(SimulationError, match="no events"):
            sim.run()

    def test_single_use(self):
        sim = build_simulator()
        sim.run()
        with pytest.raises(SimulationError, match="already ran"):
            sim.run()
        with pytest.raises(SimulationError):
            sim.submit(simple_events())

    def test_infinite_event_flow_rejected(self):
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler())
        permanent = make_event([ab_flow("inf", 10.0, duration=None)
                                .replace(duration=None)])
        with pytest.raises(SimulationError, match="infinite"):
            sim.submit([permanent])

    def test_determinism(self):
        a = build_simulator(LMTFScheduler(alpha=2, seed=4)).run()
        b = build_simulator(LMTFScheduler(alpha=2, seed=4)).run()
        assert a.per_event_ect == b.per_event_ect
        assert a.total_cost == b.total_cost


class TestArrivals:
    def test_staggered_arrivals(self):
        events = simple_events(2)
        events[1] = make_event(list(events[1].flows), arrival_time=100.0,
                               event_id=events[1].event_id)
        timing = TimingModel(rule_install_s=0.0, migration_rule_s=0.0,
                             drain_s_per_mbps=0.0, plan_s_per_op=0.0)
        metrics = build_simulator(events=events, timing=timing).run()
        # the late event waits for nothing: zero queuing delay
        assert metrics.per_event_delay[1] == pytest.approx(0.0)
        assert metrics.per_event_ect[1] == pytest.approx(2.0)

    def test_batch_visible_to_first_round(self):
        sim = build_simulator(PLMTFScheduler(alpha=4))
        metrics = sim.run()
        # all three tiny events fit one round: the batch was fully visible
        assert metrics.rounds == 1


class TestQueueBehaviour:
    def test_plmtf_parallelizes(self):
        timing = TimingModel(rule_install_s=0.0, migration_rule_s=0.0,
                             drain_s_per_mbps=0.0, plan_s_per_op=0.0)
        fifo = build_simulator(FIFOScheduler(), timing=timing).run()
        plmtf = build_simulator(PLMTFScheduler(alpha=4),
                                timing=timing).run()
        assert plmtf.average_ect < fifo.average_ect
        assert plmtf.makespan == pytest.approx(2.0)

    def test_flow_level_serializes_flows(self):
        timing = TimingModel(rule_install_s=0.0, migration_rule_s=0.0,
                             drain_s_per_mbps=0.0, plan_s_per_op=0.0)
        metrics = build_simulator(FlowLevelScheduler(),
                                  timing=timing).run()
        # 6 unit flows of 2s each, one at a time
        assert metrics.makespan == pytest.approx(12.0)
        assert metrics.rounds == 6

    def test_stall_fallback_skips_blocked_head(self):
        net, provider = diamond_setup()
        # a hog makes the first event permanently infeasible
        net.place(ab_flow("hog", 95.0, duration=None)
                  .replace(duration=None), ("a", "s1", "top", "s2", "b"))
        blocked = make_event([ab_flow("big", 50.0, 1.0)], label="blocked")
        small = make_event([cd_flow("tiny", 2.0, 1.0)], label="small")
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=SimulationConfig(stall_fallback=True))
        sim.submit([blocked, small])
        with pytest.raises(SimulationError, match="deadlock"):
            # the fallback admits "small", but "blocked" then deadlocks
            sim.run()

    def test_deadlock_without_fallback(self):
        net, provider = diamond_setup()
        net.place(ab_flow("hog", 95.0, duration=None)
                  .replace(duration=None), ("a", "s1", "top", "s2", "b"))
        blocked = make_event([ab_flow("big", 50.0, 1.0)])
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=SimulationConfig(stall_fallback=False))
        sim.submit([blocked])
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_round_log_records_admissions(self):
        sim = build_simulator()
        sim.run()
        assert len(sim.rounds) == 3
        assert all(len(r.admitted_events) == 1 for r in sim.rounds)


class TestStallFallbackUnit:
    """Direct tests of ``_should_fallback`` / ``_fallback_decision``."""

    def _stalled_sim(self, stall_fallback=True):
        """A simulator whose queue head is permanently infeasible: a
        duration-less hog leaves 5 Mbit/s on the a->s1 link."""
        net, provider = diamond_setup()
        net.place(ab_flow("hog", 95.0, duration=None),
                  ("a", "s1", "top", "s2", "b"))
        sim = UpdateSimulator(
            net, provider, FIFOScheduler(),
            config=SimulationConfig(seed=1, stall_fallback=stall_fallback))
        return sim

    def _stalled_context(self, sim):
        from repro.sched.base import QueuedEvent, SchedulingContext
        blocked = make_event([ab_flow("big", 50.0, 1.0)], label="blocked")
        small = make_event([cd_flow("tiny", 2.0, 1.0)], label="small")
        queue = [QueuedEvent(blocked, seq=0), QueuedEvent(small, seq=1)]
        return SchedulingContext(now=0.0, queue=queue,
                                 planner=sim._planner,
                                 network=sim._network, rng=sim._rng)

    def test_should_fallback_only_when_waiting_cannot_help(self):
        sim = self._stalled_sim()
        # idle: nothing outstanding, empty engine queue -> fall back
        assert sim._should_fallback()

    def test_no_fallback_while_engine_has_pending_events(self):
        sim = self._stalled_sim()
        # a future arrival/churn event could unblock the head: keep waiting
        sim._engine.schedule_at(1.0, lambda: None)
        assert not sim._should_fallback()

    def test_no_fallback_while_round_outstanding(self):
        sim = self._stalled_sim()
        sim._round_outstanding = 1
        assert not sim._should_fallback()

    def test_no_fallback_when_disabled(self):
        sim = self._stalled_sim(stall_fallback=False)
        assert not sim._should_fallback()

    def test_fallback_admits_first_feasible_in_arrival_order(self):
        from repro.sched.base import RoundDecision
        sim = self._stalled_sim()
        ctx = self._stalled_context(sim)
        decision = sim._fallback_decision(ctx, RoundDecision())
        assert [a.queued.event.label for a in decision.admissions] \
            == ["small"]
        assert decision.admissions[0].plan.feasible

    def test_fallback_carries_prior_ops_and_cache_counters(self):
        from repro.sched.base import RoundDecision
        sim = self._stalled_sim()
        ctx = self._stalled_context(sim)
        prior = RoundDecision(planning_ops=7, cache_hits=3,
                              cache_misses=2, cache_invalidations=1)
        decision = sim._fallback_decision(ctx, prior)
        baseline = sim._fallback_decision(ctx, RoundDecision())
        # the scheduler's (empty) decision already cost planning work; the
        # fallback's own probes add on top of it
        assert decision.planning_ops == baseline.planning_ops + 7
        assert decision.planning_ops > 7
        assert (decision.cache_hits, decision.cache_misses,
                decision.cache_invalidations) == (3, 2, 1)

    def test_fallback_with_all_infeasible_queue_stays_empty(self):
        from repro.sched.base import QueuedEvent, RoundDecision, \
            SchedulingContext
        sim = self._stalled_sim()
        big1 = make_event([ab_flow("big1", 50.0, 1.0)])
        big2 = make_event([ab_flow("big2", 60.0, 1.0)])
        ctx = SchedulingContext(
            now=0.0,
            queue=[QueuedEvent(big1, seq=0), QueuedEvent(big2, seq=1)],
            planner=sim._planner, network=sim._network, rng=sim._rng)
        prior = RoundDecision(planning_ops=4, cache_hits=1,
                              cache_misses=1, cache_invalidations=0)
        decision = sim._fallback_decision(ctx, prior)
        assert decision.empty
        # every queued event was probed, each adding ops beyond the prior's
        assert decision.planning_ops > 4
        assert (decision.cache_hits, decision.cache_misses,
                decision.cache_invalidations) == (1, 1, 0)


class TestSetupBarrier:
    def test_ect_measured_at_setup(self):
        timing = TimingModel(rule_install_s=0.5, migration_rule_s=0.0,
                             drain_s_per_mbps=0.0, plan_s_per_op=0.0)
        config = SimulationConfig(round_barrier="setup")
        metrics = build_simulator(timing=timing, config=config).run()
        # each round occupies only the 0.5s install; flow durations (2s)
        # do not extend the ECT under the pipelined reading
        assert metrics.per_event_ect == pytest.approx((0.5, 1.0, 1.5))

    def test_flows_still_drain_from_network(self):
        config = SimulationConfig(round_barrier="setup")
        sim = build_simulator(config=config)
        sim.run()
        assert sim.network.flow_count() == 0


class TestFaultPipeline:
    """Mid-run failures: strand → repair event → requeue (or drop)."""

    def both_middle_down(self, at, heal_at=None):
        from repro.sim.faults import FaultSchedule, SwitchFault
        return FaultSchedule([SwitchFault(switch="top", at=at,
                                          heal_at=heal_at),
                              SwitchFault(switch="bot", at=at,
                                          heal_at=heal_at)])

    def faulted_simulator(self, faults, config, listener=None,
                          control_plane=None):
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              timing=TimingModel(), config=config,
                              listener=listener, control_plane=control_plane,
                              faults=faults)
        sim.submit([make_event([ab_flow("f1", 10.0, duration=5.0)],
                               label="original", event_id="E0")])
        return sim

    def test_strand_repair_requeue_complete(self):
        from repro.sim.tracelog import TraceLog
        log = TraceLog()
        config = SimulationConfig(verify_invariants=True,
                                  max_deferrals=5,
                                  repair_flow_duration=3.0)
        sim = self.faulted_simulator(self.both_middle_down(2.0, heal_at=6.0),
                                     config, listener=log)
        metrics = sim.run()
        # Both the original event and the auto-generated repair completed.
        assert metrics.event_count == 2
        assert metrics.faults_injected == 2
        assert metrics.faults_healed == 2
        assert metrics.dropped_events == 0
        assert metrics.stranded_traffic == 0.0
        assert sim.network.flow_count() == 0
        kinds = {r.kind for r in log.records}
        assert {"fault", "heal"} <= kinds
        # The repair could not start until the heal restored capacity.
        (fault_with_strand,) = [r for r in log.of_kind("fault")
                                if r.data["stranded_flows"]]
        assert fault_with_strand.data["stranded_demand"] == 10.0

    def test_partition_drops_repair_with_accounting(self):
        from repro.sim.tracelog import TraceLog
        log = TraceLog()
        config = SimulationConfig(verify_invariants=True, max_deferrals=2,
                                  repair_flow_duration=3.0)
        sim = self.faulted_simulator(self.both_middle_down(2.0), config,
                                     listener=log)
        metrics = sim.run()  # must not raise despite the dead repair
        assert metrics.event_count == 1  # only the original completed
        assert metrics.dropped_events == 1
        assert metrics.stranded_traffic == pytest.approx(10.0)
        assert metrics.deferrals == 3  # max_deferrals + the dropping pass
        assert log.of_kind("drop")
        assert len(log.of_kind("deferral")) == 3

    def test_partition_without_deferral_budget_keeps_legacy_error(self):
        config = SimulationConfig(verify_invariants=True)  # max_deferrals=None
        sim = self.faulted_simulator(self.both_middle_down(2.0), config)
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_exec_failure_rolls_back_and_requeues(self):
        from repro.sim.controlplane import ScriptedControlPlane
        from repro.sim.tracelog import TraceLog
        log = TraceLog()
        config = SimulationConfig(verify_invariants=True,
                                  exec_max_retries=0, max_deferrals=5)
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=config, listener=log,
                              control_plane=ScriptedControlPlane([False]),
                              faults=None)
        sim.submit(simple_events(1))
        metrics = sim.run()
        assert metrics.event_count == 1
        assert metrics.deferrals == 1
        assert metrics.dropped_events == 0
        # Round 1 admitted nothing (execution failed and rolled back); a
        # later round re-planned and completed the event.
        assert sim.rounds[0].admitted_events == ()
        assert any(r.admitted_events for r in sim.rounds[1:])
        assert log.of_kind("exec_failure")
        assert sim.network.flow_count() == 0

    def test_zero_fault_wiring_is_byte_identical(self):
        from repro.sim.controlplane import ReliableControlPlane
        from repro.sim.faults import FaultSchedule
        events = simple_events()
        net1, provider1 = diamond_setup()
        plain = UpdateSimulator(net1, provider1, FIFOScheduler(),
                                config=SimulationConfig())
        plain.submit(events)
        net2, provider2 = diamond_setup()
        wired = UpdateSimulator(net2, provider2, FIFOScheduler(),
                                config=SimulationConfig(),
                                control_plane=ReliableControlPlane(),
                                faults=FaultSchedule([]))
        wired.submit(events)
        assert plain.run() == wired.run()

    def test_fault_schedule_validated_at_run_start(self):
        from repro.core.exceptions import TopologyError
        from repro.sim.faults import FaultSchedule, LinkFault
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              faults=FaultSchedule([
                                  LinkFault(u="s1", v="mars", at=1.0)]))
        sim.submit(simple_events(1))
        with pytest.raises(TopologyError, match="missing link"):
            sim.run()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_deferrals"):
            SimulationConfig(max_deferrals=-1)
        with pytest.raises(ValueError, match="repair_flow_duration"):
            SimulationConfig(repair_flow_duration=0.0)


class TestChurn:
    def test_background_churns_and_completes(self):
        net, provider = diamond_setup()
        net.place(cd_flow("bg1", 10.0, duration=1.0), BG_TOP)
        churn = YahooLikeTrace(["a", "b", "c", "d"], seed=3,
                               demand_max=20.0)
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=SimulationConfig(
                                  background_churn=True),
                              churn_trace=churn)
        sim.submit(simple_events(2))
        metrics = sim.run()
        assert metrics.event_count == 2
        # the original background flow was replaced/completed
        assert not net.has_flow("bg1")


class HoldUntilScheduler(FIFOScheduler):
    """Admits nothing before ``release``; plain FIFO afterwards.

    Forces genuinely *empty* rounds while a future arrival keeps the
    engine busy (so neither the stall fallback nor the deadlock check
    fires) — the setup for the empty-round accounting regression tests.
    """

    name = "hold-until"

    def __init__(self, release):
        super().__init__()
        self._release = release

    def select(self, ctx):
        if ctx.now < self._release:
            from repro.sched.base import RoundDecision
            return RoundDecision()
        return super().select(ctx)


class TestEmptyRoundAccounting:
    """An empty decision consumes a round; both books must say so."""

    def _run(self):
        held = make_event([ab_flow("h0", 10.0, 2.0)], label="held")
        late = make_event([ab_flow("l0", 10.0, 2.0)], arrival_time=5.0,
                          label="late")
        sim = build_simulator(scheduler=HoldUntilScheduler(release=5.0),
                              events=[held, late])
        return sim, sim.run(), held, late

    def test_round_count_matches_round_log(self):
        sim, metrics, _, _ = self._run()
        # round 1 (t=0) is empty; rounds 2-3 admit the two events
        assert metrics.rounds == len(sim.rounds) == 3
        assert sim.rounds[0].admitted_events == ()

    def test_empty_round_charges_waits_and_plan_time(self):
        sim, metrics, held, late = self._run()
        records = sim._metrics.records
        # held waits through the empty round at t=0; late waits through
        # the t=5 round that admits held ahead of it (FIFO order).
        assert records[held.event_id].rounds_waited == 1
        assert records[late.event_id].rounds_waited == 1
        assert metrics.total_plan_time == pytest.approx(
            sum(r.plan_time for r in sim.rounds))


class TestBookkeepingHygiene:
    """Per-event pipeline state must not outlive the event (the dicts
    would otherwise grow without bound in service mode)."""

    def _assert_purged(self, sim):
        pipe = sim.pipeline
        assert pipe._event_outstanding == {}
        assert pipe._event_done_queueing == set()
        assert pipe._deferral_counts == {}

    def test_purged_after_clean_run(self):
        sim = build_simulator()
        sim.run()
        self._assert_purged(sim)

    def test_purged_after_flow_level_partial_admissions(self):
        sim = build_simulator(scheduler=FlowLevelScheduler())
        sim.run()
        self._assert_purged(sim)

    def test_purged_after_exec_failure_deferral(self):
        from repro.sim.controlplane import ScriptedControlPlane
        net, provider = diamond_setup()
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=SimulationConfig(exec_max_retries=0,
                                                      max_deferrals=5),
                              control_plane=ScriptedControlPlane([False]))
        sim.submit(simple_events(1))
        metrics = sim.run()
        assert metrics.deferrals == 1
        self._assert_purged(sim)

    def test_purged_after_drop(self):
        net, provider = diamond_setup()
        net.place(ab_flow("hog", 95.0, duration=None),
                  ("a", "s1", "top", "s2", "b"))
        blocked = make_event([ab_flow("big", 50.0, 1.0)], label="blocked")
        small = make_event([cd_flow("tiny", 2.0, 1.0)], label="small")
        sim = UpdateSimulator(net, provider, FIFOScheduler(),
                              config=SimulationConfig(max_deferrals=1))
        sim.submit([blocked, small])
        metrics = sim.run()
        assert metrics.dropped_events == 1
        self._assert_purged(sim)
