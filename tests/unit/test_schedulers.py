"""Unit tests for the scheduling policies on crafted queue states."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import (  # noqa: E402
    BG_TOP,
    EF_BOT,
    ab_flow,
    cd_flow,
    diamond_setup,
    ef_flow,
)

from repro.core.event import make_event
from repro.core.planner import EventPlanner
from repro.sched.base import QueuedEvent, SchedulingContext
from repro.sched.fifo import FIFOScheduler
from repro.sched.flowlevel import FlowLevelScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sched.plmtf import PLMTFScheduler
from repro.sched.reorder import CostReorderScheduler


def make_context(network, provider, events):
    queue = [QueuedEvent(event, seq=i) for i, event in enumerate(events)]
    return SchedulingContext(now=0.0, queue=queue,
                             planner=EventPlanner(provider),
                             network=network, rng=random.Random(7))


def cheap_event(label: str, demand: float = 5.0):
    return make_event([ab_flow(f"{label}-f", demand)], label=label)


class TestFIFO:
    def test_admits_head(self):
        net, provider = diamond_setup()
        ctx = make_context(net, provider,
                           [cheap_event("e0"), cheap_event("e1")])
        decision = FIFOScheduler().select(ctx)
        assert len(decision.admissions) == 1
        assert decision.admissions[0].queued.event.label == "e0"
        assert decision.planning_ops > 0

    def test_waits_when_head_blocked(self):
        net, provider = diamond_setup()
        # saturate both middle links with unmigratable a->b traffic
        net.place(ab_flow("hog", 95.0), ("a", "s1", "top", "s2", "b"))
        blocked = make_event([ab_flow("big", 50.0)], label="blocked")
        ctx = make_context(net, provider, [blocked, cheap_event("e1", 2.0)])
        decision = FIFOScheduler().select(ctx)
        # strict FIFO never jumps the queue, even with a feasible e1 behind
        assert decision.empty

    def test_empty_queue(self):
        net, provider = diamond_setup()
        assert FIFOScheduler().select(
            make_context(net, provider, [])).empty


class TestLMTF:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LMTFScheduler(alpha=0)

    def test_candidates_include_head_and_respect_queue_size(self):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(3)]
        ctx = make_context(net, provider, events)
        scheduler = LMTFScheduler(alpha=10)
        candidates = scheduler.sample_candidates(ctx.queue)
        assert len(candidates) == 3  # queue smaller than alpha+1
        assert candidates[0].seq == 0

    def test_candidates_sorted_by_seq(self):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(10)]
        ctx = make_context(net, provider, events)
        candidates = LMTFScheduler(alpha=4).sample_candidates(ctx.queue)
        seqs = [c.seq for c in candidates]
        assert seqs == sorted(seqs)
        assert seqs[0] == 0

    def test_picks_cheapest_event(self):
        net, provider = diamond_setup()
        # congest the middle so a big head event needs migration
        net.place(cd_flow("bg", 60.0), BG_TOP)
        net.place(ef_flow("bg2", 60.0), EF_BOT)
        heavy = make_event([ab_flow("heavy", 80.0)], label="heavy")
        light = make_event([ab_flow("light", 10.0)], label="light")
        ctx = make_context(net, provider, [heavy, light])
        decision = LMTFScheduler(alpha=4).select(ctx)
        assert len(decision.admissions) == 1
        assert decision.admissions[0].queued.event.label == "light"

    def test_ties_preserve_fifo_order(self):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(5)]
        ctx = make_context(net, provider, events)
        decision = LMTFScheduler(alpha=4).select(ctx)
        # all costs zero -> earliest seq wins
        assert decision.admissions[0].queued.seq == 0

    def test_reset_restores_sampling_sequence(self):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(10)]
        scheduler = LMTFScheduler(alpha=2, seed=3)
        ctx = make_context(net, provider, events)
        first = [q.seq for q in scheduler.sample_candidates(ctx.queue)]
        scheduler.reset()
        second = [q.seq for q in scheduler.sample_candidates(ctx.queue)]
        assert first == second


class TestPickCheapestTieBreak:
    """Regression: equal-cost ties order by (cost, arrival_time, seq).

    ``seq`` alone is not arrival order once an event has been requeued
    (deferral hands out a fresh, high seq while the arrival time stays
    put). The explicit time component keeps the rule FIFO-fair — and
    identical between exact and learned schedulers, whose comparisons
    must never diverge on an equal-cost tie.
    """

    @staticmethod
    def plan_for(event):
        """A feasible zero-cost plan (no migrations) for ``event``."""
        from repro.core.plan import EventPlan, FlowPlan
        return EventPlan(event=event, flow_plans=tuple(
            FlowPlan(flow=f, path=("a", "s1", "top", "s2", "b"))
            for f in event.flows))

    def test_requeued_senior_event_wins_cost_tie(self):
        old = make_event([ab_flow("old-f", 5.0)], arrival_time=0.0,
                         label="old")
        young = make_event([ab_flow("young-f", 5.0)], arrival_time=4.0,
                           label="young")
        # The senior event was requeued after a deferral: fresh seq 17,
        # original arrival time. A seq-only tie-break would pick "young".
        requeued = QueuedEvent(old, seq=17)
        younger = QueuedEvent(young, seq=2)
        best = LMTFScheduler.pick_cheapest([
            (younger, self.plan_for(young)),
            (requeued, self.plan_for(old)),
        ])
        assert best is not None
        assert best[0].event.label == "old"

    def test_seq_breaks_same_arrival_ties(self):
        batch = [make_event([ab_flow(f"b{i}-f", 5.0)], arrival_time=1.0,
                            label=f"b{i}") for i in range(3)]
        queue = [QueuedEvent(e, seq=i) for i, e in enumerate(batch)]
        best = LMTFScheduler.pick_cheapest(
            [(q, self.plan_for(q.event)) for q in reversed(queue)])
        assert best is not None
        assert best[0].seq == 0

    def test_cost_still_dominates_seniority(self):
        from repro.core.plan import EventPlan, FlowPlan, Migration
        cheap = make_event([ab_flow("cheap-f", 5.0)], arrival_time=9.0)
        senior = make_event([ab_flow("senior-f", 5.0)], arrival_time=0.0)
        moved = cd_flow("moved", 7.0)
        costly_plan = EventPlan(event=senior, flow_plans=(FlowPlan(
            flow=senior.flows[0], path=("a", "s1", "top", "s2", "b"),
            migrations=(Migration(flow=moved,
                                  old_path=("c", "s1", "top", "s2", "d"),
                                  new_path=("c", "s1", "bot", "s2", "d")),
                        )),))
        best = LMTFScheduler.pick_cheapest([
            (QueuedEvent(senior, seq=0), costly_plan),
            (QueuedEvent(cheap, seq=5), self.plan_for(cheap)),
        ])
        assert best is not None
        # Seniority never overrides a strictly cheaper cost.
        assert best[0].event.event_id == cheap.event_id
        assert best[1].cost == 0.0

    def test_infeasible_candidates_skipped(self):
        from repro.core.plan import EventPlan
        event = make_event([ab_flow("f", 5.0)])
        assert LMTFScheduler.pick_cheapest([
            (QueuedEvent(event, seq=0),
             EventPlan(event=event, blocked=event.flows)),
        ]) is None

class TestPLMTF:
    def test_admit_mode_validation(self):
        with pytest.raises(ValueError):
            PLMTFScheduler(admit="everything")

    def test_admits_compatible_candidates(self):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}", demand=5.0) for i in range(5)]
        ctx = make_context(net, provider, events)
        decision = PLMTFScheduler(alpha=4).select(ctx)
        # five tiny events easily run together
        assert len(decision.admissions) == 5

    def test_batch_never_oversubscribes(self):
        net, provider = diamond_setup()
        # each event wants 60 Mbit/s from a's uplink: only one fits
        events = [make_event([ab_flow(f"f{i}", 60.0)], label=f"e{i}")
                  for i in range(4)]
        ctx = make_context(net, provider, events)
        decision = PLMTFScheduler(alpha=4).select(ctx)
        assert len(decision.admissions) == 1

    def test_admissions_replay_cleanly_in_order(self):
        net, provider = diamond_setup()
        net.place(cd_flow("bg", 50.0), BG_TOP)
        events = [make_event([ab_flow(f"f{i}", 25.0)], label=f"e{i}")
                  for i in range(5)]
        ctx = make_context(net, provider, events)
        decision = PLMTFScheduler(alpha=4).select(ctx)
        from repro.core.executor import apply_plan
        for admission in decision.admissions:
            apply_plan(net, admission.plan)  # must not raise
        net.check_invariants()

    @pytest.mark.parametrize("mode", ["shared", "nocontention", "hybrid",
                                      "free", "feasible"])
    def test_all_modes_admit_head_at_least(self, mode):
        net, provider = diamond_setup()
        events = [cheap_event(f"e{i}") for i in range(3)]
        ctx = make_context(net, provider, events)
        decision = PLMTFScheduler(alpha=2, admit=mode).select(ctx)
        assert len(decision.admissions) >= 1


class TestCostReorder:
    def test_scans_whole_queue(self):
        net, provider = diamond_setup()
        net.place(cd_flow("bg", 60.0), BG_TOP)
        net.place(ef_flow("bg2", 60.0), EF_BOT)
        heavy = make_event([ab_flow("heavy", 80.0)], label="heavy")
        light = make_event([ab_flow("light", 10.0)], label="light")
        ctx = make_context(net, provider, [heavy, light])
        decision = CostReorderScheduler().select(ctx)
        assert decision.admissions[0].queued.event.label == "light"
        # planning ops cover every queued event
        fifo_ops = FIFOScheduler().select(
            make_context(net, provider, [heavy])).planning_ops
        assert decision.planning_ops > fifo_ops


class TestFlowLevel:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            FlowLevelScheduler(order="zigzag")

    def test_admits_single_flow(self):
        net, provider = diamond_setup()
        event = make_event([ab_flow("f1", 5.0), ab_flow("f2", 5.0)])
        ctx = make_context(net, provider, [event])
        decision = FlowLevelScheduler().select(ctx)
        assert len(decision.admissions) == 1
        assert len(decision.admissions[0].plan.flow_plans) == 1

    def test_round_robin_rotates(self):
        net, provider = diamond_setup()
        events = [make_event([ab_flow(f"e{i}f{j}", 1.0) for j in range(2)],
                             label=f"e{i}") for i in range(3)]
        scheduler = FlowLevelScheduler(order="interleave")
        served = []
        ctx = make_context(net, provider, events)
        for __ in range(3):
            decision = scheduler.select(ctx)
            served.append(decision.admissions[0].queued.event.label)
        assert served == ["e0", "e1", "e2"]

    def test_arrival_order_serves_head_first(self):
        net, provider = diamond_setup()
        events = [make_event([ab_flow(f"e{i}f{j}", 1.0) for j in range(2)],
                             label=f"e{i}") for i in range(2)]
        scheduler = FlowLevelScheduler(order="arrival")
        ctx = make_context(net, provider, events)
        decision = scheduler.select(ctx)
        assert decision.admissions[0].queued.event.label == "e0"

    def test_arrival_order_blocks_on_head(self):
        net, provider = diamond_setup()
        net.place(ab_flow("hog", 95.0), ("a", "s1", "top", "s2", "b"))
        blocked = make_event([ab_flow("big", 50.0)])
        open_event = make_event([ab_flow("small", 2.0)])
        ctx = make_context(net, provider, [blocked, open_event])
        assert FlowLevelScheduler(order="arrival").select(ctx).empty
        # interleave skips the blocked flow and serves the next event
        decision = FlowLevelScheduler(order="interleave").select(ctx)
        assert not decision.empty
