"""Unit tests for plan application and the executor's timing."""

import random

import networkx as nx
import pytest

from repro.core.event import make_event
from repro.core.exceptions import (
    ControlPlaneError,
    InsufficientBandwidthError,
    PlanningError,
)
from repro.core.executor import PlanExecutor, RetryPolicy, apply_plan
from repro.core.flow import Flow
from repro.core.plan import EventPlan
from repro.core.planner import EventPlanner
from repro.network.routing.provider import PathProvider
from repro.network.topology.custom import CustomTopology
from repro.sim.controlplane import ScriptedControlPlane
from repro.sim.timing import TimingModel


def diamond_topology(capacity=100.0) -> CustomTopology:
    g = nx.Graph()
    for h in ("a", "b", "c", "d"):
        g.add_node(h, kind="host")
    for s in ("s1", "s2", "top", "bot"):
        g.add_node(s, kind="switch")
    for u, v in (("a", "s1"), ("c", "s1"), ("s1", "top"), ("s1", "bot"),
                 ("top", "s2"), ("bot", "s2"), ("s2", "b"), ("s2", "d")):
        g.add_edge(u, v, capacity=capacity)
    return CustomTopology(g, name="diamond", max_paths=4)


def update_flow(fid, demand, duration=1.0):
    return Flow(flow_id=fid, src="a", dst="b", demand=demand,
                duration=duration)


@pytest.fixture()
def planned():
    """(network, plan-with-migration) pair computed on identical state."""
    topo = diamond_topology()
    net = topo.network()
    net.place(Flow(flow_id="bgt", src="c", dst="d", demand=45.0),
              ("c", "s1", "top", "s2", "d"))
    net.place(Flow(flow_id="bgb", src="c", dst="d", demand=10.0),
              ("c", "s1", "bot", "s2", "d"))
    planner = EventPlanner(PathProvider(topo))
    event = make_event([update_flow("f1", 60.0)])
    plan = planner.plan_event(net, event, random.Random(1), commit=False)
    assert plan.feasible and plan.cost > 0
    return net, plan


class TestApplyPlan:
    def test_applies_migrations_and_placements(self, planned):
        net, plan = planned
        rerouted = apply_plan(net, plan)
        assert rerouted  # the blocking background flow moved
        for fp in plan.flow_plans:
            assert net.has_flow(fp.flow.flow_id)
            assert net.placement(fp.flow.flow_id).path == fp.path
        net.check_invariants()

    def test_infeasible_plan_rejected(self, planned):
        net, plan = planned
        bad = EventPlan(event=plan.event, flow_plans=(),
                        blocked=plan.event.flows)
        with pytest.raises(PlanningError):
            apply_plan(net, bad)

    def test_stale_plan_rolls_back(self, planned):
        net, plan = planned
        # Invalidate the plan: consume (almost) all the bandwidth the plan
        # counted on along its chosen path.
        path = plan.flow_plans[0].path
        thief_demand = max(net.path_residual(path) - 5.0, 1.0)
        net.place(Flow(flow_id="thief", src="a", dst="b",
                       demand=thief_demand), path)
        before_used = {link: net.used(*link) for link in net.links()}
        with pytest.raises(InsufficientBandwidthError):
            apply_plan(net, plan)
        after_used = {link: net.used(*link) for link in net.links()}
        assert before_used == pytest.approx(after_used)
        assert not net.has_flow(plan.flow_plans[0].flow.flow_id)
        net.check_invariants()

    def test_invalid_path_rolls_back(self):
        # Regression: rollback used to trigger only on bandwidth failures,
        # so a plan whose later placement hit a non-bandwidth error left
        # the earlier placements behind.
        from repro.core.exceptions import InvalidPathError
        from repro.core.plan import FlowPlan
        net = diamond_topology().network()
        f1, f2 = update_flow("ok", 10.0), update_flow("bad", 10.0)
        event = make_event([f1, f2])
        plan = EventPlan(event=event, flow_plans=(
            FlowPlan(flow=f1, path=("a", "s1", "top", "s2", "b")),
            FlowPlan(flow=f2, path=("a", "s1", "nowhere", "b"))))
        with pytest.raises(InvalidPathError):
            apply_plan(net, plan)
        assert not net.has_flow("ok")
        assert net.used("s1", "top") == pytest.approx(0.0)
        net.check_invariants()

    def test_rule_space_failure_rolls_back(self):
        from repro.core.exceptions import RuleSpaceError
        from repro.core.plan import FlowPlan
        g = diamond_topology().graph()
        g.nodes["top"]["rule_capacity"] = 1
        net = CustomTopology(g, name="d", max_paths=4).network()
        f1, f2 = update_flow("first", 10.0), update_flow("second", 10.0)
        event = make_event([f1, f2])
        top_path = ("a", "s1", "top", "s2", "b")
        plan = EventPlan(event=event, flow_plans=(
            FlowPlan(flow=f1, path=top_path),
            FlowPlan(flow=f2, path=top_path)))  # needs a second rule slot
        with pytest.raises(RuleSpaceError):
            apply_plan(net, plan)
        assert not net.has_flow("first")
        assert net.rules_used("top") == 0
        net.check_invariants()


class TestExecutor:
    def test_execute_times_match_model(self, planned):
        net, plan = planned
        timing = TimingModel(rule_install_s=0.5, migration_rule_s=0.25,
                             drain_s_per_mbps=0.1)
        executor = PlanExecutor(timing)
        record = executor.execute(net, plan, start_time=100.0)
        expected_migration = sum(0.25 + 0.1 * m.migrated_traffic
                                 for m in plan.migrations)
        assert record.migration_time == pytest.approx(expected_migration)
        assert record.install_time == pytest.approx(0.5)
        assert record.finish_setup_time == pytest.approx(
            100.0 + expected_migration + 0.5)
        assert record.rerouted_flow_ids

    def test_default_timing(self, planned):
        net, plan = planned
        record = PlanExecutor().execute(net, plan, start_time=0.0)
        assert record.finish_setup_time > 0.0

    def test_refuses_infeasible(self, planned):
        net, plan = planned
        bad = EventPlan(event=plan.event, flow_plans=(),
                        blocked=plan.event.flows)
        with pytest.raises(PlanningError):
            PlanExecutor().execute(net, bad, 0.0)


def state_fingerprint(net):
    """Everything the planner can observe: flows, paths, residuals, and
    the version counters the probe cache keys freshness on."""
    return {
        "flows": {fid: net.placement(fid).path for fid in net.flow_ids()},
        "used": {link: net.used(*link) for link in net.links()},
        "versions": {link: net.link_version(*link) for link in net.links()},
    }


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)


class TestUnreliableExecution:
    def test_reliable_control_plane_takes_fast_path(self, planned):
        net, plan = planned
        from repro.sim.controlplane import ReliableControlPlane
        record = PlanExecutor(control_plane=ReliableControlPlane()) \
            .execute(net, plan, 0.0)
        assert record.attempts == 1 and record.retry_time == 0.0

    def test_rollback_leaves_state_bit_identical(self, planned):
        net, plan = planned
        before = state_fingerprint(net)
        cp = ScriptedControlPlane([False, False, False])  # every attempt
        executor = PlanExecutor(control_plane=cp,
                                retry=RetryPolicy(max_retries=2))
        with pytest.raises(ControlPlaneError) as exc:
            executor.execute(net, plan, start_time=0.0)
        assert exc.value.attempts == 3
        assert exc.value.elapsed > 0.0
        assert state_fingerprint(net) == before
        net.check_invariants()

    def test_mid_plan_install_failure_rolls_back_migrations(self, planned):
        net, plan = planned
        assert plan.migrations, "fixture must exercise the migration path"
        before = state_fingerprint(net)
        # First attempt: migrations succeed, the install fails — exactly
        # the partial application the rollback must undo.
        script = [True] * len(plan.migrations) + [False]
        executor = PlanExecutor(control_plane=ScriptedControlPlane(script),
                                retry=RetryPolicy(max_retries=0))
        with pytest.raises(ControlPlaneError):
            executor.execute(net, plan, 0.0)
        assert state_fingerprint(net) == before

    def test_retry_succeeds_and_charges_backoff(self, planned):
        net, plan = planned
        timing = TimingModel(rule_install_s=0.5, migration_rule_s=0.25,
                             drain_s_per_mbps=0.1)
        base = (sum(0.25 + 0.1 * m.migrated_traffic
                    for m in plan.migrations) + 0.5)
        cp = ScriptedControlPlane([False], jitter_s=0.01)
        executor = PlanExecutor(
            timing, control_plane=cp,
            retry=RetryPolicy(max_retries=2, backoff_s=0.1))
        record = executor.execute(net, plan, start_time=10.0)
        assert record.attempts == 2
        # Two full attempt windows + both jitters + the first backoff.
        assert record.finish_setup_time == pytest.approx(
            10.0 + 2 * (base + 0.01) + 0.1)
        assert record.retry_time == pytest.approx(base + 2 * 0.01 + 0.1)
        for fp in plan.flow_plans:
            assert net.has_flow(fp.flow.flow_id)
        net.check_invariants()

    def test_deadline_aborts_before_retries_exhausted(self, planned):
        net, plan = planned
        cp = ScriptedControlPlane([False] * 50)
        executor = PlanExecutor(
            control_plane=cp,
            retry=RetryPolicy(max_retries=10, backoff_s=0.5,
                              deadline_s=1.0))
        with pytest.raises(ControlPlaneError, match="deadline") as exc:
            executor.execute(net, plan, 0.0)
        assert exc.value.attempts < 11

    def test_placement_divergence_not_retried(self, planned):
        net, plan = planned
        path = plan.flow_plans[0].path
        thief_demand = max(net.path_residual(path) - 5.0, 1.0)
        net.place(Flow(flow_id="thief", src="a", dst="b",
                       demand=thief_demand), path)
        before = state_fingerprint(net)
        cp = ScriptedControlPlane([True] * 50)
        executor = PlanExecutor(control_plane=cp,
                                retry=RetryPolicy(max_retries=5))
        with pytest.raises(InsufficientBandwidthError):
            executor.execute(net, plan, 0.0)
        # One attempt only: the same state would reject the same plan.
        assert cp.consumed <= len(plan.migrations) + len(plan.flow_plans)
        assert state_fingerprint(net) == before
        net.check_invariants()
