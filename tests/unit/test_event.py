"""Unit tests for the update-event abstraction."""

import pytest

from repro.core.event import EventState, UpdateEvent, make_event, next_event_id
from repro.core.flow import Flow, FlowKind


def raw_flow(i: int, demand: float = 10.0, duration: float = 1.0) -> Flow:
    return Flow(flow_id=f"ev-flow-{i}", src=f"h{i}", dst=f"g{i}",
                demand=demand, duration=duration)


class TestMakeEvent:
    def test_stamps_event_id_and_kind(self):
        event = make_event([raw_flow(1), raw_flow(2)])
        for f in event.flows:
            assert f.event_id == event.event_id
            assert f.kind is FlowKind.UPDATE

    def test_explicit_event_id(self):
        event = make_event([raw_flow(1)], event_id="custom")
        assert event.event_id == "custom"

    def test_arrival_and_label(self):
        event = make_event([raw_flow(1)], arrival_time=4.5, label="upgrade")
        assert event.arrival_time == 4.5
        assert event.label == "upgrade"

    def test_empty_event_rejected(self):
        with pytest.raises(ValueError, match="at least one flow"):
            make_event([])

    def test_ids_unique(self):
        ids = {next_event_id() for __ in range(50)}
        assert len(ids) == 50


class TestUpdateEventValidation:
    def test_mismatched_flow_event_id_rejected(self):
        flow = raw_flow(1)  # event_id is None
        with pytest.raises(ValueError, match="make_event"):
            UpdateEvent(event_id="U-x", flows=(flow,))


class TestEventProperties:
    def test_len_and_iter(self):
        event = make_event([raw_flow(i) for i in range(3)])
        assert len(event) == 3
        assert len(list(event)) == 3

    def test_total_demand(self):
        event = make_event([raw_flow(1, demand=5.0), raw_flow(2, demand=7.0)])
        assert event.total_demand == pytest.approx(12.0)

    def test_max_service_time(self):
        event = make_event([raw_flow(1, duration=1.0),
                            raw_flow(2, duration=9.0)])
        assert event.max_service_time == pytest.approx(9.0)

    def test_initial_state_queued(self):
        event = make_event([raw_flow(1)])
        assert event.state is EventState.QUEUED
