"""Tests for service mode: streams, backpressure, snapshots, exporters.

Runs on the small diamond network (no Fat-Tree background load) so the
whole suite stays fast; the integration smoke test exercises the full
``repro serve`` CLI path on a real scenario.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import ab_flow, diamond_setup  # noqa: E402

from repro.core.event import event_id_state, make_event, set_event_id_state
from repro.core.exceptions import SimulationError
from repro.core.flow import flow_id_state, set_flow_id_state
from repro.core.ioutil import payload_fingerprint
from repro.sched.fifo import FIFOScheduler
from repro.sim.export import CounterExporter, StatsLine
from repro.sim.service import (
    ServiceConfig,
    ServiceReport,
    SimulationService,
)
from repro.sim.simulator import SimulationConfig, UpdateSimulator
from repro.traces.arrivals import (
    STREAM_KINDS,
    SyntheticTrace,
    make_stream,
    replayed_stream,
)
from repro.traces.events import EventGenerator, EventGeneratorConfig

DIAMOND_HOSTS = ("a", "b", "c", "d", "e", "f")


def fresh_ids():
    set_flow_id_state(0)
    set_event_id_state(0)


@pytest.fixture(autouse=True)
def _hermetic_ids():
    """Pin the global id counters so streamed flows are reproducible and
    cannot collide with ids minted by other tests."""
    saved = (flow_id_state(), event_id_state())
    fresh_ids()
    yield
    set_flow_id_state(saved[0])
    set_event_id_state(saved[1])


def build_sim(max_deferrals=None, config=None, audit=None):
    net, provider = diamond_setup()
    return UpdateSimulator(
        net, provider, FIFOScheduler(),
        config=config or SimulationConfig(verify_invariants=True,
                                          max_deferrals=max_deferrals),
        audit=audit)


def diamond_stream(rate=1.0, seed=3, min_flows=1, max_flows=3,
                   demand_range=(2.0, 10.0)):
    trace = SyntheticTrace(DIAMOND_HOSTS, seed=seed,
                           demand_range=demand_range)
    generator = EventGenerator(
        trace, config=EventGeneratorConfig(min_flows=min_flows,
                                           max_flows=max_flows),
        seed=seed + 1)
    return generator.stream(rate)


class TestServiceConfig:
    def test_watermarks_validated(self):
        with pytest.raises(ValueError, match="resume_depth"):
            ServiceConfig(queue_cap=4, resume_depth=4)
        with pytest.raises(ValueError, match="queue_cap"):
            ServiceConfig(queue_cap=0)

    def test_snapshots_need_a_dir(self):
        with pytest.raises(ValueError, match="snapshot_dir"):
            ServiceConfig(snapshot_every=5.0)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            ServiceConfig(max_events=-1)
        with pytest.raises(ValueError, match="horizon"):
            ServiceConfig(horizon=-1.0)
        with pytest.raises(ValueError, match="audit_every"):
            ServiceConfig(audit_every=0)

    def test_service_revalidates_duck_typed_watermarks(self):
        """Equal watermarks must be rejected at service construction.

        ``ServiceConfig.__post_init__`` validates the pair, but the
        service accepts any config-shaped object; with
        ``resume_depth == queue_cap`` the backpressure hysteresis
        collapses (every round releases the held arrival while the
        queue still sits at the cap), so the service itself must
        re-assert the ordering instead of trusting the object's type.
        """
        def smuggled(**overrides):
            config = ServiceConfig()
            for name, value in overrides.items():
                object.__setattr__(config, name, value)
            return config

        equal = smuggled(queue_cap=8, resume_depth=8)
        with pytest.raises(ValueError, match="resume_depth"):
            SimulationService(build_sim(), diamond_stream(), equal)
        inverted = smuggled(queue_cap=8, resume_depth=9)
        with pytest.raises(ValueError, match="resume_depth"):
            SimulationService(build_sim(), diamond_stream(), inverted)
        zero_cap = smuggled(queue_cap=0, resume_depth=0)
        with pytest.raises(ValueError, match="queue_cap"):
            SimulationService(build_sim(), diamond_stream(), zero_cap)


class TestBoundedServe:
    def test_drains_bounded_stream_with_clean_audit(self):
        service = SimulationService(
            build_sim(), diamond_stream(),
            ServiceConfig(max_events=6, queue_cap=8, resume_depth=2))
        report = service.serve()
        assert isinstance(report, ServiceReport)
        assert report.stopped == "max_events"
        assert report.ingested == 6
        assert report.completed + report.dropped == 6
        assert report.audits == report.rounds > 0
        assert report.counters["events_arrived"] == 6
        assert report.metrics is not None
        assert report.metrics.event_count == report.completed

    def test_finite_stream_reports_stream_stop(self):
        events = [make_event([ab_flow(f"s{i}", 5.0, 1.0)],
                             arrival_time=float(i), label=f"s{i}")
                  for i in range(3)]
        service = SimulationService(build_sim(), replayed_stream(events),
                                    ServiceConfig(queue_cap=8,
                                                  resume_depth=2))
        report = service.serve()
        assert report.stopped == "stream"
        assert report.ingested == 3
        assert report.completed == 3

    def test_horizon_stops_ingestion(self):
        service = SimulationService(
            build_sim(), diamond_stream(rate=1.0),
            ServiceConfig(horizon=3.0, queue_cap=8, resume_depth=2))
        report = service.serve()
        assert report.stopped == "horizon"
        assert report.completed + report.dropped == report.ingested
        # Poisson(1/s) over 3s ingests a few events, never dozens.
        assert 0 <= report.ingested <= 10

    def test_request_stop_drains_gracefully(self):
        sim = build_sim()
        service = SimulationService(sim, diamond_stream(rate=5.0),
                                    ServiceConfig(queue_cap=16,
                                                  resume_depth=4))
        sim.engine.schedule_callback(2.0, service.request_stop,
                                     tag="test:stop")
        report = service.serve()
        assert report.stopped == "signal"
        assert report.completed + report.dropped == report.ingested
        assert sim.pipeline.events_remaining == 0

    def test_serve_is_single_use(self):
        service = SimulationService(build_sim(), diamond_stream(),
                                    ServiceConfig(max_events=1))
        service.serve()
        with pytest.raises(SimulationError, match="already ran"):
            service.serve()

    def test_streaming_replay_matches_batch_run(self):
        # The service's lazy-ingest path must reproduce the batch result
        # bit-for-bit on an identical event list and network.
        events = [make_event([ab_flow(f"r{i}f{j}", 8.0, 1.5)
                              for j in range(2)],
                             arrival_time=0.5 * i, label=f"r{i}")
                  for i in range(4)]
        batch_sim = build_sim()
        batch_sim.submit(events)
        batch = batch_sim.run()
        service = SimulationService(build_sim(), replayed_stream(events),
                                    ServiceConfig(queue_cap=16,
                                                  resume_depth=4))
        report = service.serve()
        assert report.metrics == batch


class TestBackpressure:
    def test_queue_cap_pauses_and_resumes(self):
        # Arrivals far faster than service: the queue hits the cap, the
        # service holds the next arrival, and resumes after drain.
        service = SimulationService(
            build_sim(), diamond_stream(rate=50.0),
            ServiceConfig(max_events=12, queue_cap=3, resume_depth=1))
        report = service.serve()
        assert report.backpressure_pauses >= 1
        assert report.ingested == 12
        assert report.completed + report.dropped == 12

    def test_unplaceable_event_dropped_despite_snapshot_timer(self, tmp_path):
        # A pending snapshot timer hides the stall from the pipeline's
        # pending==0 deadlock check; the snapshot callback must hand the
        # stalled queue back to the pipeline, which defers then drops.
        events = [make_event([ab_flow("fat", 500.0, 1.0)],
                             arrival_time=0.0, label="fat")]
        service = SimulationService(
            build_sim(max_deferrals=1), replayed_stream(events),
            ServiceConfig(queue_cap=4, resume_depth=1,
                          snapshot_every=5.0, snapshot_dir=tmp_path))
        report = service.serve()
        assert report.dropped == 1
        assert report.completed == 0
        assert report.stopped == "stream"


class TestSnapshots:
    def test_snapshot_files_and_fingerprints(self, tmp_path):
        service = SimulationService(
            build_sim(), diamond_stream(rate=2.0),
            ServiceConfig(max_events=8, queue_cap=8, resume_depth=2,
                          snapshot_every=1.0, snapshot_dir=tmp_path))
        report = service.serve()
        assert report.snapshots >= 2  # periodic plus the final one
        lines = (tmp_path / "snapshots.jsonl").read_text().splitlines()
        assert len(lines) == report.snapshots
        for line in lines:
            payload = json.loads(line)
            claimed = payload.pop("fingerprint")
            assert payload_fingerprint(payload) == claimed
        latest = json.loads((tmp_path / "latest.json").read_text())
        assert latest["final"] is True
        assert latest["events_remaining"] == 0
        assert latest["lifecycle"]["completed"] == report.completed
        prom = (tmp_path / "metrics.prom").read_text()
        assert f"repro_events_completed_total {report.completed}" in prom
        assert "# TYPE repro_queue_depth gauge" in prom

    def test_snapshots_are_deterministic(self, tmp_path):
        def one(directory):
            fresh_ids()
            service = SimulationService(
                build_sim(), diamond_stream(rate=2.0),
                ServiceConfig(max_events=5, queue_cap=8, resume_depth=2,
                              snapshot_every=1.0, snapshot_dir=directory))
            service.serve()
            return (directory / "latest.json").read_text()

        first = one(tmp_path / "one")
        second = one(tmp_path / "two")
        assert first == second


class TestExporter:
    def test_namespace_validated(self):
        with pytest.raises(ValueError, match="namespace"):
            CounterExporter(namespace="not-an-identifier")

    def test_counters_accumulate_over_batch_run(self):
        sim = build_sim()
        exporter = CounterExporter()
        sim.attach(exporter)
        sim.submit([make_event([ab_flow(f"x{i}", 5.0, 1.0)],
                               label=f"x{i}") for i in range(3)])
        sim.run()
        counts = exporter.counters
        assert counts["events_arrived"] == 3
        assert counts["events_completed"] == 3
        assert counts["rounds"] == 3
        assert counts["flows_finished"] == 3
        rendered = exporter.render()
        assert "# TYPE repro_events_arrived_total counter" in rendered
        assert "repro_events_completed_total 3" in rendered
        assert "repro_engine_pending 0" in rendered

    def test_plan_stage_counter_tracks_admissions(self):
        # Atomic mode: every admission applies exactly one stage, so the
        # stage counter equals the admission counter.
        sim = build_sim()
        exporter = CounterExporter()
        sim.attach(exporter)
        sim.submit([make_event([ab_flow(f"s{i}", 5.0, 1.0)],
                               label=f"s{i}") for i in range(3)])
        sim.run()
        counts = exporter.counters
        assert counts["admissions"] == 3
        assert counts["plan_stages"] == 3
        rendered = exporter.render()
        assert "repro_plan_stages_total 3" in rendered

    def test_compile_gauges_rendered(self):
        sim = build_sim(config=SimulationConfig(
            verify_invariants=True, compile_mode="augmented",
            compile_epsilon=0.25))
        exporter = CounterExporter()
        sim.attach(exporter)
        sim.submit([make_event([ab_flow("g0", 5.0, 1.0)], label="g0")])
        sim.run()
        rendered = exporter.render()
        assert "# TYPE repro_compile_epsilon gauge" in rendered
        assert "repro_compile_epsilon 0.25" in rendered
        assert "# TYPE repro_max_transient_overload gauge" in rendered
        # Single-flow diamond events never over-subscribe a link.
        assert "repro_max_transient_overload 0.0" in rendered

    def test_help_text_escaped_per_exposition_format(self, monkeypatch):
        """``# HELP`` lines must escape ``\\`` and newlines, not write
        them verbatim — a raw newline tears the line-oriented exposition
        into an unparseable tail line."""
        from repro.sim import export as export_mod

        monkeypatch.setattr(
            export_mod, "_COUNTERS",
            (("events_arrived", "line one\nline two \\ backslash"),))
        exporter = CounterExporter()
        rendered = exporter.render()
        help_lines = [line for line in rendered.splitlines()
                      if line.startswith("# HELP")]
        assert help_lines == [
            "# HELP repro_events_arrived_total "
            "line one\\nline two \\\\ backslash"]
        # Every physical line still starts with a comment marker or the
        # metric name: nothing leaked onto its own line.
        for line in rendered.splitlines():
            assert line.startswith(("# HELP", "# TYPE", "repro_"))

    def test_escape_help_is_order_correct(self):
        # Backslashes must be doubled before newline substitution, or the
        # substituted "\n" would itself get re-escaped.
        from repro.sim.export import _escape_help

        assert _escape_help("a\\nb") == "a\\\\nb"
        assert _escape_help("a\nb") == "a\\nb"
        assert _escape_help("plain text.") == "plain text."

    def test_stats_line_every_n_rounds(self):
        sink = []
        sim = build_sim()
        sim.attach(StatsLine(every=2, sink=sink.append))
        sim.submit([make_event([ab_flow(f"y{i}", 5.0, 1.0)],
                               label=f"y{i}") for i in range(5)])
        sim.run()
        # 5 FIFO rounds -> digests at rounds 2 and 4.
        assert len(sink) == 2
        assert "round=2" in sink[0] and "round=4" in sink[1]
        # The digest carries the cumulative compiled-stage count.
        assert "stages=2" in sink[0] and "stages=4" in sink[1]

    def test_stats_line_validation(self):
        with pytest.raises(ValueError, match="every"):
            StatsLine(every=0)


class TestStreams:
    def test_event_generator_stream_is_monotone(self):
        stream = diamond_stream(rate=2.0)
        events = [next(stream) for __ in range(20)]
        times = [e.arrival_time for e in events]
        assert times == sorted(times)
        assert all(len(e.flows) in (1, 2, 3) for e in events)

    def test_stream_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            next(diamond_stream(rate=0.0))

    @pytest.mark.parametrize("kind", STREAM_KINDS)
    def test_make_stream_kinds(self, kind):
        stream = make_stream(kind, DIAMOND_HOSTS, rate=1.0, seed=0,
                             config=EventGeneratorConfig(min_flows=1,
                                                         max_flows=2))
        event = next(stream)
        assert event.arrival_time > 0.0
        assert 1 <= len(event.flows) <= 2

    def test_make_stream_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            make_stream("nonsense", DIAMOND_HOSTS, rate=1.0)

    def test_synthetic_trace_validation(self):
        with pytest.raises(ValueError, match="demand"):
            SyntheticTrace(DIAMOND_HOSTS, demand_range=(0.0, 5.0))
        with pytest.raises(ValueError, match="duration"):
            SyntheticTrace(DIAMOND_HOSTS, duration_median=0.0)


class TestPayloadFingerprint:
    def test_key_order_independent(self):
        assert payload_fingerprint({"a": 1, "b": 2}) == \
            payload_fingerprint({"b": 2, "a": 1})

    def test_content_sensitive(self):
        assert payload_fingerprint({"a": 1}) != payload_fingerprint({"a": 2})

    def test_length_validated(self):
        with pytest.raises(ValueError, match="length"):
            payload_fingerprint({}, length=2)
        assert len(payload_fingerprint({}, length=8)) == 8
