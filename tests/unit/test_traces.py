"""Unit tests for trace generators and event generation."""

import math
import random

import pytest

from repro.core.flow import FlowKind
from repro.network.topology.fattree import FatTreeTopology
from repro.traces.base import clamp, hash_endpoints, lognormal, pareto
from repro.traces.benson import BensonLikeTrace
from repro.traces.events import (
    EventGenerator,
    EventGeneratorConfig,
    heterogeneous_config,
    mean_flows_config,
    switch_upgrade_event,
    synchronous_config,
    vm_migration_event,
)
from repro.traces.yahoo import YahooLikeTrace

HOSTS = [f"h{i}" for i in range(32)]


class TestDistributionHelpers:
    def test_lognormal_median(self):
        rng = random.Random(1)
        samples = sorted(lognormal(rng, 10.0, 0.5) for __ in range(4001))
        assert samples[2000] == pytest.approx(10.0, rel=0.15)

    def test_pareto_bounds(self):
        rng = random.Random(1)
        for __ in range(100):
            assert pareto(rng, xm=5.0, alpha=2.0) >= 5.0

    def test_clamp(self):
        assert clamp(5.0, 1.0, 10.0) == 5.0
        assert clamp(-1.0, 1.0, 10.0) == 1.0
        assert clamp(99.0, 1.0, 10.0) == 10.0

    def test_hash_endpoints_deterministic(self):
        a = hash_endpoints(HOSTS, "k1", "k2")
        b = hash_endpoints(HOSTS, "k1", "k2")
        assert a == b
        assert a[0] != a[1]

    def test_hash_endpoints_collision_shifted(self):
        src, dst = hash_endpoints(HOSTS, "same", "same")
        assert src != dst

    def test_hash_endpoints_needs_two_hosts(self):
        with pytest.raises(ValueError):
            hash_endpoints(["only"], "a", "b")


class TestYahooTrace:
    def test_demands_within_bounds(self):
        trace = YahooLikeTrace(HOSTS, seed=1, demand_min=2.0,
                               demand_max=50.0)
        for __ in range(500):
            assert 2.0 <= trace.sample_demand() <= 50.0

    def test_heavy_tail_exists(self):
        trace = YahooLikeTrace(HOSTS, seed=1)
        demands = [trace.sample_demand() for __ in range(2000)]
        mean = sum(demands) / len(demands)
        big = sum(1 for d in demands if d > 4 * mean)
        assert big > 0  # elephants present

    def test_deterministic_given_seed(self):
        a = YahooLikeTrace(HOSTS, seed=9).flows(20)
        b = YahooLikeTrace(HOSTS, seed=9).flows(20)
        assert [(f.src, f.dst, f.demand) for f in a] == \
            [(f.src, f.dst, f.demand) for f in b]

    def test_permanent_flows_have_no_duration(self):
        trace = YahooLikeTrace(HOSTS, seed=1)
        flow = trace.sample_flow(permanent=True)
        assert flow.duration is None
        assert math.isinf(flow.service_time)

    def test_finite_flows_have_consistent_size(self):
        trace = YahooLikeTrace(HOSTS, seed=1)
        flow = trace.sample_flow(permanent=False)
        assert flow.duration is not None
        assert flow.size == pytest.approx(flow.demand * flow.duration)

    def test_validation(self):
        with pytest.raises(ValueError):
            YahooLikeTrace(HOSTS, elephant_prob=1.5)
        with pytest.raises(ValueError):
            YahooLikeTrace(HOSTS, demand_min=0.0)
        with pytest.raises(ValueError):
            YahooLikeTrace(["one"])

    def test_flows_count_validation(self):
        with pytest.raises(ValueError):
            YahooLikeTrace(HOSTS, seed=1).flows(-1)


class TestBensonTrace:
    def test_demands_within_bounds(self):
        trace = BensonLikeTrace(HOSTS, seed=1)
        for __ in range(300):
            demand = trace.sample_demand()
            assert trace.demand_min <= demand <= trace.demand_max

    def test_duration_positive(self):
        trace = BensonLikeTrace(HOSTS, seed=1)
        for __ in range(300):
            assert trace.sample_duration() > 0


class TestEndpointSkew:
    def test_skew_concentrates_traffic(self):
        uniform = YahooLikeTrace(HOSTS, seed=1, endpoint_skew=0.0)
        skewed = YahooLikeTrace(HOSTS, seed=1, endpoint_skew=1.5)

        def top_share(trace):
            counts = {}
            for __ in range(2000):
                src, __dst = trace.sample_endpoints()
                counts[src] = counts.get(src, 0) + 1
            ranked = sorted(counts.values(), reverse=True)
            return sum(ranked[:3]) / 2000

        assert top_share(skewed) > top_share(uniform) * 2

    def test_skew_never_self_flow(self):
        trace = YahooLikeTrace(HOSTS, seed=1, endpoint_skew=2.0)
        for __ in range(200):
            src, dst = trace.sample_endpoints()
            assert src != dst

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            YahooLikeTrace(HOSTS, endpoint_skew=-1.0)


class TestEventGeneratorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventGeneratorConfig(min_flows=0)
        with pytest.raises(ValueError):
            EventGeneratorConfig(min_flows=10, max_flows=5)
        with pytest.raises(ValueError):
            EventGeneratorConfig(arrival="warp")
        with pytest.raises(ValueError):
            EventGeneratorConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            EventGeneratorConfig(host_demand_cap=0.0)

    def test_presets(self):
        het = heterogeneous_config()
        assert (het.min_flows, het.max_flows) == (10, 100)
        sync = synchronous_config()
        assert (sync.min_flows, sync.max_flows) == (50, 60)
        mean = mean_flows_config(40)
        assert (mean.min_flows, mean.max_flows) == (35, 45)

    def test_mean_flows_validation(self):
        with pytest.raises(ValueError):
            mean_flows_config(0)


class TestEventGenerator:
    def _generator(self, config=None, seed=3):
        trace = BensonLikeTrace(HOSTS, seed=seed)
        return EventGenerator(trace, config=config, seed=seed + 1)

    def test_flow_counts_in_range(self):
        gen = self._generator(EventGeneratorConfig(min_flows=5,
                                                   max_flows=8))
        for event in gen.generate(20):
            assert 5 <= len(event) <= 8

    def test_flows_are_update_kind(self):
        event = self._generator().generate(1)[0]
        for flow in event.flows:
            assert flow.kind is FlowKind.UPDATE
            assert flow.event_id == event.event_id
            assert flow.duration is not None

    def test_batch_arrivals_at_zero(self):
        events = self._generator().generate(5)
        assert all(e.arrival_time == 0.0 for e in events)

    def test_poisson_arrivals_increase(self):
        gen = self._generator(EventGeneratorConfig(arrival="poisson",
                                                   arrival_rate=2.0))
        events = gen.generate(10)
        times = [e.arrival_time for e in events]
        assert times == sorted(times)
        assert times[0] > 0

    def test_uniform_arrivals_within_span(self):
        gen = self._generator(EventGeneratorConfig(arrival="uniform",
                                                   span=5.0))
        for event in gen.generate(10):
            assert 0.0 <= event.arrival_time <= 5.0

    def test_host_demand_cap_enforced(self):
        config = EventGeneratorConfig(min_flows=60, max_flows=60,
                                      host_demand_cap=50.0)
        gen = self._generator(config)
        for event in gen.generate(5):
            out_load, in_load = {}, {}
            for flow in event.flows:
                out_load[flow.src] = out_load.get(flow.src, 0) + flow.demand
                in_load[flow.dst] = in_load.get(flow.dst, 0) + flow.demand
            assert max(out_load.values()) <= 50.0 + 1e-6
            assert max(in_load.values()) <= 50.0 + 1e-6

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            self._generator().generate(-1)


class TestScenarioEvents:
    def test_switch_upgrade_event(self):
        topo = FatTreeTopology(k=4)
        net = topo.network()
        from repro.core.flow import Flow
        net.place(Flow(flow_id="x1", src="h0_0_0", dst="h1_0_0",
                       demand=10.0),
                  ("h0_0_0", "e0_0", "a0_0", "c0_0", "a1_0", "e1_0",
                   "h1_0_0"))
        event, affected = switch_upgrade_event(net, "c0_0")
        assert affected == ["x1"]
        assert len(event) == 1
        assert event.flows[0].src == "h0_0_0"
        assert event.flows[0].flow_id != "x1"  # replacement flow, new id
        assert "upgrade" in event.label

    def test_switch_upgrade_no_traffic_rejected(self):
        topo = FatTreeTopology(k=4)
        net = topo.network()
        with pytest.raises(ValueError, match="no flows"):
            switch_upgrade_event(net, "c0_0")

    def test_vm_migration_event(self):
        event = vm_migration_event(["h1", "h2"], ["h3", "h4"],
                                   demand=100.0, volume=4000.0)
        assert len(event) == 2
        assert event.flows[0].src == "h1" and event.flows[0].dst == "h3"
        assert event.flows[0].service_time == pytest.approx(40.0)

    def test_vm_migration_validation(self):
        with pytest.raises(ValueError):
            vm_migration_event(["h1"], ["h2", "h3"], 10.0, 10.0)
        with pytest.raises(ValueError):
            vm_migration_event([], [], 10.0, 10.0)
