"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    PlacementError,
    PlanningError,
    ReproError,
    RuleSpaceError,
    SimulationError,
    TopologyError,
    UnknownFlowError,
)

ALL_ERRORS = [
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    PlanningError,
    SimulationError,
    TopologyError,
    UnknownFlowError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_catching_base_catches_everything(self):
        for error_type in ALL_ERRORS:
            with pytest.raises(ReproError):
                if error_type is InsufficientBandwidthError:
                    raise error_type("x", bottleneck=("a", "b"),
                                     deficit=1.0)
                raise error_type("x")


class TestPlacementFamily:
    """Every way a place() can fail shares the PlacementError base, so
    rollback paths (state.reroute, executor.apply_plan) catch one type."""

    @pytest.mark.parametrize("error_type", [
        DuplicateFlowError,
        InsufficientBandwidthError,
        InvalidPathError,
        RuleSpaceError,
        UnknownFlowError,
    ])
    def test_placement_failures_share_base(self, error_type):
        assert issubclass(error_type, PlacementError)

    @pytest.mark.parametrize("error_type", [PlanningError, SimulationError,
                                            TopologyError])
    def test_non_placement_errors_excluded(self, error_type):
        assert not issubclass(error_type, PlacementError)

    def test_rule_space_is_a_bandwidth_error(self):
        # Historical shape kept for compatibility: rule exhaustion is a
        # capacity failure and older call sites catch the bandwidth type.
        assert issubclass(RuleSpaceError, InsufficientBandwidthError)


class TestInsufficientBandwidth:
    def test_carries_bottleneck_and_deficit(self):
        error = InsufficientBandwidthError("full", bottleneck=("u", "v"),
                                           deficit=12.5)
        assert error.bottleneck == ("u", "v")
        assert error.deficit == 12.5

    def test_defaults(self):
        error = InsufficientBandwidthError("no path at all")
        assert error.bottleneck is None
        assert error.deficit == 0.0
