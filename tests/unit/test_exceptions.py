"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    PlanningError,
    ReproError,
    SimulationError,
    TopologyError,
    UnknownFlowError,
)

ALL_ERRORS = [
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    PlanningError,
    SimulationError,
    TopologyError,
    UnknownFlowError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_catching_base_catches_everything(self):
        for error_type in ALL_ERRORS:
            with pytest.raises(ReproError):
                if error_type is InsufficientBandwidthError:
                    raise error_type("x", bottleneck=("a", "b"),
                                     deficit=1.0)
                raise error_type("x")


class TestInsufficientBandwidth:
    def test_carries_bottleneck_and_deficit(self):
        error = InsufficientBandwidthError("full", bottleneck=("u", "v"),
                                           deficit=12.5)
        assert error.bottleneck == ("u", "v")
        assert error.deficit == 12.5

    def test_defaults(self):
        error = InsufficientBandwidthError("no path at all")
        assert error.bottleneck is None
        assert error.deficit == 0.0
