"""Unit tests for the live Network substrate."""

import networkx as nx
import pytest

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    TopologyError,
    UnknownFlowError,
)
from repro.core.flow import Flow
from repro.network.network import Network


def line_graph(capacity=100.0) -> nx.DiGraph:
    """a <-> s1 <-> s2 <-> b with host/switch kinds."""
    g = nx.DiGraph()
    g.add_node("a", kind="host")
    g.add_node("b", kind="host")
    g.add_node("s1", kind="edge")
    g.add_node("s2", kind="edge")
    for u, v in (("a", "s1"), ("s1", "s2"), ("s2", "b")):
        g.add_edge(u, v, capacity=capacity)
        g.add_edge(v, u, capacity=capacity)
    return g


def flow(fid="f1", demand=10.0) -> Flow:
    return Flow(flow_id=fid, src="a", dst="b", demand=demand)


@pytest.fixture()
def net() -> Network:
    return Network(line_graph())


PATH = ("a", "s1", "s2", "b")


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError, match="empty graph"):
            Network(nx.DiGraph())

    def test_negative_capacity_rejected(self):
        g = line_graph()
        g["a"]["s1"]["capacity"] = -1.0
        with pytest.raises(TopologyError, match="negative"):
            Network(g)

    def test_default_capacity_applied(self):
        g = nx.DiGraph()
        g.add_edge("a", "b")
        net = Network(g, default_capacity=500.0)
        assert net.capacity("a", "b") == 500.0

    def test_hosts_and_switches(self, net):
        assert sorted(net.hosts()) == ["a", "b"]
        assert sorted(net.switches()) == ["s1", "s2"]

    def test_switch_links_exclude_host_links(self, net):
        links = net.switch_links()
        assert ("s1", "s2") in links
        assert ("a", "s1") not in links


class TestPlacement:
    def test_place_consumes_bandwidth(self, net):
        net.place(flow(), PATH)
        assert net.used("a", "s1") == pytest.approx(10.0)
        assert net.residual("s1", "s2") == pytest.approx(90.0)
        assert net.has_flow("f1")
        assert "f1" in net.flows_on_link("s1", "s2")

    def test_duplicate_rejected(self, net):
        net.place(flow(), PATH)
        with pytest.raises(DuplicateFlowError):
            net.place(flow(), PATH)

    def test_insufficient_bandwidth_rejected(self, net):
        net.place(flow("f1", demand=95.0), PATH)
        with pytest.raises(InsufficientBandwidthError) as err:
            net.place(flow("f2", demand=10.0), PATH)
        assert err.value.bottleneck is not None
        assert err.value.deficit > 0

    def test_exact_fit_allowed(self, net):
        net.place(flow("f1", demand=60.0), PATH)
        net.place(flow("f2", demand=40.0), PATH)
        assert net.residual("a", "s1") == pytest.approx(0.0)

    def test_invalid_path_rejected(self, net):
        with pytest.raises(InvalidPathError):
            net.place(flow(), ("a", "s2", "b"))  # a->s2 link doesn't exist

    def test_non_simple_path_rejected(self, net):
        bad = Flow(flow_id="f9", src="a", dst="a2", demand=1.0)
        with pytest.raises((InvalidPathError, ValueError)):
            net.place(bad, ("a", "s1", "a"))

    def test_failed_placement_leaves_state_clean(self, net):
        net.place(flow("f1", demand=95.0), PATH)
        before = net.used("a", "s1")
        with pytest.raises(InsufficientBandwidthError):
            net.place(flow("f2", demand=50.0), PATH)
        assert net.used("a", "s1") == before
        assert not net.has_flow("f2")
        net.check_invariants()


class TestRemoval:
    def test_remove_releases_bandwidth(self, net):
        net.place(flow(), PATH)
        net.remove("f1")
        assert net.used("a", "s1") == pytest.approx(0.0)
        assert not net.has_flow("f1")
        assert "f1" not in net.flows_on_link("s1", "s2")

    def test_remove_unknown_rejected(self, net):
        with pytest.raises(UnknownFlowError):
            net.remove("ghost")

    def test_remove_returns_placement(self, net):
        net.place(flow(), PATH)
        placement = net.remove("f1")
        assert placement.path == PATH


def diamond_graph(capacity=100.0) -> nx.DiGraph:
    """a <-> s1 <-> {top, bot} <-> s2 <-> b: two disjoint middle paths."""
    g = nx.DiGraph()
    g.add_node("a", kind="host")
    g.add_node("b", kind="host")
    for s in ("s1", "s2", "top", "bot"):
        g.add_node(s, kind="edge")
    for u, v in (("a", "s1"), ("s1", "top"), ("s1", "bot"),
                 ("top", "s2"), ("bot", "s2"), ("s2", "b")):
        g.add_edge(u, v, capacity=capacity)
        g.add_edge(v, u, capacity=capacity)
    return g


TOP_PATH = ("a", "s1", "top", "s2", "b")
BOT_PATH = ("a", "s1", "bot", "s2", "b")


class TestReroute:
    def test_reroute_moves_flow(self):
        net = Network(diamond_graph())
        net.place(flow(), TOP_PATH)
        net.reroute("f1", BOT_PATH)
        assert net.placement("f1").path == BOT_PATH
        assert net.used("s1", "top") == pytest.approx(0.0)
        assert net.used("s1", "bot") == pytest.approx(10.0)
        net.check_invariants()

    def test_reroute_onto_overlapping_path_uses_net_usage(self):
        net = Network(diamond_graph())
        # f1 fills the shared a->s1 link almost fully; rerouting f1 itself
        # must not double-count its own demand on the shared links.
        net.place(flow("f1", demand=95.0), TOP_PATH)
        net.reroute("f1", BOT_PATH)
        assert net.placement("f1").path == BOT_PATH
        net.check_invariants()

    def test_reroute_restores_on_failure(self):
        net = Network(diamond_graph())
        net.place(flow("f1", demand=60.0), TOP_PATH)
        # a switch-to-switch filler that occupies only the bot middle link
        blocker = Flow(flow_id="blocker", src="s1", dst="s2", demand=60.0)
        net.place(blocker, ("s1", "bot", "s2"))
        with pytest.raises(InsufficientBandwidthError):
            net.reroute("f1", BOT_PATH)  # bot middle link lacks room
        assert net.placement("f1").path == TOP_PATH
        assert net.used("s1", "top") == pytest.approx(60.0)
        net.check_invariants()

    def test_reroute_restores_on_invalid_path(self):
        # Regression: the restore used to trigger only on bandwidth
        # failures, so a reroute onto a bogus path silently dropped the
        # flow from the network.
        net = Network(diamond_graph())
        net.place(flow("f1", demand=10.0), TOP_PATH)
        with pytest.raises(InvalidPathError):
            net.reroute("f1", ("a", "s1", "nowhere", "b"))
        assert net.placement("f1").path == TOP_PATH
        assert net.used("s1", "top") == pytest.approx(10.0)
        net.check_invariants()

    def test_reroute_restores_on_full_rule_table(self):
        from repro.core.exceptions import RuleSpaceError
        g = diamond_graph()
        g.nodes["bot"]["rule_capacity"] = 1
        net = Network(g)
        hog = Flow(flow_id="hog", src="s1", dst="s2", demand=1.0)
        net.place(hog, ("s1", "bot", "s2"))  # bot's only rule slot
        net.place(flow("f1", demand=10.0), TOP_PATH)
        with pytest.raises(RuleSpaceError):
            net.reroute("f1", BOT_PATH)
        assert net.placement("f1").path == TOP_PATH
        net.check_invariants()


class TestQueries:
    def test_unknown_link_raises(self, net):
        with pytest.raises(TopologyError):
            net.capacity("a", "b")
        with pytest.raises(TopologyError):
            net.used("x", "y")
        with pytest.raises(TopologyError):
            net.flows_on_link("x", "y")

    def test_path_residual(self, net):
        net.place(flow("f1", demand=30.0), PATH)
        assert net.path_residual(PATH) == pytest.approx(70.0)

    def test_path_residual_with_ignore(self, net):
        net.place(flow("f1", demand=30.0), PATH)
        residual = net.path_residual(PATH, ignore=frozenset(["f1"]))
        assert residual == pytest.approx(100.0)

    def test_path_feasible(self, net):
        net.place(flow("f1", demand=95.0), PATH)
        assert net.path_feasible(PATH, 5.0)
        assert not net.path_feasible(PATH, 6.0)

    def test_utilization(self, net):
        net.place(flow("f1", demand=25.0), PATH)
        assert net.utilization("s1", "s2") == pytest.approx(0.25)
        assert net.average_utilization() == pytest.approx(0.125)
        assert net.max_utilization() == pytest.approx(0.25)

    def test_totals(self, net):
        assert net.total_capacity() == pytest.approx(600.0)
        net.place(flow("f1", demand=10.0), PATH)
        assert net.total_used() == pytest.approx(30.0)

    def test_flow_count_and_ids(self, net):
        assert net.flow_count() == 0
        net.place(flow(), PATH)
        assert net.flow_count() == 1
        assert list(net.flow_ids()) == ["f1"]


class TestCopy:
    def test_copy_is_independent(self, net):
        net.place(flow(), PATH)
        clone = net.copy()
        clone.remove("f1")
        assert net.has_flow("f1")
        assert not clone.has_flow("f1")
        net.check_invariants()
        clone.check_invariants()

    def test_copy_preserves_state(self, net):
        net.place(flow(), PATH)
        clone = net.copy()
        assert clone.used("a", "s1") == net.used("a", "s1")
        assert clone.placement("f1").path == PATH


class TestInvariants:
    def test_clean_network_passes(self, net):
        net.check_invariants()

    def test_detects_corruption(self, net):
        net.place(flow(), PATH)
        idx = net.link_table().index[("a", "s1")]
        net._used_col[idx] += 5.0  # simulate bookkeeping drift
        with pytest.raises(AssertionError):
            net.check_invariants()
