"""Unit tests for failure injection and repair events."""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import BG_TOP, ab_flow, cd_flow, diamond_setup  # noqa: E402

from repro.core.exceptions import InsufficientBandwidthError, TopologyError
from repro.core.planner import EventPlanner
from repro.network.failures import FailureInjector, repair_event


@pytest.fixture()
def setup():
    net, provider = diamond_setup()
    net.place(ab_flow("via_top", 30.0), ("a", "s1", "top", "s2", "b"))
    net.place(cd_flow("bg", 20.0), BG_TOP)
    return net, provider


class TestFailLink:
    def test_strands_crossing_flows(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        record = injector.fail_link("s1", "top")
        stranded = {f.flow_id for f in record.stranded}
        assert stranded == {"via_top", "bg"}
        assert not net.has_flow("via_top")
        net.check_invariants()

    def test_failed_link_unusable(self, setup):
        net, __ = setup
        FailureInjector(net).fail_link("s1", "top")
        assert net.capacity("s1", "top") == 0.0
        with pytest.raises(InsufficientBandwidthError):
            net.place(ab_flow("retry", 1.0), ("a", "s1", "top", "s2", "b"))

    def test_unknown_link_rejected(self, setup):
        net, __ = setup
        with pytest.raises(TopologyError):
            FailureInjector(net).fail_link("a", "b")

    def test_single_direction(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        record = injector.fail_link("s1", "top", both_directions=False)
        assert record.failed_links == (("s1", "top"),)
        assert net.capacity("top", "s1") > 0


class TestFailSwitch:
    def test_fails_all_adjacent_links(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        record = injector.fail_switch("top")
        assert net.capacity("s1", "top") == 0.0
        assert net.capacity("top", "s2") == 0.0
        assert {f.flow_id for f in record.stranded} == {"via_top", "bg"}

    def test_unknown_switch_rejected(self, setup):
        net, __ = setup
        with pytest.raises(TopologyError):
            FailureInjector(net).fail_switch("ghost")


class TestHeal:
    def test_heal_restores_capacity(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        record = injector.fail_link("s1", "top")
        injector.heal(record)
        assert net.capacity("s1", "top") == 100.0
        assert injector.active_failures == ()

    def test_heal_unknown_rejected(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        record = injector.fail_link("s1", "top")
        injector.heal(record)
        with pytest.raises(ValueError):
            injector.heal(record)

    def test_heal_all(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        injector.fail_link("s1", "top")
        injector.fail_link("s2", "b")
        injector.heal_all()
        assert injector.active_failures == ()
        assert net.capacity("s2", "b") == 100.0


class TestOverlappingFailures:
    """Regression: failing a switch then one of its links used to save the
    already-zeroed capacity as the "original", so out-of-order heals
    restored 0.0 permanently."""

    def test_out_of_order_heal_restores_original(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        switch = injector.fail_switch("top")   # zeroes s1<->top, top<->s2
        link = injector.fail_link("s1", "top")  # overlaps a zeroed link
        injector.heal(switch)
        # The link failure still covers s1<->top; the rest of the switch's
        # links come back.
        assert net.capacity("s1", "top") == 0.0
        assert net.capacity("top", "s2") == 100.0
        injector.heal(link)
        assert net.capacity("s1", "top") == 100.0
        assert injector.active_failures == ()
        net.check_invariants()

    def test_in_order_heal_restores_original(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        switch = injector.fail_switch("top")
        link = injector.fail_link("s1", "top")
        injector.heal(link)
        assert net.capacity("s1", "top") == 0.0  # switch still covers it
        injector.heal(switch)
        assert net.capacity("s1", "top") == 100.0

    def test_field_equal_records_are_distinct(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        first = injector.fail_link("s1", "bot")
        second = injector.fail_link("s1", "bot")
        assert len(injector.active_failures) == 2
        assert injector.is_active(first) and injector.is_active(second)
        injector.heal(first)
        assert not injector.is_active(first)
        assert injector.is_active(second)
        assert net.capacity("s1", "bot") == 0.0  # second still holds it
        injector.heal(second)
        assert net.capacity("s1", "bot") == 100.0

    def test_active_failures_snapshot_immutable(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        injector.fail_link("s1", "bot")
        snapshot = injector.active_failures
        assert isinstance(snapshot, tuple)


class TestRepairEvent:
    def test_repair_reroutes_around_failure(self, setup):
        net, provider = setup
        injector = FailureInjector(net)
        record = injector.fail_switch("top")
        event = repair_event(record)
        assert len(event) == 2
        assert "repair" in event.label

        planner = EventPlanner(provider)
        plan = planner.plan_event(net, event, random.Random(1), commit=True)
        assert plan.feasible
        for flow_plan in plan.flow_plans:
            assert "top" not in flow_plan.path  # capacity 0 blocks it
        net.check_invariants()

    def test_empty_repair_rejected(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        # bot carries nothing, so failing it strands no flows
        record = injector.fail_link("s1", "bot")
        with pytest.raises(ValueError, match="nothing to repair"):
            repair_event(record)

    def test_repair_flows_preserve_demand(self, setup):
        net, __ = setup
        injector = FailureInjector(net)
        record = injector.fail_switch("top")
        event = repair_event(record)
        demands = sorted(f.demand for f in event.flows)
        assert demands == [20.0, 30.0]
        originals = {f.flow_id for f in record.stranded}
        assert all(f.flow_id not in originals for f in event.flows)
