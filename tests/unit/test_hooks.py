"""Unit tests for the hook bus, tagged callbacks, and scheduler registry."""

import pytest

from repro.sched import (
    SCHEDULER_KINDS,
    build_scheduler,
    make_scheduler,
    register_scheduler,
    standard_scheduler_specs,
)
from repro.sched.fifo import FIFOScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sim.engine import SimulationEngine, TaggedCallback
from repro.sim.hooks import (
    EventArrived,
    EventCompleted,
    Hook,
    HookBus,
)


class TestHookBus:
    def test_dispatch_is_exact_type(self):
        bus = HookBus()
        seen = []
        bus.subscribe(EventArrived, seen.append)
        arrived = EventArrived(now=1.0, event_id="U1", flow_count=2,
                               origin="submitted")
        bus.emit(arrived)
        bus.emit(EventCompleted(now=2.0, event_id="U1"))
        assert seen == [arrived]

    def test_handlers_run_in_subscription_order(self):
        # Record order IS subscription order — the byte-identity contract
        # (metrics before listener) depends on it.
        bus = HookBus()
        order = []
        bus.subscribe(EventCompleted, lambda h: order.append("metrics"))
        bus.subscribe(EventCompleted, lambda h: order.append("listener"))
        bus.emit(EventCompleted(now=0.0, event_id="U1"))
        assert order == ["metrics", "listener"]

    def test_emit_without_handlers_is_counted_but_silent(self):
        bus = HookBus()
        bus.emit(EventCompleted(now=0.0, event_id="U1"))
        assert bus.emitted == 1
        assert bus.handlers(EventCompleted) == ()

    def test_handlers_lists_subscribers(self):
        bus = HookBus()

        def handler(hook):
            pass

        bus.subscribe(EventArrived, handler)
        assert bus.handlers(EventArrived) == (handler,)

    def test_payloads_are_frozen(self):
        hook = EventCompleted(now=0.0, event_id="U1")
        with pytest.raises(AttributeError):
            hook.event_id = "U2"

    def test_payloads_are_hooks(self):
        assert issubclass(EventArrived, Hook)

    def test_repr_mentions_handler_counts(self):
        bus = HookBus()
        bus.subscribe(EventArrived, lambda h: None)
        assert "EventArrived" in repr(bus)


class TestTaggedCallbacks:
    def test_tagged_callback_runs_and_reprs(self):
        hits = []
        cb = TaggedCallback(lambda: hits.append(1), tag="arrival:U1")
        cb()
        assert hits == [1]
        assert repr(cb) == "<callback arrival:U1>"

    def test_schedule_callback_tags_show_in_pop_order(self):
        engine = SimulationEngine()
        engine.schedule_callback(2.0, lambda: None, tag="round")
        engine.schedule_callback(1.0, lambda: None, tag="arrival:U1")
        engine.schedule_at(3.0, lambda: None)  # untagged legacy path
        assert engine.pending_tags() == ["arrival:U1", "round",
                                         "?function"]

    def test_cancelled_callbacks_leave_the_tag_listing(self):
        engine = SimulationEngine()
        handle = engine.schedule_callback(1.0, lambda: None, tag="doomed")
        engine.schedule_callback(2.0, lambda: None, tag="kept")
        handle.cancel()
        assert engine.pending_tags() == ["kept"]

    def test_schedule_callback_same_fifo_semantics(self):
        # Same (time, seq) total order as schedule_at: ties pop FIFO.
        engine = SimulationEngine()
        order = []
        engine.schedule_callback(1.0, lambda: order.append("a"), tag="a")
        engine.schedule_callback(1.0, lambda: order.append("b"), tag="b")
        engine.run()
        assert order == ["a", "b"]


class TestSchedulerRegistry:
    def test_make_scheduler_builds_registered_kinds(self):
        assert isinstance(make_scheduler("fifo"), FIFOScheduler)
        lmtf = make_scheduler("lmtf", alpha=4, seed=7)
        assert isinstance(lmtf, LMTFScheduler)

    def test_make_scheduler_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler kind"):
            make_scheduler("bogus")

    def test_build_scheduler_requires_kind(self):
        with pytest.raises(ValueError, match="has no 'kind' key"):
            build_scheduler({"alpha": 4})

    def test_register_scheduler_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("fifo")(FIFOScheduler)

    def test_register_scheduler_adds_new_kind(self):
        @register_scheduler("test-dummy")
        class Dummy(FIFOScheduler):
            pass

        try:
            assert isinstance(make_scheduler("test-dummy"), Dummy)
        finally:
            del SCHEDULER_KINDS["test-dummy"]

    def test_standard_specs_are_the_paper_triple(self):
        specs = standard_scheduler_specs(seed=5, alpha=3)
        assert [s["kind"] for s in specs] == ["fifo", "lmtf", "plmtf"]
        assert specs[1]["seed"] == 14  # seed + 9 sampling convention
        assert specs[2]["alpha"] == 3
        for spec in specs:
            build_scheduler(spec)  # all resolvable
