"""Unit tests for link-level helpers."""

from repro.network.link import (
    EPS,
    format_link,
    format_path,
    is_simple_path,
    path_links,
)


class TestPathLinks:
    def test_pairs_in_order(self):
        assert path_links(("a", "b", "c")) == (("a", "b"), ("b", "c"))

    def test_two_node_path(self):
        assert path_links(("a", "b")) == (("a", "b"),)

    def test_single_node_is_empty(self):
        assert path_links(("a",)) == ()


class TestIsSimplePath:
    def test_simple(self):
        assert is_simple_path(("a", "b", "c"))

    def test_repeat_rejected(self):
        assert not is_simple_path(("a", "b", "a"))

    def test_too_short_rejected(self):
        assert not is_simple_path(("a",))
        assert not is_simple_path(())


class TestFormatting:
    def test_format_link(self):
        assert format_link(("e0", "a0")) == "e0->a0"

    def test_format_path(self):
        assert format_path(("a", "b", "c")) == "a -> b -> c"


class TestEps:
    def test_eps_smaller_than_any_real_demand(self):
        assert EPS < 0.5  # the smallest demand any generator produces
        assert EPS > 0
