"""Unit tests for the Flow/Placement value objects."""

import math

import pytest

from repro.core.flow import Flow, FlowKind, FlowStats, Placement, next_flow_id


def flow(**overrides):
    base = dict(flow_id="f-test", src="a", dst="b", demand=10.0)
    base.update(overrides)
    return Flow(**base)


class TestFlowValidation:
    def test_valid_flow(self):
        f = flow()
        assert f.demand == 10.0
        assert f.kind is FlowKind.BACKGROUND

    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError, match="demand must be positive"):
            flow(demand=0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="demand must be positive"):
            flow(demand=-5.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="size must be >= 0"):
            flow(size=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration must be >= 0"):
            flow(duration=-0.1)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError, match="two endpoints"):
            flow(dst="a")

    def test_flow_is_frozen(self):
        f = flow()
        with pytest.raises(AttributeError):
            f.demand = 99.0


class TestServiceTime:
    def test_explicit_duration_wins(self):
        f = flow(duration=3.5, size=1000.0)
        assert f.service_time == 3.5

    def test_derived_from_size(self):
        f = flow(size=50.0, demand=10.0)
        assert f.service_time == pytest.approx(5.0)

    def test_permanent_flow_is_infinite(self):
        f = flow()
        assert math.isinf(f.service_time)

    def test_zero_duration_allowed(self):
        f = flow(duration=0.0)
        assert f.service_time == 0.0


class TestReplace:
    def test_replace_creates_modified_copy(self):
        f = flow()
        g = f.replace(demand=20.0)
        assert g.demand == 20.0
        assert f.demand == 10.0
        assert g.flow_id == f.flow_id

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            flow().replace(demand=-1.0)


class TestNextFlowId:
    def test_ids_are_unique(self):
        ids = {next_flow_id() for __ in range(100)}
        assert len(ids) == 100

    def test_id_format(self):
        assert next_flow_id().startswith("f")


class TestPlacement:
    def test_links_of_path(self):
        p = Placement(flow=flow(), path=("a", "s1", "s2", "b"))
        assert p.links == (("a", "s1"), ("s1", "s2"), ("s2", "b"))

    def test_short_path_rejected(self):
        with pytest.raises(ValueError, match="at least two nodes"):
            Placement(flow=flow(), path=("a",))

    def test_endpoint_mismatch_rejected(self):
        with pytest.raises(ValueError, match="do not match"):
            Placement(flow=flow(), path=("a", "s1", "c"))

    def test_src_mismatch_rejected(self):
        with pytest.raises(ValueError, match="do not match"):
            Placement(flow=flow(), path=("x", "s1", "b"))


class TestFlowStats:
    def test_initially_incomplete(self):
        stats = FlowStats()
        assert not stats.completed
        assert stats.migrations == 0

    def test_completed_after_finish(self):
        stats = FlowStats(start_time=1.0, finish_time=2.0)
        assert stats.completed
