"""IndexedQueue: the Fenwick-indexed drop-in for the pipeline's list.

The queue's contract is exact ``list`` equivalence for the operations the
pipeline uses — iteration order, ``[k]`` / slices, ``in``, ``remove`` by
identity — so every test here drives the queue and a plain list with the
same operation stream and asserts they never disagree, including across
the tombstone-compaction threshold.
"""

import random

import pytest

from repro.core.event import make_event
from repro.core.flow import Flow
from repro.sched.base import QueuedEvent
from repro.sched.shard import IndexedQueue


def queued(i):
    flow = Flow(flow_id=f"f{i}", src="a", dst="b", demand=1.0,
                duration=1.0)
    return QueuedEvent(make_event([flow]), seq=i)


class TestIndexedQueue:
    def test_starts_empty(self):
        q = IndexedQueue()
        assert len(q) == 0
        assert not q
        assert list(q) == []

    def test_append_iterates_in_insertion_order(self):
        items = [queued(i) for i in range(5)]
        q = IndexedQueue(items)
        assert list(q) == items
        assert len(q) == 5
        assert q

    def test_getitem_int_and_negative(self):
        items = [queued(i) for i in range(7)]
        q = IndexedQueue(items)
        for k in range(7):
            assert q[k] is items[k]
            assert q[-1 - k] is items[-1 - k]
        with pytest.raises(IndexError):
            q[7]
        with pytest.raises(IndexError):
            q[-8]

    def test_getitem_slice_matches_list(self):
        items = [queued(i) for i in range(9)]
        q = IndexedQueue(items)
        q.remove(items[2])
        reference = [x for x in items if x is not items[2]]
        assert q[:3] == reference[:3]
        assert q[::2] == reference[::2]
        assert q[-2:] == reference[-2:]

    def test_remove_preserves_order_and_indexing(self):
        items = [queued(i) for i in range(6)]
        q = IndexedQueue(items)
        q.remove(items[0])
        q.remove(items[3])
        reference = [items[1], items[2], items[4], items[5]]
        assert list(q) == reference
        assert [q[k] for k in range(len(q))] == reference

    def test_contains_is_identity_based(self):
        items = [queued(i) for i in range(3)]
        q = IndexedQueue(items)
        assert items[1] in q
        q.remove(items[1])
        assert items[1] not in q
        assert queued(1) not in q  # equal-ish value, different object

    def test_duplicate_append_rejected(self):
        item = queued(0)
        q = IndexedQueue([item])
        with pytest.raises(ValueError, match="already queued"):
            q.append(item)

    def test_remove_missing_raises(self):
        q = IndexedQueue([queued(0)])
        with pytest.raises(ValueError, match="not in queue"):
            q.remove(queued(1))

    def test_matches_list_reference_under_random_ops(self):
        # Drive well past the compaction threshold (64 slots) with a
        # removal-heavy mix so compaction fires repeatedly mid-stream.
        rng = random.Random(42)
        q = IndexedQueue()
        reference = []
        counter = 0
        for _ in range(2000):
            if reference and rng.random() < 0.55:
                victim = reference.pop(rng.randrange(len(reference)))
                q.remove(victim)
            else:
                item = queued(counter)
                counter += 1
                reference.append(item)
                q.append(item)
            assert len(q) == len(reference)
        assert list(q) == reference
        for k in range(len(reference)):
            assert q[k] is reference[k]
        assert q[len(reference) // 3:] == reference[len(reference) // 3:]

    def test_compaction_shrinks_backing_store(self):
        items = [queued(i) for i in range(128)]
        q = IndexedQueue(items)
        for item in items[:100]:
            q.remove(item)
        # compaction fired: the backing store no longer holds a slot per
        # removed entry (it only re-fires above the 64-slot floor, so it
        # need not end exactly at len(q))
        assert len(q._slots) < len(items)
        assert len(q._slots) <= max(2 * len(q), IndexedQueue._COMPACT_MIN)
        assert list(q) == items[100:]
        assert [q[k] for k in range(len(q))] == items[100:]
