"""Shared test scaffolding: small controllable topologies and builders."""

from __future__ import annotations

import networkx as nx

from repro.core.flow import Flow
from repro.network.routing.provider import PathProvider
from repro.network.topology.custom import CustomTopology

#: a->b update-flow paths through the diamond
TOP = ("a", "s1", "top", "s2", "b")
BOT = ("a", "s1", "bot", "s2", "b")
#: c->d and e->f background paths (share only middle links with a->b)
BG_TOP = ("c", "s1", "top", "s2", "d")
BG_BOT = ("c", "s1", "bot", "s2", "d")
EF_TOP = ("e", "s1", "top", "s2", "f")
EF_BOT = ("e", "s1", "bot", "s2", "f")


def diamond_topology(capacity: float = 100.0) -> CustomTopology:
    """Hosts a,b,c,d around two disjoint middle paths (top / bot)."""
    g = nx.Graph()
    for h in ("a", "b", "c", "d", "e", "f"):
        g.add_node(h, kind="host")
    for s in ("s1", "s2", "top", "bot"):
        g.add_node(s, kind="switch")
    for u, v in (("a", "s1"), ("c", "s1"), ("e", "s1"),
                 ("s1", "top"), ("s1", "bot"), ("top", "s2"),
                 ("bot", "s2"), ("s2", "b"), ("s2", "d"), ("s2", "f")):
        g.add_edge(u, v, capacity=capacity)
    return CustomTopology(g, name="diamond", max_paths=4)


def diamond_setup(capacity: float = 100.0):
    """(network, provider) for a fresh diamond."""
    topo = diamond_topology(capacity)
    return topo.network(), PathProvider(topo)


def ab_flow(fid: str, demand: float, duration: float = 1.0) -> Flow:
    """An a->b flow (update-style)."""
    return Flow(flow_id=fid, src="a", dst="b", demand=demand,
                duration=duration)


def cd_flow(fid: str, demand: float, duration: float | None = None) -> Flow:
    """A c->d flow (background-style; permanent unless given a duration)."""
    return Flow(flow_id=fid, src="c", dst="d", demand=demand,
                duration=duration)


def ef_flow(fid: str, demand: float, duration: float | None = None) -> Flow:
    """An e->f flow (second background pair, independent host links)."""
    return Flow(flow_id=fid, src="e", dst="f", demand=demand,
                duration=duration)
