"""Cheap cell functions for exercising the experiment runner.

Workers resolve cells by ``"module:function"`` reference, so these live in
an importable module (tests put this directory on ``sys.path``; forked
workers inherit it) instead of inline in the test files.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def echo(value):
    """Return the input — the identity cell."""
    return {"value": value, "pid": os.getpid()}


def boom(message: str = "kaboom"):
    """Always fail."""
    raise RuntimeError(message)


def flaky(scratch: str, succeed_on: int = 2):
    """Fail until attempt ``succeed_on``, using a scratch dir as the
    cross-process attempt counter."""
    marker = Path(scratch) / "attempts"
    attempts = int(marker.read_text()) + 1 if marker.exists() else 1
    marker.write_text(str(attempts))
    if attempts < succeed_on:
        raise RuntimeError(f"flaky attempt {attempts}")
    return {"attempts": attempts}


def nap(seconds: float):
    """Sleep longer than any reasonable test timeout."""
    time.sleep(seconds)
    return "overslept"


def record_pid():
    """Report which process ran the cell."""
    return os.getpid()
