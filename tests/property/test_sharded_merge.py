"""Property tests for the sharded probe/merge pipeline.

The sharded scheduler's whole contract is byte-identity: wrapping a
policy in :class:`~repro.sched.shard.ShardedScheduler` must never change
a decision, no matter the shard count, the probe executor, or the order
the executor runs probes in. These tests drive that contract with
randomized queues whose events deliberately collide on footprints (all
flows share the diamond's two uplinks):

* sharded P-LMTF / LMTF decisions equal the serial policy's, admission
  for admission, including planning ops, cache counters, and the shared
  planner-RNG stream position;
* the merged batch admits in single-shard ``(time, seq)`` order — the
  head is the cheapest probe, every later admission follows enqueue
  order (conflicts demote, they never reorder);
* the shuffled and thread executors produce the same bytes as the
  serial one (order independence is what makes parallel probing safe).
"""

import random
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import cd_flow, diamond_topology  # noqa: E402

from repro.core.event import make_event
from repro.core.flow import Flow, next_flow_id
from repro.core.planner import EventPlanner
from repro.network.routing.provider import PathProvider
from repro.sched.base import QueuedEvent, SchedulingContext
from repro.sched.lmtf import LMTFScheduler
from repro.sched.plmtf import PLMTFScheduler
from repro.sched.shard import ShardedScheduler

TOPO = diamond_topology()
PROVIDER = PathProvider(TOPO)

PAIRS = [("a", "b"), ("c", "d"), ("e", "f")]


def build_events(spec):
    """spec: per event, a list of (pair_index, demand, duration)."""
    events = []
    for flows_spec in spec:
        flows = []
        for pair_index, demand, duration in flows_spec:
            src, dst = PAIRS[pair_index % len(PAIRS)]
            flows.append(Flow(flow_id=next_flow_id(), src=src, dst=dst,
                              demand=demand, duration=duration))
        events.append(make_event(flows))
    return events


def make_context(events, seed=7):
    network = TOPO.network()
    queue = [QueuedEvent(event, seq=i) for i, event in enumerate(events)]
    return SchedulingContext(now=0.0, queue=queue,
                             planner=EventPlanner(PROVIDER),
                             network=network, rng=random.Random(seed))


def signature(decision):
    """Everything observable about a round decision, comparable."""
    return (
        [(a.queued.event.event_id, a.queued.seq, a.plan.cost,
          tuple(f.flow_id for f in a.flows))
         for a in decision.admissions],
        decision.planning_ops,
        decision.cache_hits,
        decision.cache_misses,
        decision.cache_invalidations,
    )


# Demands large enough that several same-pair events cannot coexist on one
# 100 Mbit/s uplink: the batch walk must hit footprint conflicts and
# demote, which is exactly the merge behavior under test.
event_spec = st.lists(
    st.lists(st.tuples(st.integers(0, 2),
                       st.floats(min_value=10.0, max_value=45.0),
                       st.floats(min_value=0.1, max_value=5.0)),
             min_size=1, max_size=2),
    min_size=1, max_size=8)


class TestShardedMatchesSerial:
    @given(spec=event_spec, shards=st.sampled_from([2, 4, 8]),
           alpha=st.integers(1, 6), cache=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_plmtf_decision_identical(self, spec, shards, alpha, cache):
        events = build_events(spec)
        serial = PLMTFScheduler(alpha=alpha, seed=3, probe_cache=cache)
        sharded = ShardedScheduler(
            PLMTFScheduler(alpha=alpha, seed=3, probe_cache=cache),
            shards=shards)
        ctx_a = make_context(events)
        ctx_b = make_context(events)
        sig_a = signature(serial.select(ctx_a))
        sig_b = signature(sharded.select(ctx_b))
        assert sig_a == sig_b
        # the shared planner RNG must land at the same stream position:
        # a sharded run and a serial run stay byte-identical forever after
        assert ctx_a.rng.getstate() == ctx_b.rng.getstate()

    @given(spec=event_spec, shards=st.sampled_from([2, 4]),
           cache=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_lmtf_decision_identical(self, spec, shards, cache):
        events = build_events(spec)
        serial = LMTFScheduler(alpha=4, seed=3, probe_cache=cache)
        sharded = ShardedScheduler(
            LMTFScheduler(alpha=4, seed=3, probe_cache=cache),
            shards=shards)
        ctx_a = make_context(events)
        ctx_b = make_context(events)
        assert signature(serial.select(ctx_a)) == \
            signature(sharded.select(ctx_b))
        assert ctx_a.rng.getstate() == ctx_b.rng.getstate()

    @given(spec=event_spec, shards=st.sampled_from([2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_merged_batch_admits_in_time_seq_order(self, spec, shards):
        events = build_events(spec)
        sharded = ShardedScheduler(PLMTFScheduler(alpha=4, seed=3),
                                   shards=shards)
        decision = sharded.select(make_context(events))
        # head = cheapest probe; the batch walk then follows enqueue
        # order, so everything after the head must be seq-ascending —
        # a footprint conflict demotes a candidate, it never reorders one
        tail = [a.queued.seq for a in decision.admissions[1:]]
        assert tail == sorted(tail)
        keys = [(a.queued.event.arrival_time, a.queued.seq)
                for a in decision.admissions[1:]]
        assert keys == sorted(keys)

    @given(spec=event_spec, executor=st.sampled_from(["thread",
                                                      "shuffled"]),
           cache=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_executor_order_independence(self, spec, executor, cache):
        events = build_events(spec)
        baseline = ShardedScheduler(
            PLMTFScheduler(alpha=4, seed=3, probe_cache=cache),
            shards=4, executor="serial")
        variant = ShardedScheduler(
            PLMTFScheduler(alpha=4, seed=3, probe_cache=cache),
            shards=4, executor=executor)
        ctx_a = make_context(events)
        ctx_b = make_context(events)
        assert signature(baseline.select(ctx_a)) == \
            signature(variant.select(ctx_b))
        assert ctx_a.rng.getstate() == ctx_b.rng.getstate()
