"""Property-based tests for the migration/event planners.

Core safety properties: whatever plan the planner produces, (1) applying it
never oversubscribes a link, (2) its reported ``Cost(U)`` equals the summed
demands of the flows it actually migrated (Definition 2), and (3) probing
never mutates the network.
"""

import random
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import (  # noqa: E402
    BG_BOT,
    BG_TOP,
    EF_BOT,
    EF_TOP,
    cd_flow,
    diamond_topology,
    ef_flow,
)

from repro.core.event import make_event
from repro.core.executor import apply_plan
from repro.core.flow import Flow
from repro.core.planner import EventPlanner
from repro.network.routing.provider import PathProvider

TOPO = diamond_topology()
PROVIDER = PathProvider(TOPO)


def loaded_network(bg_top: float, bg_bot: float, ef_top: float,
                   ef_bot: float):
    network = TOPO.network()
    if bg_top > 0:
        network.place(cd_flow("bgt", bg_top), BG_TOP)
    if bg_bot > 0:
        network.place(cd_flow("bgb", bg_bot), BG_BOT)
    if ef_top > 0:
        network.place(ef_flow("eft", ef_top), EF_TOP)
    if ef_bot > 0:
        network.place(ef_flow("efb", ef_bot), EF_BOT)
    return network


background = st.tuples(
    st.floats(min_value=0.0, max_value=49.0),
    st.floats(min_value=0.0, max_value=49.0),
    st.floats(min_value=0.0, max_value=49.0),
    st.floats(min_value=0.0, max_value=49.0),
)

event_demands = st.lists(st.floats(min_value=1.0, max_value=45.0),
                         min_size=1, max_size=4)


class TestPlannerProperties:
    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_plans_apply_without_oversubscription(self, bg, demands, seed):
        network = loaded_network(*bg)
        planner = EventPlanner(PROVIDER)
        flows = [Flow(flow_id=f"u{i}", src="a", dst="b", demand=d,
                      duration=1.0) for i, d in enumerate(demands)]
        event = make_event(flows)
        plan = planner.plan_event(network, event, random.Random(seed))
        if not plan.feasible:
            return
        apply_plan(network, plan)
        network.check_invariants()
        for u, v in network.links():
            assert network.used(u, v) <= network.capacity(u, v) + 1e-6

    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_cost_equals_migrated_demand(self, bg, demands, seed):
        network = loaded_network(*bg)
        planner = EventPlanner(PROVIDER)
        flows = [Flow(flow_id=f"u{i}", src="a", dst="b", demand=d,
                      duration=1.0) for i, d in enumerate(demands)]
        event = make_event(flows)
        plan = planner.plan_event(network, event, random.Random(seed))
        migrated_total = sum(m.flow.demand for m in plan.migrations)
        assert plan.cost == pytest.approx(migrated_total)

    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_probe_never_mutates(self, bg, demands, seed):
        network = loaded_network(*bg)
        snapshot = {link: network.used(*link) for link in network.links()}
        flow_count = network.flow_count()
        planner = EventPlanner(PROVIDER)
        flows = [Flow(flow_id=f"u{i}", src="a", dst="b", demand=d,
                      duration=1.0) for i, d in enumerate(demands)]
        planner.plan_event(network, make_event(flows), random.Random(seed))
        assert network.flow_count() == flow_count
        for link, used in snapshot.items():
            assert network.used(*link) == pytest.approx(used)

    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_migrated_flows_stay_placed(self, bg, demands, seed):
        """Migration moves flows, it never drops them (paper rejects the
        priority/removal policy of RSVP-TE)."""
        network = loaded_network(*bg)
        before = set(network.flow_ids())
        planner = EventPlanner(PROVIDER)
        flows = [Flow(flow_id=f"u{i}", src="a", dst="b", demand=d,
                      duration=1.0) for i, d in enumerate(demands)]
        plan = planner.plan_event(network, make_event(flows),
                                  random.Random(seed), commit=True)
        after = set(network.flow_ids())
        assert before <= after
        if plan.feasible:
            assert after - before == {f.flow_id for f in flows}
