"""Property-based tests for rule-table accounting under random operations."""

import sys
from pathlib import Path

import networkx as nx
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.exceptions import InsufficientBandwidthError
from repro.core.flow import Flow
from repro.network.routing.provider import PathProvider
from repro.network.topology.custom import CustomTopology


def limited_diamond() -> CustomTopology:
    g = nx.Graph()
    for h in ("a", "b", "c", "d"):
        g.add_node(h, kind="host")
    g.add_node("s1", kind="switch", rule_capacity=12)
    g.add_node("s2", kind="switch", rule_capacity=12)
    g.add_node("top", kind="switch", rule_capacity=5)
    g.add_node("bot", kind="switch", rule_capacity=5)
    for u, v in (("a", "s1"), ("c", "s1"), ("s1", "top"), ("s1", "bot"),
                 ("top", "s2"), ("bot", "s2"), ("s2", "b"), ("s2", "d")):
        g.add_edge(u, v, capacity=1000.0)
    return CustomTopology(g, name="limited", max_paths=4)


TOPO = limited_diamond()
PROVIDER = PathProvider(TOPO)
PAIRS = [("a", "b"), ("c", "d")]
SWITCHES = ("s1", "s2", "top", "bot")


class RuleAccountingMachine(RuleBasedStateMachine):
    """Random place/remove/reroute sequences never bust any rule budget,
    and rule counts always equal the number of on-path flows."""

    def __init__(self):
        super().__init__()
        self.network = TOPO.network()
        self.counter = 0
        self.placed: dict[str, tuple[str, str]] = {}

    @rule(pair=st.sampled_from(PAIRS),
          demand=st.floats(min_value=1.0, max_value=20.0),
          path_index=st.integers(min_value=0, max_value=3))
    def place(self, pair, demand, path_index):
        src, dst = pair
        paths = PROVIDER.paths(src, dst)
        path = paths[path_index % len(paths)]
        fid = f"rf{self.counter}"
        self.counter += 1
        flow = Flow(flow_id=fid, src=src, dst=dst, demand=demand)
        try:
            self.network.place(flow, path)
        except InsufficientBandwidthError:
            return  # bandwidth or rule shortage; either is a valid refusal
        self.placed[fid] = pair

    @rule(index=st.integers(min_value=0, max_value=100))
    def remove(self, index):
        if not self.placed:
            return
        fid = sorted(self.placed)[index % len(self.placed)]
        self.network.remove(fid)
        del self.placed[fid]

    @rule(index=st.integers(min_value=0, max_value=100),
          path_index=st.integers(min_value=0, max_value=3))
    def reroute(self, index, path_index):
        if not self.placed:
            return
        fid = sorted(self.placed)[index % len(self.placed)]
        src, dst = self.placed[fid]
        paths = PROVIDER.paths(src, dst)
        try:
            self.network.reroute(fid, paths[path_index % len(paths)])
        except InsufficientBandwidthError:
            pass

    @invariant()
    def budgets_respected(self):
        for switch in SWITCHES:
            limit = self.network.rule_capacity(switch)
            assert self.network.rules_used(switch) <= limit

    @invariant()
    def rules_match_flow_table(self):
        self.network.check_invariants()

    @invariant()
    def middle_switch_occupancy_bounded(self):
        # at most 5 flows may ever cross each middle switch
        for middle in ("top", "bot"):
            crossing = len(self.network.flows_on_link("s1", middle)) + \
                len(self.network.flows_on_link(middle, "s1"))
            assert crossing <= 5


TestRuleAccountingMachine = RuleAccountingMachine.TestCase
