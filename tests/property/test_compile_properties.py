"""Property-based tests for the plan compiler (:mod:`repro.core.compile`).

Core contracts: (1) stage-by-stage execution of a compiled plan lands on
the *same final state* as the atomic one-shot application, (2) no stage's
transient load — recomputed here independently of the compiler's own
bookkeeping — exceeds ``(1 + ε) · capacity`` when compiling against the
state the plan was computed on, and (3) the default ``atomic`` mode
compiles to exactly one stage carrying the plan's steps verbatim.
"""

import random
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import (  # noqa: E402
    BG_BOT,
    BG_TOP,
    EF_BOT,
    EF_TOP,
    cd_flow,
    diamond_topology,
    ef_flow,
)

from repro.core.compile import PlanCompilerConfig, compile_plan
from repro.core.event import make_event
from repro.core.executor import apply_plan, apply_stages
from repro.core.flow import Flow
from repro.core.ordering import StepKind, plan_steps
from repro.core.planner import EventPlanner
from repro.network.link import path_links
from repro.network.routing.provider import PathProvider

TOPO = diamond_topology()
PROVIDER = PathProvider(TOPO)


def loaded_network(bg_top: float, bg_bot: float, ef_top: float,
                   ef_bot: float):
    network = TOPO.network()
    if bg_top > 0:
        network.place(cd_flow("bgt", bg_top), BG_TOP)
    if bg_bot > 0:
        network.place(cd_flow("bgb", bg_bot), BG_BOT)
    if ef_top > 0:
        network.place(ef_flow("eft", ef_top), EF_TOP)
    if ef_bot > 0:
        network.place(ef_flow("efb", ef_bot), EF_BOT)
    return network


def planned(bg, demands, seed):
    """A feasible plan against a loaded diamond, or ``(None, None)``."""
    network = loaded_network(*bg)
    planner = EventPlanner(PROVIDER)
    flows = [Flow(flow_id=f"u{i}", src="a", dst="b", demand=d,
                  duration=1.0) for i, d in enumerate(demands)]
    plan = planner.plan_event(network, make_event(flows),
                              random.Random(seed))
    return (network, plan) if plan.feasible else (None, None)


def step_additions(step):
    """A step's in-flight per-link load, derived from first principles:
    a migrated flow holds both paths until the stage settles, a placed
    flow sends on its whole path immediately."""
    added = {}
    if step.kind is StepKind.MIGRATE:
        old = frozenset(path_links(step.payload.old_path))
        links = [link for link in path_links(step.path) if link not in old]
    else:
        links = list(path_links(step.path))
    for link in links:
        added[link] = added.get(link, 0.0) + step.demand
    return added


def step_settled_shift(step):
    """A step's steady-state per-link load shift once its stage commits."""
    shift = {}
    if step.kind is StepKind.MIGRATE:
        old = frozenset(path_links(step.payload.old_path))
        new = frozenset(path_links(step.payload.new_path))
        for link in new - old:
            shift[link] = shift.get(link, 0.0) + step.demand
        for link in old - new:
            shift[link] = shift.get(link, 0.0) - step.demand
    else:
        for link in path_links(step.path):
            shift[link] = shift.get(link, 0.0) + step.demand
    return shift


background = st.tuples(
    st.floats(min_value=0.0, max_value=49.0),
    st.floats(min_value=0.0, max_value=49.0),
    st.floats(min_value=0.0, max_value=49.0),
    st.floats(min_value=0.0, max_value=49.0),
)

event_demands = st.lists(st.floats(min_value=1.0, max_value=45.0),
                         min_size=1, max_size=4)

compile_configs = st.one_of(
    st.just(PlanCompilerConfig(mode="staged")),
    st.floats(min_value=0.0, max_value=0.5).map(
        lambda eps: PlanCompilerConfig(mode="augmented", epsilon=eps)),
)


class TestCompileProperties:
    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10),
           config=compile_configs)
    @settings(max_examples=80, deadline=None)
    def test_staged_execution_matches_atomic(self, bg, demands, seed,
                                             config):
        """Stage-by-stage application reaches the atomic final state."""
        atomic_net, plan = planned(bg, demands, seed)
        if plan is None:
            return
        staged_net = loaded_network(*bg)  # identical twin state
        compiled = compile_plan(staged_net, plan, config)
        rerouted_atomic = apply_plan(atomic_net, plan)
        rerouted_staged = apply_stages(staged_net, compiled)
        assert sorted(rerouted_staged) == sorted(rerouted_atomic)
        assert set(staged_net.flow_ids()) == set(atomic_net.flow_ids())
        for flow_id in atomic_net.flow_ids():
            assert staged_net.placement(flow_id).path \
                == atomic_net.placement(flow_id).path
        for link in atomic_net.links():
            assert staged_net.used(*link) \
                == pytest.approx(atomic_net.used(*link))
        staged_net.check_invariants()
        # The compiled steps are a permutation of the plan's own steps.
        assert sorted((s.kind.value, s.flow_id) for s in compiled.steps) \
            == sorted((s.kind.value, s.flow_id) for s in plan_steps(plan))

    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10),
           config=compile_configs)
    @settings(max_examples=80, deadline=None)
    def test_no_stage_exceeds_augmented_capacity(self, bg, demands, seed,
                                                 config):
        """Every stage's transient load, recomputed independently, stays
        within ``(1 + ε) · capacity`` (ε = 0 under strict staging)."""
        network, plan = planned(bg, demands, seed)
        if plan is None:
            return
        compiled = compile_plan(network, plan, config)
        settled = {link: network.used(*link) for link in network.links()}
        for stage in compiled.stages:
            transient = dict(settled)
            for step in stage.steps:
                for link, add in step_additions(step).items():
                    transient[link] = transient.get(link, 0.0) + add
            for link, load in transient.items():
                cap = network.capacity(*link)
                assert load <= (1.0 + config.epsilon) * cap + 1e-6
            assert stage.transient_overload <= config.epsilon + 1e-9
            for step in stage.steps:
                for link, shift in step_settled_shift(step).items():
                    settled[link] = settled.get(link, 0.0) + shift
        # The settled walk must land on the plan's own final loads.
        apply_plan(network, plan)
        for link in network.links():
            assert settled.get(link, 0.0) \
                == pytest.approx(network.used(*link))

    @given(bg=background, demands=event_demands,
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_atomic_is_exactly_one_stage(self, bg, demands, seed):
        network, plan = planned(bg, demands, seed)
        if plan is None:
            return
        for config in (None, PlanCompilerConfig()):
            compiled = compile_plan(network, plan, config)
            assert compiled.mode == "atomic"
            assert compiled.stage_count == 1
            assert [(s.kind.value, s.flow_id) for s in compiled.steps] \
                == [(s.kind.value, s.flow_id) for s in plan_steps(plan)]
