"""Property-based tests for the scheduling policies and the simulator.

Scheduler safety properties that must hold for *any* queue contents:

* a P-LMTF round's admissions always replay cleanly in order against the
  live network (no intra-batch bandwidth conflicts);
* LMTF admits exactly the cheapest feasible candidate;
* schedulers never mutate the network while deciding;
* a full simulation conserves events — every submitted event completes
  exactly once, and the network ends with exactly its background flows.
"""

import random
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import BG_BOT, BG_TOP, cd_flow, diamond_topology  # noqa: E402

from repro.core.event import make_event
from repro.core.executor import apply_plan
from repro.core.flow import Flow, next_flow_id
from repro.core.planner import EventPlanner
from repro.network.routing.provider import PathProvider
from repro.sched.base import QueuedEvent, SchedulingContext
from repro.sched.fifo import FIFOScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sched.plmtf import ADMIT_MODES, PLMTFScheduler
from repro.sim.simulator import SimulationConfig, UpdateSimulator

TOPO = diamond_topology()
PROVIDER = PathProvider(TOPO)

# (src, dst) pools for event flows — distinct host pairs spread the load
PAIRS = [("a", "b"), ("c", "d"), ("e", "f")]


def build_events(spec: list[list[tuple[int, float, float]]]):
    """spec: per event, a list of (pair_index, demand, duration)."""
    events = []
    for flows_spec in spec:
        flows = []
        for pair_index, demand, duration in flows_spec:
            src, dst = PAIRS[pair_index % len(PAIRS)]
            flows.append(Flow(flow_id=next_flow_id(), src=src, dst=dst,
                              demand=demand, duration=duration))
        events.append(make_event(flows))
    return events


# Demands are bounded so any single event stays placeable: at most three
# flows per event per host pair, 25 Mbit/s each (75 total), plus the 20
# Mbit/s background still fits a 100 Mbit/s uplink. Cross-event pressure is
# fine — events run in separate rounds.
event_spec = st.lists(
    st.lists(st.tuples(st.integers(0, 2),
                       st.floats(min_value=1.0, max_value=25.0),
                       st.floats(min_value=0.1, max_value=5.0)),
             min_size=1, max_size=3),
    min_size=1, max_size=6)


def make_context(events, bg_top=0.0, bg_bot=0.0, seed=7):
    network = TOPO.network()
    if bg_top > 0:
        network.place(cd_flow("bgt", bg_top), BG_TOP)
    if bg_bot > 0:
        network.place(cd_flow("bgb", bg_bot), BG_BOT)
    queue = [QueuedEvent(event, seq=i) for i, event in enumerate(events)]
    ctx = SchedulingContext(now=0.0, queue=queue,
                            planner=EventPlanner(PROVIDER),
                            network=network, rng=random.Random(seed))
    return network, ctx


class TestSchedulerProperties:
    @given(spec=event_spec,
           bg=st.tuples(st.floats(min_value=0, max_value=45),
                        st.floats(min_value=0, max_value=45)),
           admit=st.sampled_from(ADMIT_MODES),
           alpha=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_plmtf_batch_replays_cleanly(self, spec, bg, admit, alpha):
        events = build_events(spec)
        network, ctx = make_context(events, *bg)
        decision = PLMTFScheduler(alpha=alpha, seed=3,
                                  admit=admit).select(ctx)
        for admission in decision.admissions:
            apply_plan(network, admission.plan)  # must never raise
        network.check_invariants()

    @given(spec=event_spec,
           bg=st.tuples(st.floats(min_value=0, max_value=45),
                        st.floats(min_value=0, max_value=45)))
    @settings(max_examples=40, deadline=None)
    def test_lmtf_admits_cheapest_probe(self, spec, bg):
        events = build_events(spec)
        network, ctx = make_context(events, *bg)
        scheduler = LMTFScheduler(alpha=4, seed=3)
        candidates = scheduler.sample_candidates(ctx.queue)
        decision = LMTFScheduler(alpha=4, seed=3).select(ctx)
        if decision.empty:
            return
        chosen = decision.admissions[0]
        # replaying the probes: no candidate may be strictly cheaper
        planner = EventPlanner(PROVIDER)
        chosen_cost = chosen.plan.cost
        for queued in candidates:
            probe = planner.plan_event(
                network, queued.subevent(queued.remaining),
                random.Random(99))
            if probe.feasible:
                assert probe.cost >= chosen_cost - 1e-6 or \
                    queued.seq == chosen.queued.seq

    @given(spec=event_spec)
    @settings(max_examples=40, deadline=None)
    def test_select_never_mutates_network(self, spec):
        events = build_events(spec)
        for scheduler in (FIFOScheduler(), LMTFScheduler(alpha=2, seed=3),
                          PLMTFScheduler(alpha=2, seed=3)):
            network, ctx = make_context(events, 30.0, 30.0)
            snapshot = {link: network.used(*link)
                        for link in network.links()}
            scheduler.select(ctx)
            for link, used in snapshot.items():
                assert network.used(*link) == pytest.approx(used)
            assert not any(network.has_flow(f.flow_id)
                           for e in events for f in e.flows)


class TestSimulationConservation:
    @given(spec=event_spec, scheduler_index=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_every_event_completes_exactly_once(self, spec,
                                                scheduler_index):
        events = build_events(spec)
        scheduler = [FIFOScheduler(), LMTFScheduler(alpha=2, seed=3),
                     PLMTFScheduler(alpha=2, seed=3)][scheduler_index]
        network = TOPO.network()
        network.place(cd_flow("bg", 20.0), BG_TOP)
        simulator = UpdateSimulator(
            network, PROVIDER, scheduler,
            config=SimulationConfig(seed=5, verify_invariants=True))
        simulator.submit(events)
        metrics = simulator.run()
        assert metrics.event_count == len(events)
        assert len(metrics.per_event_ect) == len(events)
        assert all(ect >= 0 for ect in metrics.per_event_ect)
        assert all(delay >= 0 for delay in metrics.per_event_delay)
        # only the background flow remains placed
        assert set(network.flow_ids()) == {"bg"}
        network.check_invariants()
