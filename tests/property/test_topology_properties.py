"""Property-based tests for topology path enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import path_links
from repro.network.topology.fattree import FatTreeTopology
from repro.network.topology.leafspine import LeafSpineTopology

FATTREES = {k: FatTreeTopology(k=k) for k in (2, 4, 8)}


def host_index_strategy(k):
    half = k // 2
    return st.tuples(st.integers(0, k - 1), st.integers(0, half - 1),
                     st.integers(0, half - 1))


@st.composite
def fat_tree_pair(draw):
    k = draw(st.sampled_from([2, 4, 8]))
    a = draw(host_index_strategy(k))
    b = draw(host_index_strategy(k))
    if a == b:
        b = ((a[0] + 1) % k, a[1], a[2])
    topo = FATTREES[k]
    return topo, topo.host_name(*a), topo.host_name(*b)


class TestFatTreePathProperties:
    @given(pair=fat_tree_pair())
    @settings(max_examples=150, deadline=None)
    def test_paths_valid_and_counted(self, pair):
        topo, src, dst = pair
        half = topo.k // 2
        graph = topo.graph()
        paths = topo.equal_cost_paths(src, dst)

        sp, se, __ = topo.locate_host(src)
        dp, de, __ = topo.locate_host(dst)
        if sp == dp and se == de:
            expected = 1
        elif sp == dp:
            expected = half
        else:
            expected = half * half
        assert len(paths) == expected
        assert len(set(paths)) == expected  # all distinct

        for path in paths:
            assert path[0] == src and path[-1] == dst
            assert len(set(path)) == len(path)  # simple
            for u, v in path_links(path):
                assert graph.has_edge(u, v)

    @given(pair=fat_tree_pair())
    @settings(max_examples=50, deadline=None)
    def test_paths_symmetric_in_length(self, pair):
        topo, src, dst = pair
        forward = topo.equal_cost_paths(src, dst)
        backward = topo.equal_cost_paths(dst, src)
        assert sorted(len(p) for p in forward) == \
            sorted(len(p) for p in backward)


class TestLeafSpinePathProperties:
    TOPO = LeafSpineTopology(leaves=6, spines=4, hosts_per_leaf=3)

    @given(a=st.tuples(st.integers(0, 5), st.integers(0, 2)),
           b=st.tuples(st.integers(0, 5), st.integers(0, 2)))
    @settings(max_examples=100, deadline=None)
    def test_paths_valid(self, a, b):
        if a == b:
            b = ((a[0] + 1) % 6, a[1])
        src = self.TOPO.host_name(*a)
        dst = self.TOPO.host_name(*b)
        paths = self.TOPO.equal_cost_paths(src, dst)
        expected = 1 if a[0] == b[0] else 4
        assert len(paths) == expected
        graph = self.TOPO.graph()
        for path in paths:
            for u, v in path_links(path):
                assert graph.has_edge(u, v)
