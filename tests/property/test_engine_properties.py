"""Property-based tests for the DES engine and metric aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, percentile


class TestEngineProperties:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False),
                          min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, times):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda t=t: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(times=st.lists(st.floats(min_value=0.0, max_value=100.0),
                          min_size=2, max_size=30),
           cancel_index=st.integers(min_value=0, max_value=29))
    @settings(max_examples=50, deadline=None)
    def test_cancellation_removes_exactly_one(self, times, cancel_index):
        engine = SimulationEngine()
        fired = []
        handles = [engine.schedule_at(t, lambda i=i: fired.append(i))
                   for i, t in enumerate(times)]
        victim = cancel_index % len(handles)
        handles[victim].cancel()
        engine.run()
        assert len(fired) == len(times) - 1
        assert victim not in fired


class TestPercentileProperties:
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=100),
           q=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_percentile_is_an_element_within_bounds(self, values, q):
        result = percentile(values, q)
        assert result in values
        assert min(values) <= result <= max(values)

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_percentile_monotone_in_q(self, values):
        qs = [10, 50, 90, 100]
        results = [percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestCollectorProperties:
    @given(ects=st.lists(st.floats(min_value=0.1, max_value=1e4),
                         min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_aggregates_bound_each_other(self, ects):
        collector = MetricsCollector("prop")
        for index, ect in enumerate(ects):
            eid = f"E{index}"
            collector.on_enqueue(eid, 0.0, flow_count=1)
            collector.on_exec_start(eid, 0.0)
            collector.on_completion(eid, ect)
        metrics = collector.finalize()
        assert metrics.average_ect <= metrics.tail_ect + 1e-9
        assert metrics.p95_ect <= metrics.p99_ect + 1e-9
        assert metrics.p99_ect <= metrics.tail_ect + 1e-9
        assert metrics.average_ect == pytest.approx(sum(ects) / len(ects))
        assert metrics.makespan == pytest.approx(max(ects))
