"""Differential properties: the integer-indexed link-state kernel is
observationally identical to the seed-era dict-keyed semantics.

``RefNetwork``/``RefView`` below are faithful transcriptions of the
string-keyed implementations the kernel replaced: per-link dicts on the
network, copy-on-write overlay dicts plus an operation log on the view.
The state machine drives one random operation sequence through both
implementations — interned :class:`CandidatePath` objects on the kernel
side, plain node tuples on the reference side — and asserts that every
observable agrees exactly: residuals (bit-equal floats, same arithmetic
order), per-link usage, flow sets, version counters, placements, and the
exception type of every rejected operation, across nested views with
commits and discards interleaved.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import diamond_topology  # noqa: E402

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    RuleSpaceError,
    TopologyError,
    UnknownFlowError,
)
from repro.core.flow import Flow, Placement
from repro.network.link import EPS, format_link, is_simple_path
from repro.network.routing.provider import PathProvider
from repro.network.state import NetworkState
from repro.network.view import NetworkView

TOPO = diamond_topology()
PROVIDER = PathProvider(TOPO)
HOST_PAIRS = [("a", "b"), ("c", "d"), ("e", "f"), ("a", "d"), ("c", "b")]

#: Every operation either succeeds on both implementations or raises the
#: same exception type on both.
OP_ERRORS = (DuplicateFlowError, InsufficientBandwidthError,
             InvalidPathError, RuleSpaceError, TopologyError,
             UnknownFlowError)

#: Demands are dyadic rationals (multiples of 0.25) so every residual and
#: usage value is exactly representable and summation order cannot matter:
#: any divergence the machine reports is a real semantic difference, not
#: float dust from a reordered accumulation.
DEMANDS = st.integers(min_value=2, max_value=240).map(lambda n: n * 0.25)


class RefNetwork(NetworkState):
    """The seed-era dict-keyed live network (reference semantics)."""

    def __init__(self, graph, default_capacity: float = 1000.0):
        self._graph = graph
        self._capacity: dict = {}
        self._used: dict = {}
        self._link_flows: dict = {}
        self._link_version: dict = {}
        for u, v in graph.edges():
            self._capacity[(u, v)] = float(
                graph.edges[u, v].get("capacity", default_capacity))
            self._used[(u, v)] = 0.0
            self._link_flows[(u, v)] = set()
            self._link_version[(u, v)] = 0
        self._placements: dict[str, Placement] = {}
        self._rule_capacity: dict[str, int] = {
            n: int(c) for n, c in graph.nodes(data="rule_capacity")
            if c is not None}
        self._rules_used = {n: 0 for n in self._rule_capacity}
        self._node_version = {n: 0 for n in self._rule_capacity}

    def links(self):
        return self._capacity.keys()

    def capacity(self, u, v):
        try:
            return self._capacity[(u, v)]
        except KeyError:
            raise TopologyError(f"no link {format_link((u, v))}") from None

    def used(self, u, v):
        try:
            return self._used[(u, v)]
        except KeyError:
            raise TopologyError(f"no link {format_link((u, v))}") from None

    def flows_on_link(self, u, v):
        try:
            return frozenset(self._link_flows[(u, v)])
        except KeyError:
            raise TopologyError(f"no link {format_link((u, v))}") from None

    def has_flow(self, flow_id):
        return flow_id in self._placements

    def placement(self, flow_id):
        try:
            return self._placements[flow_id]
        except KeyError:
            raise UnknownFlowError(f"flow {flow_id!r} is not placed") from None

    def flow_ids(self):
        return iter(list(self._placements))

    @property
    def supports_versions(self):
        return True

    def link_version(self, u, v):
        return self._link_version[(u, v)]

    def node_version(self, node):
        return self._node_version.get(node, 0)

    def rule_capacity(self, node):
        return self._rule_capacity.get(node)

    def rules_used(self, node):
        return self._rules_used.get(node, 0)

    @property
    def tracks_rules(self):
        return bool(self._rule_capacity)

    def place(self, flow, path):
        if flow.flow_id in self._placements:
            raise DuplicateFlowError(f"flow {flow.flow_id!r} already placed")
        placement = Placement(flow=flow, path=tuple(path))
        if not is_simple_path(placement.path):
            raise InvalidPathError(f"path {path!r} is not a simple path")
        for link in placement.links:
            if link not in self._capacity:
                raise InvalidPathError(
                    f"path uses nonexistent link {format_link(link)}")
        for u, v in placement.links:
            free = self._capacity[(u, v)] - self._used[(u, v)]
            if free + EPS < flow.demand:
                raise InsufficientBandwidthError(
                    "ref", bottleneck=(u, v), deficit=flow.demand - free)
        if self._rule_capacity:
            for node in placement.path:
                limit = self._rule_capacity.get(node)
                if limit is not None and self._rules_used[node] >= limit:
                    raise RuleSpaceError("ref", switch=node)
        for link in placement.links:
            self._used[link] += flow.demand
            self._link_flows[link].add(flow.flow_id)
            self._link_version[link] += 1
        if self._rule_capacity:
            for node in placement.path:
                if node in self._rules_used:
                    self._rules_used[node] += 1
                    self._node_version[node] += 1
        self._placements[flow.flow_id] = placement
        return placement

    def remove(self, flow_id):
        placement = self.placement(flow_id)
        for link in placement.links:
            self._used[link] -= placement.flow.demand
            if self._used[link] < 0:
                self._used[link] = 0.0
            self._link_flows[link].discard(flow_id)
            self._link_version[link] += 1
        if self._rule_capacity:
            for node in placement.path:
                if node in self._rules_used:
                    self._rules_used[node] -= 1
                    self._node_version[node] += 1
        del self._placements[flow_id]
        return placement


class RefView(NetworkState):
    """The seed-era copy-on-write overlay (reference semantics)."""

    def __init__(self, base):
        self._base = base
        self._used_over: dict = {}
        self._flows_over: dict = {}
        self._rules_over: dict = {}
        self._placements_over: dict = {}
        self._ver_over: dict = {}
        self._node_ver_over: dict = {}
        self._log: list[tuple] = []

    def links(self):
        return self._base.links()

    def capacity(self, u, v):
        return self._base.capacity(u, v)

    def used(self, u, v):
        override = self._used_over.get((u, v))
        if override is not None:
            return override
        return self._base.used(u, v)

    def flows_on_link(self, u, v):
        override = self._flows_over.get((u, v))
        if override is not None:
            return frozenset(override)
        return self._base.flows_on_link(u, v)

    def has_flow(self, flow_id):
        if flow_id in self._placements_over:
            return self._placements_over[flow_id] is not None
        return self._base.has_flow(flow_id)

    def placement(self, flow_id):
        if flow_id in self._placements_over:
            placement = self._placements_over[flow_id]
            if placement is None:
                raise UnknownFlowError(f"flow {flow_id!r} removed in view")
            return placement
        return self._base.placement(flow_id)

    def flow_ids(self):
        for fid in self._base.flow_ids():
            if self._placements_over.get(fid, ...) is not None:
                yield fid
        for fid, placement in self._placements_over.items():
            if placement is not None and not self._base.has_flow(fid):
                yield fid

    @property
    def supports_versions(self):
        return self._base.supports_versions

    def link_version(self, u, v):
        return self._base.link_version(u, v) + self._ver_over.get((u, v), 0)

    def node_version(self, node):
        return (self._base.node_version(node)
                + self._node_ver_over.get(node, 0))

    def rule_capacity(self, node):
        return self._base.rule_capacity(node)

    def rules_used(self, node):
        override = self._rules_over.get(node)
        if override is not None:
            return override
        return self._base.rules_used(node)

    @property
    def tracks_rules(self):
        return self._base.tracks_rules

    def _touch_link(self, link):
        if link not in self._used_over:
            self._used_over[link] = self._base.used(*link)
            self._flows_over[link] = set(self._base.flows_on_link(*link))

    def place(self, flow, path):
        if self.has_flow(flow.flow_id):
            raise DuplicateFlowError(f"flow {flow.flow_id!r} already placed")
        placement = Placement(flow=flow, path=tuple(path))
        if not is_simple_path(placement.path):
            raise InvalidPathError(f"path {path!r} is not a simple path")
        for u, v in placement.links:
            free = self.capacity(u, v) - self.used(u, v)
            if free + EPS < flow.demand:
                raise InsufficientBandwidthError(
                    "ref", bottleneck=(u, v), deficit=flow.demand - free)
        if self.tracks_rules:
            for node in placement.path:
                limit = self.rule_capacity(node)
                if limit is not None and self.rules_used(node) >= limit:
                    raise RuleSpaceError("ref", switch=node)
        for link in placement.links:
            self._touch_link(link)
            self._used_over[link] += flow.demand
            self._flows_over[link].add(flow.flow_id)
            self._ver_over[link] = self._ver_over.get(link, 0) + 1
        if self.tracks_rules:
            for node in placement.path:
                if self.rule_capacity(node) is not None:
                    self._rules_over[node] = self.rules_used(node) + 1
                    self._node_ver_over[node] = \
                        self._node_ver_over.get(node, 0) + 1
        self._placements_over[flow.flow_id] = placement
        self._log.append(("place", flow, placement.path))
        return placement

    def remove(self, flow_id):
        placement = self.placement(flow_id)
        for link in placement.links:
            self._touch_link(link)
            self._used_over[link] = max(
                0.0, self._used_over[link] - placement.flow.demand)
            self._flows_over[link].discard(flow_id)
            self._ver_over[link] = self._ver_over.get(link, 0) + 1
        if self.tracks_rules:
            for node in placement.path:
                if self.rule_capacity(node) is not None:
                    self._rules_over[node] = self.rules_used(node) - 1
                    self._node_ver_over[node] = \
                        self._node_ver_over.get(node, 0) + 1
        self._placements_over[flow_id] = None
        self._log.append(("remove", flow_id))
        return placement

    def commit(self):
        for op in self._log:
            if op[0] == "place":
                __, flow, path = op
                self._base.place(flow, path)
            else:
                __, flow_id = op
                self._base.remove(flow_id)
        self.reset()

    def reset(self):
        self._used_over.clear()
        self._flows_over.clear()
        self._rules_over.clear()
        self._placements_over.clear()
        self._ver_over.clear()
        self._node_ver_over.clear()
        self._log.clear()


class KernelDifferentialMachine(RuleBasedStateMachine):
    """One random op sequence through both implementations, compared."""

    def __init__(self):
        super().__init__()
        self.kernel = TOPO.network()
        self.ref = RefNetwork(TOPO.graph())
        #: Parallel view stacks; ops apply to the innermost scope.
        self.stack: list[tuple] = []
        self.counter = 0
        self.ever_placed: list[str] = []

    # ----------------------------------------------------------- op plumbing

    @property
    def tops(self):
        if self.stack:
            return self.stack[-1]
        return self.kernel, self.ref

    def _both(self, op_name, *args, kernel_path=None, ref_path=None):
        """Apply one op to both implementations; exceptions must match."""
        kernel_top, ref_top = self.tops
        kernel_args = args + ((kernel_path,) if kernel_path else ())
        ref_args = args + ((ref_path,) if ref_path else ())
        try:
            kernel_result = getattr(kernel_top, op_name)(*kernel_args)
            kernel_exc = None
        except OP_ERRORS as exc:
            kernel_result, kernel_exc = None, type(exc)
        try:
            ref_result = getattr(ref_top, op_name)(*ref_args)
            ref_exc = None
        except OP_ERRORS as exc:
            ref_result, ref_exc = None, type(exc)
        assert kernel_exc is ref_exc, (
            f"{op_name}{args}: kernel raised {kernel_exc}, "
            f"reference raised {ref_exc}")
        if kernel_result is not None and isinstance(kernel_result, Placement):
            assert tuple(kernel_result.path) == tuple(ref_result.path)
        return kernel_result

    # ------------------------------------------------------------------ rules

    @rule(pair=st.sampled_from(HOST_PAIRS),
          demand=DEMANDS,
          path_index=st.integers(min_value=0, max_value=3))
    def place(self, pair, demand, path_index):
        src, dst = pair
        candidates = PROVIDER.paths(src, dst)
        path = candidates[path_index % len(candidates)]
        fid = f"d{self.counter}"
        self.counter += 1
        flow = Flow(flow_id=fid, src=src, dst=dst, demand=demand)
        placed = self._both("place", flow,
                            kernel_path=path, ref_path=tuple(path))
        if placed is not None:
            self.ever_placed.append(fid)

    @rule(demand=DEMANDS)
    def place_bad_path(self, demand):
        """Nonexistent links and non-simple paths reject identically."""
        fid = f"bad{self.counter}"
        self.counter += 1
        flow = Flow(flow_id=fid, src="a", dst="b", demand=demand)
        bad = ("a", "s2", "b")  # a-s2 is not an edge of the diamond
        self._both("place", flow, kernel_path=bad, ref_path=bad)

    @rule(index=st.integers(min_value=0, max_value=300))
    def remove(self, index):
        if not self.ever_placed:
            return
        fid = self.ever_placed[index % len(self.ever_placed)]
        self._both("remove", fid)

    @rule(index=st.integers(min_value=0, max_value=300),
          path_index=st.integers(min_value=0, max_value=3))
    def reroute(self, index, path_index):
        if not self.ever_placed:
            return
        fid = self.ever_placed[index % len(self.ever_placed)]
        kernel_top, ref_top = self.tops
        if not kernel_top.has_flow(fid):
            return
        flow = kernel_top.placement(fid).flow
        candidates = PROVIDER.paths(flow.src, flow.dst)
        path = candidates[path_index % len(candidates)]
        self._both("reroute", fid, kernel_path=path, ref_path=tuple(path))

    @rule()
    def push_view(self):
        if len(self.stack) >= 3:
            return
        kernel_top, ref_top = self.tops
        self.stack.append((NetworkView(kernel_top), RefView(ref_top)))

    @rule()
    def commit_top(self):
        if not self.stack:
            return
        kernel_view, ref_view = self.stack.pop()
        kernel_view.commit()
        ref_view.commit()

    @rule()
    def discard_top(self):
        if not self.stack:
            return
        self.stack.pop()

    # -------------------------------------------------------------- oracles

    @invariant()
    def links_agree(self):
        kernel_top, ref_top = self.tops
        for u, v in self.ref.links():
            assert kernel_top.used(u, v) == ref_top.used(u, v)
            assert kernel_top.capacity(u, v) == ref_top.capacity(u, v)
            assert kernel_top.flows_on_link(u, v) == \
                ref_top.flows_on_link(u, v)
            assert kernel_top.link_version(u, v) == ref_top.link_version(u, v)

    @invariant()
    def residuals_agree(self):
        kernel_top, ref_top = self.tops
        ignore = frozenset(self.ever_placed[:2])
        for src, dst in HOST_PAIRS:
            for path in PROVIDER.paths(src, dst):
                plain = tuple(path)
                assert kernel_top.path_residual(path) == \
                    ref_top.path_residual(plain)
                assert kernel_top.path_residuals(path) == \
                    ref_top.path_residuals(plain)
                assert kernel_top.path_residual(path, ignore=ignore) == \
                    ref_top.path_residual(plain, ignore=ignore)

    @invariant()
    def placements_agree(self):
        kernel_top, ref_top = self.tops
        for fid in self.ever_placed:
            assert kernel_top.has_flow(fid) == ref_top.has_flow(fid)
            if kernel_top.has_flow(fid):
                assert tuple(kernel_top.placement(fid).path) == \
                    tuple(ref_top.placement(fid).path)
        assert sorted(kernel_top.flow_ids()) == sorted(ref_top.flow_ids())

    def teardown(self):
        while self.stack:
            kernel_view, ref_view = self.stack.pop()
            kernel_view.commit()
            ref_view.commit()
        for u, v in self.ref.links():
            assert self.kernel.used(u, v) == self.ref.used(u, v)
            assert self.kernel.link_version(u, v) == \
                self.ref.link_version(u, v)
        self.kernel.check_invariants()


KernelDifferentialMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestKernelDifferential = KernelDifferentialMachine.TestCase


class TestRuleSpaceDifferential:
    """Rule-table accounting agrees on a rule-capacity-annotated diamond."""

    def _rules_pair(self, top_rules=2):
        topo = diamond_topology()
        graph = topo.graph().copy()
        graph.nodes["top"]["rule_capacity"] = top_rules
        from repro.network.network import Network
        return Network(graph), RefNetwork(graph)

    def test_rule_exhaustion_matches(self):
        kernel, ref = self._rules_pair(top_rules=2)
        top_path = ("a", "s1", "top", "s2", "b")
        for i in range(2):
            flow = Flow(flow_id=f"r{i}", src="a", dst="b", demand=1.0)
            kernel.place(flow, top_path)
            ref.place(flow, top_path)
        overflow = Flow(flow_id="r2", src="a", dst="b", demand=1.0)
        with pytest.raises(RuleSpaceError):
            kernel.place(overflow, top_path)
        with pytest.raises(RuleSpaceError):
            ref.place(overflow, top_path)
        assert kernel.rules_used("top") == ref.rules_used("top") == 2
        assert kernel.node_version("top") == ref.node_version("top")
        kernel.remove("r0")
        ref.remove("r0")
        assert kernel.rules_used("top") == ref.rules_used("top") == 1
        assert kernel.node_version("top") == ref.node_version("top")
