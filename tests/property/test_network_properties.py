"""Property-based tests: the network substrate never violates its
congestion-free invariants under arbitrary operation sequences."""

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import diamond_topology  # noqa: E402

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
)
from repro.core.flow import Flow
from repro.network.network import Network
from repro.network.routing.provider import PathProvider
from repro.network.view import NetworkView

TOPO = diamond_topology()
PROVIDER = PathProvider(TOPO)
HOST_PAIRS = [("a", "b"), ("c", "d"), ("e", "f"), ("a", "d"), ("c", "b")]


def all_paths(src, dst):
    return PROVIDER.paths(src, dst)


class NetworkMachine(RuleBasedStateMachine):
    """Random place/remove/reroute sequences keep the network consistent."""

    def __init__(self):
        super().__init__()
        self.network = TOPO.network()
        self.counter = 0
        self.placed: dict[str, tuple[str, str]] = {}

    @rule(pair=st.sampled_from(HOST_PAIRS),
          demand=st.floats(min_value=0.5, max_value=60.0),
          path_index=st.integers(min_value=0, max_value=3))
    def place(self, pair, demand, path_index):
        src, dst = pair
        paths = all_paths(src, dst)
        path = paths[path_index % len(paths)]
        fid = f"pf{self.counter}"
        self.counter += 1
        flow = Flow(flow_id=fid, src=src, dst=dst, demand=demand)
        try:
            self.network.place(flow, path)
        except InsufficientBandwidthError:
            return
        self.placed[fid] = pair

    @rule(index=st.integers(min_value=0, max_value=200))
    def remove(self, index):
        if not self.placed:
            return
        fid = sorted(self.placed)[index % len(self.placed)]
        self.network.remove(fid)
        del self.placed[fid]

    @rule(index=st.integers(min_value=0, max_value=200),
          path_index=st.integers(min_value=0, max_value=3))
    def reroute(self, index, path_index):
        if not self.placed:
            return
        fid = sorted(self.placed)[index % len(self.placed)]
        src, dst = self.placed[fid]
        paths = all_paths(src, dst)
        try:
            self.network.reroute(fid, paths[path_index % len(paths)])
        except InsufficientBandwidthError:
            pass  # flow must stay on its old path; invariant checks below

    @invariant()
    def bookkeeping_consistent(self):
        self.network.check_invariants()

    @invariant()
    def no_link_oversubscribed(self):
        for u, v in self.network.links():
            assert self.network.used(u, v) <= \
                self.network.capacity(u, v) + 1e-6


TestNetworkMachine = NetworkMachine.TestCase


class ViewMachine(RuleBasedStateMachine):
    """A view's committed state always equals direct application."""

    def __init__(self):
        super().__init__()
        self.base = TOPO.network()
        self.mirror = TOPO.network()
        self.view = NetworkView(self.base)
        self.counter = 0
        self.live: dict[str, tuple[str, str]] = {}

    @rule(pair=st.sampled_from(HOST_PAIRS),
          demand=st.floats(min_value=0.5, max_value=50.0),
          path_index=st.integers(min_value=0, max_value=3))
    def place(self, pair, demand, path_index):
        src, dst = pair
        paths = all_paths(src, dst)
        path = paths[path_index % len(paths)]
        fid = f"vf{self.counter}"
        self.counter += 1
        flow = Flow(flow_id=fid, src=src, dst=dst, demand=demand)
        try:
            self.view.place(flow, path)
        except InsufficientBandwidthError:
            with pytest.raises(InsufficientBandwidthError):
                self.mirror.place(flow, path)
            return
        self.mirror.place(flow, path)
        self.live[fid] = pair

    @rule(index=st.integers(min_value=0, max_value=100))
    def remove(self, index):
        if not self.live:
            return
        fid = sorted(self.live)[index % len(self.live)]
        self.view.remove(fid)
        self.mirror.remove(fid)
        del self.live[fid]

    @invariant()
    def view_matches_mirror(self):
        for link in self.mirror.links():
            assert abs(self.view.used(*link)
                       - self.mirror.used(*link)) < 1e-6

    def teardown(self):
        self.view.commit()
        for link in self.mirror.links():
            assert abs(self.base.used(*link)
                       - self.mirror.used(*link)) < 1e-6
        self.base.check_invariants()


TestViewMachine = ViewMachine.TestCase


class TestPathResidualProperties:
    @given(demands=st.lists(st.floats(min_value=1.0, max_value=30.0),
                            min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_residual_decreases_by_exact_demand(self, demands):
        network = TOPO.network()
        path = all_paths("a", "b")[0]
        before = network.path_residual(path)
        placed = 0.0
        for index, demand in enumerate(demands):
            flow = Flow(flow_id=f"r{index}", src="a", dst="b",
                        demand=demand)
            try:
                network.place(flow, path)
            except InsufficientBandwidthError:
                break
            placed += demand
        assert network.path_residual(path) == \
            pytest.approx(before - placed, abs=1e-6)

    @given(demand=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_feasibility_matches_residual(self, demand):
        network = TOPO.network()
        path = all_paths("a", "b")[0]
        blocker = Flow(flow_id="blk", src="a", dst="b", demand=40.0)
        network.place(blocker, path)
        feasible = network.path_feasible(path, demand)
        assert feasible == (demand <= network.path_residual(path) + 1e-6)
