"""Shared fixtures for the test suite.

Most tests run on a k=4 Fat-Tree (16 hosts, 20 switches) — big enough to
exercise multi-path routing and migration, small enough to keep the suite
fast. Fixtures that load background traffic cache the loaded network at
session scope and hand tests cheap copies.
"""

from __future__ import annotations

import random

import pytest

from repro.core.flow import Flow, FlowKind, next_flow_id
from repro.core.planner import EventPlanner
from repro.network.routing.provider import PathProvider
from repro.network.topology.fattree import FatTreeTopology
from repro.traces.background import BackgroundLoader
from repro.traces.yahoo import YahooLikeTrace


@pytest.fixture(scope="session")
def fattree4() -> FatTreeTopology:
    return FatTreeTopology(k=4)


@pytest.fixture(scope="session")
def provider4(fattree4) -> PathProvider:
    return PathProvider(fattree4)


@pytest.fixture()
def network4(fattree4):
    """A fresh, empty k=4 fat-tree network."""
    return fattree4.network()


@pytest.fixture(scope="session")
def _loaded_base(fattree4, provider4):
    """Session-cached k=4 network loaded to ~60% utilization."""
    network = fattree4.network()
    trace = YahooLikeTrace(fattree4.hosts(), seed=42)
    loader = BackgroundLoader(network, provider4, trace, random.Random(7))
    loader.load_to_utilization(0.6)
    return network


@pytest.fixture()
def loaded_network4(_loaded_base):
    """A fresh copy of the 60%-loaded k=4 network."""
    return _loaded_base.copy()


@pytest.fixture()
def planner4(provider4) -> EventPlanner:
    return EventPlanner(provider4)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)


def make_flow(src: str, dst: str, demand: float = 10.0,
              duration: float | None = 1.0, **kwargs) -> Flow:
    """Test helper: a flow with sane defaults and a unique id."""
    return Flow(flow_id=next_flow_id(), src=src, dst=dst, demand=demand,
                duration=duration, **kwargs)


@pytest.fixture()
def flow_factory():
    return make_flow
