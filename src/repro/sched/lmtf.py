"""LMTF — least migration traffic first (paper §IV-B).

LMTF keeps the queue in arrival order but fine-tunes execution each round:
it samples ``α`` random non-head events, computes the update cost of those
and of the head against the *current* network state, and executes the
cheapest of the ``α+1`` candidates. If the head wins, the round is exactly
FIFO; if a sampled event wins, the head was a heavy blocker and the power of
``α`` random choices sidesteps it without the cost (or the unfairness) of
reordering the whole queue.

The paper fixes ``α = 4`` in its evaluation and notes ``α = 2`` already
works well ("the power of two random choices").
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.plan import EventPlan
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)
from repro.sched.cache import ProbeCache


class LMTFScheduler(Scheduler):
    """Fine-tuned FIFO via cost sampling of ``α+1`` candidates.

    Args:
        alpha: number of random non-head candidates per round (> 0).
        seed: seed for the scheduler's private sampling RNG, kept separate
            from the planner RNG so changing α does not reshuffle plans.
        probe_cache: memoize cost probes by link footprint (default on).
            Probes whose plans are provably unchanged — every link/node the
            plan read still reports the same version counter — are served
            from cache instead of replanned. Admissions, costs, and charged
            planning ops are bit-identical with the cache on or off; only
            the scheduler's wall-clock time changes.
    """

    name = "lmtf"

    def __init__(self, alpha: int = 4, seed: int = 0,
                 probe_cache: bool = True):
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        self.alpha = alpha
        self._seed = seed
        self._sample_rng = random.Random(seed)
        self._cache = ProbeCache() if probe_cache else None

    @property
    def cache(self) -> ProbeCache | None:
        """The probe cache, or None when caching is disabled."""
        return self._cache

    def reset(self) -> None:
        self._sample_rng = random.Random(self._seed)
        if self._cache is not None:
            self._cache.clear()

    def export_state(self) -> dict:
        """Checkpoint the sampling RNG; the probe cache restarts cold.

        Cache entries never change decisions (a hit returns the identical
        plan a fresh probe would produce), so dropping them costs only
        warm-up misses — while serializing them would mean encoding plans.
        """
        from repro.core.ioutil import rng_state_payload
        return {"sample_rng": rng_state_payload(self._sample_rng)}

    def restore_state(self, state: dict) -> None:
        from repro.core.ioutil import set_rng_state
        set_rng_state(self._sample_rng, state["sample_rng"])

    # ------------------------------------------------------------------ API

    def select(self, ctx: SchedulingContext) -> RoundDecision:
        if not ctx.queue:
            return RoundDecision()
        candidates = self.probe_targets(ctx)
        plans: list[tuple[QueuedEvent, EventPlan]] = []
        ops = 0
        for queued in candidates:
            plan = self.probe_event(ctx, queued)
            ops += plan.planning_ops
            plans.append((queued, plan))
        return self.decide(ctx, plans, ops)

    def probe_targets(self,
                      ctx: SchedulingContext) -> list[QueuedEvent] | None:
        """The ``α+1`` sampled candidates (consumes this round's sample)."""
        if not ctx.queue:
            return []
        return self.sample_candidates(ctx.queue)

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        """Admit the cheapest feasible probe (the LMTF rule)."""
        best = self.pick_cheapest(probes)
        if best is None:
            return self._finish(RoundDecision(planning_ops=ops))
        queued, plan = best
        return self._finish(RoundDecision(
            admissions=[Admission(queued=queued, plan=plan)],
            planning_ops=ops))

    # -------------------------------------------------------------- internals

    def probe_event(self, ctx: SchedulingContext,
                    queued: QueuedEvent) -> EventPlan:
        """Plan ``queued``'s remaining flows, via the probe cache if on.

        A cache hit returns the memoized plan — including its original
        ``planning_ops``, which a fresh plan would reproduce exactly (that
        is the cache's reuse condition) — so the simulated plan-time charge
        is unchanged. A miss plans freshly and memoizes when the plan is
        footprint-stable (no RNG draws, no unbounded reads).
        """
        if self._cache is None:
            return self.plan_whole_event(ctx, queued)
        key = (queued.event.event_id,
               tuple(f.flow_id for f in queued.remaining))
        plan = self._cache.lookup(key, ctx.network)
        if plan is not None:
            return plan
        if not self._cache.should_record(key):
            # Recent plans for this key were RNG-dependent; skip the
            # footprint-recording overhead until the backoff expires.
            return self.plan_whole_event(ctx, queued)
        plan, footprint = ctx.planner.plan_event_probed(
            ctx.network, queued.subevent(queued.remaining), ctx.rng)
        if footprint is not None:
            self._cache.store(key, ctx.network, plan, footprint)
        else:
            self._cache.note_uncacheable(key)
        return plan

    def _finish(self, decision: RoundDecision) -> RoundDecision:
        """Attach this round's cache counters to the decision."""
        if self._cache is not None:
            stats = self._cache.drain_round()
            decision.cache_hits = stats.hits
            decision.cache_misses = stats.misses
            decision.cache_invalidations = stats.invalidations
        return decision

    def sample_candidates(
            self, queue: Sequence[QueuedEvent]) -> list[QueuedEvent]:
        """Head plus ``min(α, len(queue)-1)`` random non-head events.

        Per the paper, LMTF "does not persist in sampling α update events
        when the queue contains less than α+1" — it simply takes what is
        there. The returned list preserves arrival order.

        Sampling draws *positions* (``random.sample`` over a range) rather
        than materializing ``queue[1:]``: ``sample``'s RNG consumption
        depends only on the population length, so the draws — and the
        selected events — are bit-identical to sampling the slice, without
        the O(queue) copy that dominated deep-queue rounds.
        """
        head = queue[0]
        take = min(self.alpha, len(queue) - 1)
        if take:
            positions = self._sample_rng.sample(range(1, len(queue)), take)
            sampled = [queue[i] for i in positions]
        else:
            sampled = []
        candidates = [head] + sampled
        candidates.sort(key=lambda q: q.seq)
        return candidates

    @staticmethod
    def pick_cheapest(plans: list[tuple[QueuedEvent, EventPlan]]):
        """The feasible candidate with the lowest cost; ties break on
        ``(arrival_time, seq)`` — earliest *arrival* first, preserving
        FIFO fairness whenever costs agree.

        ``seq`` alone is not arrival order once events re-enter the queue:
        a deferred/repair requeue gets a fresh (high) seq while keeping its
        original arrival time, so a seq-only tie-break would rank it behind
        younger events despite its seniority. Making the time component
        explicit keeps the rule identical for exact and learned schedulers
        — equal-cost ties can never make an exact-vs-learned comparison
        diverge on ordering policy.
        """
        best = None
        best_key = None
        for queued, plan in plans:
            if not plan.feasible:
                continue
            key = (plan.cost, queued.arrival_time, queued.seq)
            if best_key is None or key < best_key:
                best, best_key = (queued, plan), key
        return best
