"""The "intrinsic" full-reorder scheduler (paper §III-C / §IV-B).

Every round it recomputes the update cost of *every* queued event against the
current network state and executes the globally cheapest one. The paper uses
this policy as a motivating straw-man: it fixes head-of-line blocking but
"causes non-trivial computation and time overhead ... and destroys fairness".
We implement it so the overhead and fairness loss can be measured
head-to-head against LMTF (DESIGN.md §7 ablations).
"""

from __future__ import annotations

from repro.core.plan import EventPlan
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)
from repro.sched.lmtf import LMTFScheduler


class CostReorderScheduler(Scheduler):
    """Execute the cheapest event in the whole queue each round."""

    name = "reorder"

    def select(self, ctx: SchedulingContext) -> RoundDecision:
        if not ctx.queue:
            return RoundDecision()
        plans: list[tuple[QueuedEvent, EventPlan]] = []
        ops = 0
        for queued in ctx.queue:
            plan = self.plan_whole_event(ctx, queued)
            ops += plan.planning_ops
            plans.append((queued, plan))
        best = LMTFScheduler.pick_cheapest(plans)
        if best is None:
            return RoundDecision(planning_ops=ops)
        queued, plan = best
        return RoundDecision(admissions=[Admission(queued=queued, plan=plan)],
                             planning_ops=ops)
