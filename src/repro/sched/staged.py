"""Schedule-length-aware LMTF variants (plan compilation in the loop).

The staged policies run the exact LMTF/P-LMTF machinery but, when two
candidates probe at the same update cost, prefer the one whose plan
*compiles* into the shorter congestion-free schedule
(:mod:`repro.core.compile`). The intuition follows the short-schedules
line of work: with consistency enforced stage by stage, an event's real
completion time grows with its schedule length, so among equal-cost
candidates the short schedule is the fair pick.

Compilation here is a read-only probe against the round's network state;
the executor recompiles authoritatively at execute time (the states agree
in the default pipeline, so the prediction is normally exact). Predicted
lengths are reported in :attr:`RoundDecision.predicted_stages` for
telemetry either way.
"""

from __future__ import annotations

from repro.core.compile import PlanCompilerConfig, compile_plan
from repro.core.executor import apply_plan
from repro.core.plan import EventPlan
from repro.network.view import NetworkView
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    SchedulingContext,
)
from repro.sched.lmtf import LMTFScheduler
from repro.sched.plmtf import PLMTFScheduler


class StagedCompileMixin:
    """Shared staged-pick logic for the LMTF-family schedulers.

    Hosts the compiler config and the ``(cost, stage_count, arrival, seq)``
    pick rule. The stage count only ever *tie-breaks* equal costs, so a
    staged policy admits the same events as its base policy whenever costs
    are distinct — it reorders only genuine ties.
    """

    compiler: PlanCompilerConfig

    def _init_compiler(self, mode: str, epsilon: float) -> None:
        self.compiler = PlanCompilerConfig(mode=mode, epsilon=epsilon)

    def predict_stages(self, state, plan: EventPlan) -> int:
        """Compiled schedule length of ``plan`` against ``state`` (read-only)."""
        return compile_plan(state, plan, self.compiler).stage_count

    def pick_staged(self, ctx: SchedulingContext,
                    probes: list[tuple[QueuedEvent, EventPlan]],
                    ) -> tuple[tuple[QueuedEvent, EventPlan], int] | None:
        """The feasible probe minimizing ``(cost, stages, arrival, seq)``.

        Identical to :meth:`LMTFScheduler.pick_cheapest` except that the
        compiled schedule length outranks arrival order on cost ties.
        Returns the winning probe with its predicted stage count.
        """
        best = None
        best_key = None
        best_stages = 0
        for queued, plan in probes:
            if not plan.feasible:
                continue
            stages = self.predict_stages(ctx.network, plan)
            key = (plan.cost, stages, queued.arrival_time, queued.seq)
            if best_key is None or key < best_key:
                best, best_key, best_stages = (queued, plan), key, stages
        if best is None:
            return None
        return best, best_stages

    def predict_batch(self, ctx: SchedulingContext,
                      decision: RoundDecision) -> None:
        """Fill ``decision.predicted_stages`` for every admission.

        Admissions execute in order against the live network, so each
        plan's schedule is predicted against a view holding its
        predecessors' settled state — the same state the executor will
        compile against.
        """
        view = NetworkView(ctx.network)
        for admission in decision.admissions:
            event_id = admission.queued.event.event_id
            decision.predicted_stages[event_id] = \
                self.predict_stages(view, admission.plan)
            apply_plan(view, admission.plan)


class StagedLMTFScheduler(StagedCompileMixin, LMTFScheduler):
    """LMTF with compiled-schedule-length cost tie-breaking.

    Args:
        alpha: number of random non-head candidates per round (> 0).
        seed: seed for the sampling RNG.
        probe_cache: memoize cost probes by link footprint (default on).
        mode: compile mode predictions run under (``staged`` by default;
            ``augmented`` predicts the ε-shortened schedules).
        epsilon: the augmentation knob (``augmented`` mode only).
    """

    name = "staged-lmtf"

    def __init__(self, alpha: int = 4, seed: int = 0,
                 probe_cache: bool = True,
                 mode: str = "staged", epsilon: float = 0.0):
        super().__init__(alpha=alpha, seed=seed, probe_cache=probe_cache)
        self._init_compiler(mode, epsilon)

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        """Admit the cheapest feasible probe, short schedules first on ties."""
        picked = self.pick_staged(ctx, probes)
        if picked is None:
            return self._finish(RoundDecision(planning_ops=ops))
        (queued, plan), stages = picked
        decision = RoundDecision(
            admissions=[Admission(queued=queued, plan=plan)],
            planning_ops=ops)
        decision.predicted_stages[queued.event.event_id] = stages
        return self._finish(decision)


class StagedPLMTFScheduler(StagedCompileMixin, PLMTFScheduler):
    """P-LMTF with compiled-schedule-length cost tie-breaking on the head.

    Step 1 (the LMTF pick) uses the staged tie-break; step 2's
    opportunistic batch merge is inherited unchanged — parallel admissions
    are a strict win regardless of their schedule lengths, which are still
    predicted and reported per admission.

    Args:
        alpha: number of random non-head candidates per round (> 0).
        seed: seed for the sampling RNG.
        admit: compatibility test for opportunistic candidates (see
            :class:`~repro.sched.plmtf.PLMTFScheduler`).
        probe_cache: memoize cost probes by link footprint (default on).
        mode: compile mode predictions run under.
        epsilon: the augmentation knob (``augmented`` mode only).
    """

    name = "staged-plmtf"

    def __init__(self, alpha: int = 4, seed: int = 0, admit: str = "shared",
                 probe_cache: bool = True,
                 mode: str = "staged", epsilon: float = 0.0):
        super().__init__(alpha=alpha, seed=seed, admit=admit,
                         probe_cache=probe_cache)
        self._init_compiler(mode, epsilon)

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        """Staged head pick, then the inherited opportunistic merge."""
        picked = self.pick_staged(ctx, probes)
        if picked is None:
            return self._finish(RoundDecision(planning_ops=ops))
        decision = self.merge_batch(ctx, probes, picked[0], ops)
        self.predict_batch(ctx, decision)
        return self._finish(decision)
