"""Inter-event scheduler interface (paper §III-C / §IV).

A scheduler is consulted once per *round*: it inspects the queue of pending
update events, probes update costs against the live network through the
planner (on throwaway views — probing never mutates state), and returns the
set of admissions to execute this round. The simulator then charges the
planning time, applies the admitted plans, and starts the next round when the
admitted events complete.

Admissions may cover a whole event (event-level schedulers) or a single flow
of an event (the flow-level baseline) — the simulator tracks per-event
remaining flows either way.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.event import UpdateEvent
from repro.core.flow import Flow
from repro.core.plan import EventPlan
from repro.core.planner import EventPlanner
from repro.network.state import NetworkState
from repro.sim.lifecycle import TransitionRecord

if TYPE_CHECKING:
    from repro.sched.shard import ShardInfo


@dataclass
class QueuedEvent:
    """An update event waiting in the queue, with its unadmitted flows.

    ``seq`` is the enqueue sequence number: it defines the FIFO order, which
    arrival timestamps alone cannot when a batch of events arrives at the
    same instant.
    """

    event: UpdateEvent
    remaining: list[Flow] = field(default_factory=list)
    seq: int = 0

    def __post_init__(self) -> None:
        if not self.remaining:
            self.remaining = list(self.event.flows)

    @property
    def done(self) -> bool:
        """True when every flow of the event has been admitted."""
        return not self.remaining

    @property
    def arrival_time(self) -> float:
        return self.event.arrival_time

    def subevent(self, flows: list[Flow]) -> UpdateEvent:
        """A same-id event containing only ``flows`` (for partial planning)."""
        return UpdateEvent(event_id=self.event.event_id, flows=tuple(flows),
                           arrival_time=self.event.arrival_time,
                           label=self.event.label)


@dataclass
class Admission:
    """One planned unit of work admitted into the current round."""

    queued: QueuedEvent
    plan: EventPlan

    @property
    def flows(self) -> tuple[Flow, ...]:
        return tuple(fp.flow for fp in self.plan.flow_plans)

    @property
    def completes_event(self) -> bool:
        """True when, after this admission, the event has no flows left."""
        admitted = {f.flow_id for f in self.flows}
        return all(f.flow_id in admitted for f in self.queued.remaining)


@dataclass
class RoundDecision:
    """What a scheduler decided for one round.

    ``planning_ops`` counts the *modeled* planning work and is charged as
    simulated plan time whether or not probes were served from cache — the
    probe cache (:mod:`repro.sched.cache`) is a wall-clock optimization of
    the scheduler itself, not of the modeled controller, and keeps cached
    and uncached runs bit-identical. The ``cache_*`` counters report how
    many of the round's cost probes hit, missed, or were invalidated.

    ``transitions`` is filled by the round pipeline, not by schedulers: it
    records the PROBED→ADMITTED lifecycle moves this decision caused (one
    per admission), timestamped at decision time.

    The ``probes_skipped`` / ``prediction_*`` / ``fallback`` fields are the
    learned-ranking telemetry (:mod:`repro.sched.learned`): how many
    sampled candidates went unprobed under the ranking budget, how many
    (features, actual cost) training pairs the round produced with their
    summed pre-update absolute error (log1p-cost scale), and whether the
    round fell back to full probing. Exact schedulers leave them at their
    zero defaults.

    ``predicted_stages`` maps admitted event ids to the compiled schedule
    length the scheduler *predicted* when it tie-broke on short schedules
    (:mod:`repro.sched.staged`); schedulers that never compile leave it
    empty. Purely diagnostic — the executor recompiles authoritatively.
    """

    admissions: list[Admission] = field(default_factory=list)
    planning_ops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    probes_skipped: int = 0
    prediction_samples: int = 0
    prediction_error_sum: float = 0.0
    fallback: bool = False
    transitions: list[TransitionRecord] = field(default_factory=list)
    predicted_stages: dict[str, int] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.admissions


@dataclass
class SchedulingContext:
    """Everything a scheduler may consult when making a round decision.

    ``queue`` is any sequence of waiting events in arrival order — a list
    snapshot in the default pipeline, the live indexed queue when
    ``SimulationConfig.queue_snapshots`` is off (scale mode). ``shard``
    is populated only on the per-shard sub-contexts that
    :class:`~repro.sched.shard.ShardedScheduler` hands its probe executor;
    round-level contexts carry ``None``.
    """

    now: float
    queue: Sequence[QueuedEvent]
    planner: EventPlanner
    network: NetworkState
    rng: random.Random
    shard: "ShardInfo | None" = None


class Scheduler(abc.ABC):
    """Base class for inter-event scheduling policies."""

    #: Policy name used in reports and figures.
    name: str = "scheduler"

    @abc.abstractmethod
    def select(self, ctx: SchedulingContext) -> RoundDecision:
        """Decide what to execute this round.

        Implementations must plan via ``ctx.planner`` with ``commit=False``
        (or on views) so the live network is untouched; the simulator applies
        the returned plans itself. An empty decision means "nothing feasible
        right now — wake me when the network state changes".
        """

    def reset(self) -> None:
        """Clear any per-run internal state (round-robin pointers etc.)."""

    # ------------------------------------------------------- checkpointing
    #
    # Crash-recovery checkpoints must capture whatever scheduler state
    # affects future decisions (sampling RNGs, online models, EWMAs) so a
    # restored run draws the exact same candidate samples. Stateless
    # policies inherit the empty default; caches/memos that only change
    # wall-clock behavior (never decisions) are deliberately excluded and
    # restart cold.

    def export_state(self) -> dict[str, Any]:
        """JSON-ready encoding of decision-affecting mutable state."""
        return {}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore from :meth:`export_state` output."""

    # ---------------------------------------------- probe/decide decomposition
    #
    # A policy that can name its probe candidates *before* planning them
    # decomposes select() into probe_targets() → plan each → decide().
    # The sharded wrapper (repro.sched.shard) exploits this split: it plans
    # the targets shard-by-shard (speculatively, against a cloned RNG) and
    # feeds the results to decide(), which therefore remains the single
    # authority on admission order — byte-identical to the serial select().

    def probe_targets(self,
                      ctx: SchedulingContext) -> list[QueuedEvent] | None:
        """The candidates this round's ``select`` would cost-probe, in the
        global ``(time, seq)`` order it probes them — or ``None`` when the
        policy does not decompose (its probing and deciding interleave).

        Implementations must consume exactly the same private-RNG draws
        ``select`` would (sampling happens here), and must be called at
        most once per round.
        """
        return None

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        """Turn probe results (in ``probe_targets`` order) into a decision.

        ``ops`` is the planning work already charged for the probes. Only
        meaningful on policies whose :meth:`probe_targets` returns a list.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not decompose into probe/decide")

    def probe_scope(self, ctx: SchedulingContext) -> Sequence[QueuedEvent]:
        """The queued events the pipeline should move QUEUED→PROBED for
        this round's consultation.

        The default — the whole queue — matches the historical lifecycle
        trace. The sharded wrapper narrows this to the actual probe
        candidates so a round's lifecycle cost is O(α), not O(queue);
        the narrowing is trace-visible only through ``StateTransition``
        hooks, which no serialized metric consumes.
        """
        return ctx.queue

    # --------------------------------------------------------------- helpers

    @staticmethod
    def plan_whole_event(ctx: SchedulingContext, queued: QueuedEvent,
                         state: NetworkState | None = None) -> EventPlan:
        """Plan all remaining flows of ``queued`` without committing."""
        target = state if state is not None else ctx.network
        return ctx.planner.plan_event(
            target, queued.subevent(queued.remaining), ctx.rng, commit=False)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
