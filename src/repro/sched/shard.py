"""Region-sharded parallel admission (scale mode).

At 10^5–10^6 queued events the per-round cost of the sampling schedulers
is dominated not by planning but by O(queue) bookkeeping: snapshotting the
queue, sweeping every event through QUEUED→PROBED→QUEUED, and slicing the
queue to sample. :class:`ShardedScheduler` removes all of it by exploiting
the probe/decide decomposition (:meth:`~repro.sched.base.Scheduler.
probe_targets` / :meth:`~repro.sched.base.Scheduler.decide`):

1. **Partition** — the round's probe candidates are grouped by topology
   region (the pod of a fat-tree, the leaf group of a leaf-spine fabric,
   via :meth:`~repro.network.topology.base.Topology.region_of`) with a
   stable hashed fallback for unstructured topologies. Candidates in
   different regions read disjoint edge/aggregation state, so their cost
   probes are independent in practice — and provably independent whenever
   the probe makes no RNG draw.

2. **Speculative per-shard probing** — each shard's candidates are planned
   against a *cloned* planner RNG with draw counting and footprint
   recording (exactly :meth:`~repro.core.planner.EventPlanner.
   plan_event_probed`'s purity test). A zero-draw plan is a pure function
   of the network state and the candidate, so it is valid no matter when —
   or on which shard, or in which order — it was computed. Shards can run
   on any :class:`ProbeExecutor` (serial, thread pool, or deliberately
   shuffled) without changing a single byte of the schedule.

3. **Deterministic merge** — a serial replay walks the candidates in
   global ``(time, seq)`` order, re-performing the probe-cache protocol
   (lookup → should_record → store) exactly as the serial scheduler would
   and substituting each speculative plan wherever its zero-draw purity
   certificate holds; any probe that *did* draw is replanned against the
   real planner RNG at its correct stream position. The merged probes then
   feed the wrapped policy's own :meth:`decide` — for P-LMTF that is
   :meth:`~repro.sched.plmtf.PLMTFScheduler.merge_batch`, whose batch walk
   resolves footprint conflicts by demoting the later candidate. The
   wrapper therefore reproduces the serial policy bit-for-bit (admissions,
   RNG stream, cache counters, planning ops); the schedule pins enforce
   this at shard counts 1/2/4/8.

The module also provides :class:`IndexedQueue`, the Fenwick-indexed event
queue the pipeline swaps in for its plain list: O(log n) removal and
order-statistic indexing instead of O(n) scans, with iteration order
identical to the list it replaces.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.core.plan import EventPlan
from repro.network.footprint import (
    DrawCountingRandom,
    Footprint,
    FootprintRecorder,
    stable_shard_key,
)
from repro.sched.base import (
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)

if TYPE_CHECKING:
    from repro.sched.cache import ProbeCache, ProbeKey

__all__ = [
    "IndexedQueue",
    "ProbeExecutor",
    "SerialProbeExecutor",
    "ShardInfo",
    "ShardMap",
    "ShardedScheduler",
    "ShuffledProbeExecutor",
    "SpeculativeProbe",
    "ThreadProbeExecutor",
    "speculative_probe",
]


# ------------------------------------------------------------ shard keying


@dataclass(frozen=True)
class ShardInfo:
    """Which shard a per-shard probe context belongs to."""

    index: int
    count: int


class ShardMap:
    """Maps probe candidates to shard indices.

    Args:
        shards: shard count (>= 1).
        region_of: the topology's region oracle
            (:meth:`~repro.network.topology.base.Topology.region_of`), or
            ``None`` to always use the hashed-endpoint fallback.

    A candidate whose flow endpoints agree on a single topology region is
    keyed ``region % shards``; candidates spanning regions (or on
    topologies without regions) fall back to a stable CRC-32 of their
    endpoints — never :func:`hash`, which ``PYTHONHASHSEED`` randomizes
    across the parallel runner's worker processes.
    """

    def __init__(self, shards: int,
                 region_of: Callable[[str], int | None] | None = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._region_of = region_of

    def shard_of(self, queued: QueuedEvent) -> int:
        if self.shards == 1:
            return 0
        flows = queued.remaining or list(queued.event.flows)
        if self._region_of is not None:
            regions = set()
            for flow in flows:
                regions.add(self._region_of(flow.src))
                regions.add(self._region_of(flow.dst))
            regions.discard(None)
            if len(regions) == 1:
                region = next(iter(regions))
                assert region is not None
                return region % self.shards
        endpoints: list[str] = []
        for flow in flows:
            endpoints.append(flow.src)
            endpoints.append(flow.dst)
        return stable_shard_key(endpoints, self.shards)

    def shard_of_footprint(self, footprint: Footprint) -> int:
        """Shard index from a recorded probe footprint (diagnostics)."""
        return footprint.shard_key(self.shards)


# ------------------------------------------------------ speculative probes


@dataclass
class SpeculativeProbe:
    """One shard-phase probe result, with its purity certificate.

    ``draws == 0`` certifies the plan is a pure function of (state,
    candidate): the cloned RNG was never consulted, so the plan is valid
    at any planner-RNG stream position — including the position the serial
    replay reaches it at. A probe that drew is discarded and replanned
    serially. ``recorded`` says a footprint recorder wrapped the probe
    (recording is read-transparent, so it never changes the plan).
    """

    plan: EventPlan
    footprint: Footprint | None
    draws: int
    recorded: bool


def speculative_probe(ctx: SchedulingContext, queued: QueuedEvent,
                      record: bool) -> SpeculativeProbe:
    """Plan ``queued`` against a cloned RNG, counting draws.

    Safe to run out of order and concurrently with other speculative
    probes: it only *reads* the network state and never touches the shared
    planner RNG (the clone starts from the round's entry state and is
    thrown away).
    """
    clone = random.Random()
    clone.setstate(ctx.rng.getstate())
    counting = DrawCountingRandom(clone)
    event = queued.subevent(queued.remaining)
    if record and ctx.network.supports_versions:
        recorder = FootprintRecorder(ctx.network)
        plan = ctx.planner.plan_event(recorder, event, counting,
                                      commit=False)
        footprint = None if counting.draws else recorder.footprint()
        return SpeculativeProbe(plan=plan, footprint=footprint,
                                draws=counting.draws, recorded=True)
    plan = ctx.planner.plan_event(ctx.network, event, counting,
                                  commit=False)
    return SpeculativeProbe(plan=plan, footprint=None,
                            draws=counting.draws, recorded=False)


@dataclass
class _PendingProbe:
    """A candidate the speculative phase must plan (cache could not)."""

    index: int
    queued: QueuedEvent
    record: bool
    ctx: SchedulingContext


def _probe_group(
        group: tuple[ShardInfo, list[_PendingProbe]],
) -> dict[int, SpeculativeProbe]:
    """Plan one shard's pending candidates (executor work unit)."""
    _info, items = group
    return {item.index: speculative_probe(item.ctx, item.queued,
                                          item.record)
            for item in items}


# ------------------------------------------------------------- executors


class ProbeExecutor(abc.ABC):
    """Runs the speculative phase's per-shard work units."""

    name: str = "executor"

    @abc.abstractmethod
    def run(self, groups: list[tuple[ShardInfo, list[_PendingProbe]]],
            ) -> dict[int, SpeculativeProbe]:
        """Probe every group; return results keyed by candidate index."""


class SerialProbeExecutor(ProbeExecutor):
    """Shards probed one after another on the calling thread (default)."""

    name = "serial"

    def run(self, groups: list[tuple[ShardInfo, list[_PendingProbe]]],
            ) -> dict[int, SpeculativeProbe]:
        results: dict[int, SpeculativeProbe] = {}
        for group in groups:
            results.update(_probe_group(group))
        return results


class ThreadProbeExecutor(ProbeExecutor):
    """One worker per shard on a persistent thread pool.

    Speculative probes are read-only and RNG-isolated, so concurrent
    execution cannot change results; on CPython the GIL serializes the
    actual bytecode, so this backend only pays off when probing blocks
    (e.g. a planner extension doing I/O). It exists to prove the
    architecture: results are asserted identical to the serial backend by
    the shuffle/property tests.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self._max_workers = max_workers
        self._pool = None

    def run(self, groups: list[tuple[ShardInfo, list[_PendingProbe]]],
            ) -> dict[int, SpeculativeProbe]:
        if len(groups) <= 1:
            return SerialProbeExecutor().run(groups)
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor
            workers = self._max_workers or max(len(groups), 2)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="shard-probe")
        results: dict[int, SpeculativeProbe] = {}
        for part in self._pool.map(_probe_group, groups):
            results.update(part)
        return results


class ShuffledProbeExecutor(ProbeExecutor):
    """Probes all candidates in a deliberately scrambled order.

    Test-only backend: byte-identical schedules under arbitrary probe
    orderings are exactly the property that makes parallel execution
    safe, so the pins run against this executor to prove it.
    """

    name = "shuffled"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def run(self, groups: list[tuple[ShardInfo, list[_PendingProbe]]],
            ) -> dict[int, SpeculativeProbe]:
        items = [item for _info, members in groups for item in members]
        self._rng.shuffle(items)
        return {item.index: speculative_probe(item.ctx, item.queued,
                                              item.record)
                for item in items}


_EXECUTORS: dict[str, Callable[[], ProbeExecutor]] = {
    "serial": SerialProbeExecutor,
    "thread": ThreadProbeExecutor,
    "shuffled": ShuffledProbeExecutor,
}


# ------------------------------------------------------- sharded scheduler


class ShardedScheduler(Scheduler):
    """Wraps a probe/decide-decomposable policy with sharded probing.

    Args:
        inner: the wrapped policy — a :class:`Scheduler` or a spec dict
            (``{"kind": "plmtf", ...}``), so the wrapper itself is
            spec-describable: ``{"kind": "sharded", "shards": 4,
            "inner": {"kind": "plmtf", ...}}``.
        shards: shard count (>= 1; 1 keeps the machinery but one group).
        region_of: topology region oracle for the shard key; ``None``
            falls back to hashed endpoints (jellyfish/custom graphs).
        executor: probe backend — ``"serial"`` (default), ``"thread"``,
            ``"shuffled"`` (test-only), or a :class:`ProbeExecutor`.

    The wrapper reports the inner policy's ``name`` (metrics compare
    policies, not deployment shapes) and exposes its probe ``cache`` so
    pipeline-side eviction (drop/completion purges) keeps working. If the
    inner policy does not decompose (``probe_targets() is None``), the
    wrapper degrades to plain delegation — correct, just unsharded.
    """

    def __init__(self, inner: "Scheduler | dict", shards: int = 1,
                 region_of: Callable[[str], int | None] | None = None,
                 executor: "str | ProbeExecutor" = "serial"):
        if isinstance(inner, dict):
            from repro.sched import build_scheduler
            inner = build_scheduler(inner)
        if isinstance(inner, ShardedScheduler):
            raise ValueError("nesting ShardedScheduler in itself is "
                             "meaningless; shard the innermost policy")
        self._inner = inner
        self.name = inner.name
        self._map = ShardMap(shards, region_of)
        if isinstance(executor, str):
            try:
                executor = _EXECUTORS[executor]()
            except KeyError:
                raise ValueError(
                    f"unknown probe executor {executor!r}; pick one of "
                    f"{sorted(_EXECUTORS)}") from None
        self._executor = executor
        self._scope_ctx: SchedulingContext | None = None
        self._scope_targets: list[QueuedEvent] | None = None

    @property
    def inner(self) -> Scheduler:
        return self._inner

    @property
    def shards(self) -> int:
        return self._map.shards

    @property
    def cache(self) -> "ProbeCache | None":
        """The inner policy's probe cache (None when it has none)."""
        return getattr(self._inner, "cache", None)

    @property
    def extractor(self):
        """The inner policy's feature extractor (learned schedulers only;
        None otherwise). Exposed so the pipeline's completion/drop purge
        reaches through the wrapper, like ``cache``."""
        return getattr(self._inner, "extractor", None)

    def reset(self) -> None:
        self._inner.reset()
        self._scope_ctx = None
        self._scope_targets = None

    def export_state(self) -> dict:
        """Delegate to the inner policy: the wrapper's own state (the
        per-round scope memo) is transient and empty at engine-callback
        boundaries, where checkpoints are taken."""
        return self._inner.export_state()

    def restore_state(self, state: dict) -> None:
        self._inner.restore_state(state)
        self._scope_ctx = None
        self._scope_targets = None

    # ------------------------------------------------------------------ API

    def probe_scope(self, ctx: SchedulingContext) -> Sequence[QueuedEvent]:
        """Only the probe candidates enter PROBED under sharding.

        Sampling (the inner policy's private RNG) happens here, once; the
        targets are stashed by context identity so the subsequent
        ``select`` on the same round reuses them instead of resampling.
        """
        targets = self._take_targets(ctx)
        return ctx.queue if targets is None else targets

    def probe_targets(self,
                      ctx: SchedulingContext) -> list[QueuedEvent] | None:
        return self._take_targets(ctx)

    def select(self, ctx: SchedulingContext) -> RoundDecision:
        if not ctx.queue:
            return RoundDecision()
        targets = self._take_targets(ctx)
        if targets is None:
            # Non-decomposable inner policy: delegate untouched.
            return self._inner.select(ctx)
        probes, ops = self._probe_all(ctx, targets)
        return self._inner.decide(ctx, probes, ops)

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        return self._inner.decide(ctx, probes, ops)

    # ------------------------------------------------------------ internals

    def _take_targets(self,
                      ctx: SchedulingContext) -> list[QueuedEvent] | None:
        if self._scope_ctx is ctx:
            return self._scope_targets
        targets = self._inner.probe_targets(ctx)
        self._scope_ctx = ctx
        self._scope_targets = targets
        return targets

    def _probe_all(self, ctx: SchedulingContext,
                   targets: list[QueuedEvent],
                   ) -> tuple[list[tuple[QueuedEvent, EventPlan]], int]:
        """Probe ``targets``: speculate per shard, then replay serially.

        The replay is the authority: it re-performs the cache protocol and
        the planner calls in global candidate order, consuming speculative
        results only where their zero-draw purity certificate makes them
        provably equal to what the serial path would compute. Everything
        observable — admissions, cache counters, RNG stream, planning
        ops — is therefore identical to the unsharded scheduler.
        """
        cache = self.cache
        pending: list[_PendingProbe] = []
        for index, queued in enumerate(targets):
            if cache is not None:
                key = _probe_key(queued)
                if cache.peek(key, ctx.network) is not None:
                    continue  # replay will hit; no planner work needed
                record = cache.would_record(key)
            else:
                record = False
            pending.append(_PendingProbe(index=index, queued=queued,
                                         record=record, ctx=ctx))
        memos = self._speculate(ctx, pending)
        probes: list[tuple[QueuedEvent, EventPlan]] = []
        ops = 0
        for index, queued in enumerate(targets):
            plan = self._replay(ctx, queued, cache, memos.get(index))
            ops += plan.planning_ops
            probes.append((queued, plan))
        return probes, ops

    def _speculate(self, ctx: SchedulingContext,
                   pending: list[_PendingProbe],
                   ) -> dict[int, SpeculativeProbe]:
        if not pending:
            return {}
        by_shard: dict[int, list[_PendingProbe]] = {}
        for item in pending:
            by_shard.setdefault(self._map.shard_of(item.queued),
                                []).append(item)
        groups = []
        for shard_index in sorted(by_shard):
            members = by_shard[shard_index]
            info = ShardInfo(index=shard_index, count=self.shards)
            shard_ctx = replace(ctx, queue=[m.queued for m in members],
                                shard=info)
            for member in members:
                member.ctx = shard_ctx
            groups.append((info, members))
        return self._executor.run(groups)

    def _replay(self, ctx: SchedulingContext, queued: QueuedEvent,
                cache: "ProbeCache | None",
                memo: SpeculativeProbe | None) -> EventPlan:
        """One candidate of the serial replay (mirrors
        :meth:`~repro.sched.lmtf.LMTFScheduler.probe_event` exactly)."""
        if cache is None:
            if memo is not None and memo.draws == 0:
                return memo.plan
            return Scheduler.plan_whole_event(ctx, queued)
        key = _probe_key(queued)
        plan = cache.lookup(key, ctx.network)
        if plan is not None:
            return plan
        if not cache.should_record(key):
            if memo is not None and memo.draws == 0:
                return memo.plan
            return Scheduler.plan_whole_event(ctx, queued)
        if memo is not None and memo.draws == 0 and memo.recorded:
            plan, footprint = memo.plan, memo.footprint
        else:
            plan, footprint = ctx.planner.plan_event_probed(
                ctx.network, queued.subevent(queued.remaining), ctx.rng)
        if footprint is not None:
            cache.store(key, ctx.network, plan, footprint)
        else:
            cache.note_uncacheable(key)
        return plan

    def __repr__(self) -> str:
        return (f"<ShardedScheduler {self.name!r} shards={self.shards} "
                f"executor={self._executor.name}>")


def _probe_key(queued: QueuedEvent) -> "ProbeKey":
    return (queued.event.event_id,
            tuple(f.flow_id for f in queued.remaining))


# ---------------------------------------------------------- indexed queue


class IndexedQueue:
    """Arrival-ordered queue with O(log n) removal and indexing.

    A drop-in replacement for the pipeline's plain ``list[QueuedEvent]``:
    iteration yields live entries in insertion order, ``[k]`` returns the
    k-th live entry via Fenwick order statistics, and ``remove`` clears a
    tombstone instead of shifting O(n) elements. Entries are keyed by
    identity (``QueuedEvent`` is mutable, so value hashing is unsafe);
    distinct queued events are never equal, so identity removal matches
    ``list.remove`` semantics. Tombstones are compacted away once they
    outnumber live entries.
    """

    __slots__ = ("_slots", "_fen", "_pos", "_live")

    #: Compaction is skipped below this backing size (churn on tiny queues
    #: would dominate).
    _COMPACT_MIN = 64

    def __init__(self, items: Iterable[QueuedEvent] = ()):
        self._slots: list[QueuedEvent | None] = []
        self._fen: list[int] = []
        self._pos: dict[int, int] = {}
        self._live = 0
        for item in items:
            self.append(item)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[QueuedEvent]:
        for entry in self._slots:
            if entry is not None:
                yield entry

    def __contains__(self, item: object) -> bool:
        return id(item) in self._pos

    def __getitem__(self, index: "int | slice"):
        if isinstance(index, slice):
            return list(self)[index]
        if index < 0:
            index += self._live
        if not 0 <= index < self._live:
            raise IndexError("IndexedQueue index out of range")
        entry = self._slots[self._select(index + 1)]
        assert entry is not None
        return entry

    def append(self, item: QueuedEvent) -> None:
        if id(item) in self._pos:
            raise ValueError(f"{item!r} is already queued")
        slot = len(self._slots)
        self._slots.append(item)
        self._fen_append()
        self._pos[id(item)] = slot
        self._live += 1

    def remove(self, item: QueuedEvent) -> None:
        slot = self._pos.pop(id(item), None)
        if slot is None:
            raise ValueError(f"{item!r} not in queue")
        self._slots[slot] = None
        self._update(slot + 1, -1)
        self._live -= 1
        if (len(self._slots) >= self._COMPACT_MIN
                and self._live * 2 < len(self._slots)):
            self._compact()

    # ---------------------------------------------------- fenwick internals

    def _prefix(self, i: int) -> int:
        total = 0
        while i > 0:
            total += self._fen[i - 1]
            i -= i & -i
        return total

    def _update(self, i: int, delta: int) -> None:
        size = len(self._fen)
        while i <= size:
            self._fen[i - 1] += delta
            i += i & -i

    def _fen_append(self) -> None:
        i = len(self._fen) + 1
        lo = i - (i & -i)
        self._fen.append(1 + self._prefix(i - 1) - self._prefix(lo))

    def _select(self, k: int) -> int:
        """0-based slot of the k-th (1-based) live entry."""
        size = len(self._fen)
        pos = 0
        bit = 1 << size.bit_length()
        rem = k
        while bit:
            nxt = pos + bit
            if nxt <= size and self._fen[nxt - 1] < rem:
                rem -= self._fen[nxt - 1]
                pos = nxt
            bit >>= 1
        return pos

    def _compact(self) -> None:
        live = [entry for entry in self._slots if entry is not None]
        self._slots = list(live)
        self._pos = {id(entry): i for i, entry in enumerate(live)}
        self._fen = [i & -i for i in range(1, len(live) + 1)]

    def __repr__(self) -> str:
        return (f"<IndexedQueue live={self._live} "
                f"slots={len(self._slots)}>")
