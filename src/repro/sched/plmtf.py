"""P-LMTF — parallel LMTF with opportunistic updating (paper §IV-C).

P-LMTF runs the LMTF step first: sample ``α`` random non-head events, plan
the ``α+1`` candidates, and pick the cheapest as the new head. It then walks
the *remaining* candidates in arrival order and admits every one that can be
"updated with the head-event together" — opportunistic updating. A heavy
early event that LMTF would defer therefore gets a chance to run in the same
round as the new head, which both restores fairness and adds parallelism.

The paper is explicit that P-LMTF checks only the sampled candidates, not
the whole queue, to keep planning overhead bounded, and that P-LMTF spends
*less* plan time than LMTF because one round plans multiple events. The
``shared``/``hybrid`` admission modes reproduce exactly that: the step-1
probe plans are reused as the batch plans wherever they still apply, so a
round costs little more planning than an LMTF round but can retire several
events.
"""

from __future__ import annotations

from repro.core.exceptions import PlacementError, PlanningError
from repro.core.executor import apply_plan
from repro.core.plan import EventPlan
from repro.network.view import NetworkView
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    SchedulingContext,
)
from repro.sched.lmtf import LMTFScheduler

#: Opportunistic-admission policies.
ADMIT_MODES = ("hybrid", "shared", "nocontention", "free", "feasible")


class PLMTFScheduler(LMTFScheduler):
    """LMTF plus opportunistic parallel admission of sampled candidates.

    Args:
        alpha: number of random non-head candidates per round (> 0).
        seed: seed for the sampling RNG.
        admit: compatibility test for opportunistic candidates.

            * ``shared`` (default) — reuse each candidate's step-1 probe
              plan: the candidate joins the round iff its independently
              computed plan still applies on top of the batch (no bandwidth
              conflict with the plans admitted before it). No replanning
              happens, so per-round planning cost equals LMTF's while the
              round retires several events — this is how the paper's P-LMTF
              spends *less* total plan time than LMTF (Fig. 6(d)) — and an
              admitted event pays exactly its standalone cost, so
              parallelism never inflates the total update cost (Fig. 6(a)).
            * ``nocontention`` — replan each candidate on the cumulative
              batch state and admit if that plan costs no more than its
              standalone plan this round: parallelism must not inflate the
              candidate's own migration traffic (more planning for the same
              admission rate in practice).
            * ``hybrid`` — try ``shared`` admission first; if the probe
              plan conflicts with the batch, replan and admit under the
              ``nocontention`` bound.
            * ``free`` — replan on the batch and admit only migration-free
              plans (strictest; ablation).
            * ``feasible`` — replan on the batch and admit any feasible
              plan, migrations included; maximizes parallelism at the price
              of extra migration traffic from intra-round contention
              (ablation).
    """

    name = "plmtf"

    def __init__(self, alpha: int = 4, seed: int = 0, admit: str = "shared",
                 probe_cache: bool = True):
        super().__init__(alpha=alpha, seed=seed, probe_cache=probe_cache)
        if admit not in ADMIT_MODES:
            raise ValueError(f"unknown admit mode {admit!r}; "
                             f"pick one of {ADMIT_MODES}")
        self.admit = admit

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        """The two P-LMTF steps over already-computed probes.

        Step 1 — the LMTF step: pick the cheapest feasible probe as the
        round's head. (The probes themselves were planned by ``select`` —
        or, under the sharded wrapper, shard-by-shard — and went through
        the footprint cache; step-2 replans run on the transient batch
        view and are never cached.)
        """
        best = self.pick_cheapest(probes)
        if best is None:
            return self._finish(RoundDecision(planning_ops=ops))
        return self._finish(self.merge_batch(ctx, probes, best, ops))

    def merge_batch(self, ctx: SchedulingContext,
                    probes: list[tuple[QueuedEvent, EventPlan]],
                    best: tuple[QueuedEvent, EventPlan],
                    ops: int) -> RoundDecision:
        """Step 2 — opportunistic updating: walk the non-head candidates in
        global ``(time, seq)`` order and admit those that can run alongside
        the batch.

        This walk is also the deterministic *cross-shard merge*: probes
        arrive in global arrival order regardless of which shard planned
        them, the batch view accumulates admitted plans, and a candidate
        whose footprint conflicts with the batch (bandwidth contention or a
        migration touching a batch-pinned flow) is demoted — left queued
        for a later round — rather than reordered. When the simulator
        replays the admissions in admission order against the live network,
        each applies to exactly the state it was planned against.
        """
        head_queued, head_plan = best
        batch_view = NetworkView(ctx.network)
        apply_plan(batch_view, head_plan)
        admissions = [Admission(queued=head_queued, plan=head_plan)]
        # Flows already admitted to the batch are pinned: a later candidate
        # may not "make room" by migrating a batch-mate's new flow.
        batch_flow_ids = {fp.flow.flow_id for fp in head_plan.flow_plans}
        for queued, probe in probes:
            if queued is head_queued:
                continue
            plan, extra_ops = self._admit(ctx, batch_view, queued, probe,
                                          batch_flow_ids)
            ops += extra_ops
            if plan is None:
                continue
            admissions.append(Admission(queued=queued, plan=plan))
            batch_flow_ids.update(fp.flow.flow_id for fp in plan.flow_plans)
        return RoundDecision(admissions=admissions, planning_ops=ops)

    # ------------------------------------------------------------- internals

    def _admit(self, ctx: SchedulingContext, batch_view: NetworkView,
               queued: QueuedEvent, probe: EventPlan,
               batch_flow_ids: set[str]) -> tuple[EventPlan | None, int]:
        """Test one candidate against the batch.

        Returns ``(plan, extra_planning_ops)``; ``plan`` is None when the
        candidate is rejected. ``shared`` applies the probe plan directly
        and costs no extra planning; the other modes replan on the batch
        view (paying ops whether or not the candidate is admitted).
        """
        if self.admit in ("shared", "hybrid"):
            if probe.feasible and not any(
                    m.flow.flow_id in batch_flow_ids
                    for m in probe.migrations):
                try:
                    apply_plan(batch_view, probe)
                except (PlacementError, PlanningError):
                    pass
                else:
                    return probe, 0
            if self.admit == "shared":
                return None, 0

        plan = ctx.planner.plan_event(
            batch_view, queued.subevent(queued.remaining), ctx.rng,
            commit=False, extra_protected=frozenset(batch_flow_ids))
        if not plan.feasible:
            return None, plan.planning_ops
        if self.admit == "free" and plan.cost > 0:
            return None, plan.planning_ops
        if (self.admit in ("nocontention", "hybrid")
                and (not probe.feasible or plan.cost > probe.cost)):
            return None, plan.planning_ops
        apply_plan(batch_view, plan)
        return plan, plan.planning_ops
