"""FIFO: strict arrival-order event scheduling (the paper's fairness
baseline).

FIFO guarantees strict fairness and is optimal for tail ECT when event
durations are similar (paper §IV-B, citing Wierman & Zwart), but suffers
head-of-line blocking under heavy-tailed event sizes: a heavy head event
occupies the network while many small later events wait.
"""

from __future__ import annotations

from repro.core.plan import EventPlan
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)


class FIFOScheduler(Scheduler):
    """Execute exactly the head event each round, or wait."""

    name = "fifo"

    def select(self, ctx: SchedulingContext) -> RoundDecision:
        if not ctx.queue:
            return RoundDecision()
        head = ctx.queue[0]
        plan = self.plan_whole_event(ctx, head)
        return self.decide(ctx, [(head, plan)], plan.planning_ops)

    def probe_targets(self,
                      ctx: SchedulingContext) -> list[QueuedEvent] | None:
        """FIFO only ever probes the head."""
        return [ctx.queue[0]] if ctx.queue else []

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        if not probes:
            return RoundDecision()
        head, plan = probes[0]
        if not plan.feasible:
            # Strict FIFO never jumps the queue; wait for state to change.
            return RoundDecision(planning_ops=ops)
        return RoundDecision(admissions=[Admission(queued=head, plan=plan)],
                             planning_ops=ops)
