"""The flow-level scheduling baseline (paper §II, Fig. 2(a)).

Prior update schemes treat each flow of an update event in isolation: the
update engine processes one flow per round, regardless of which event the
flow belongs to, and an event only completes when its last straggler flow
does. Two orderings are provided:

* ``interleave`` (default) — round-robin across the queued events, matching
  Fig. 2(a): with three events of unit-time flows the events complete at
  9/11/12 slots instead of the event-level 3/7/12.
* ``arrival`` — strictly drain the earliest event's flows first. This is the
  degenerate case where flow-level and event-level FIFO orderings coincide;
  the event-level advantage then comes only from intra-event parallelism.
"""

from __future__ import annotations

from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)

ORDERS = ("interleave", "arrival")


class FlowLevelScheduler(Scheduler):
    """Admit one flow per round, ignoring event boundaries.

    Args:
        order: ``interleave`` (round-robin across events, the paper's
            depiction) or ``arrival`` (drain events one by one).
    """

    name = "flow-level"

    def __init__(self, order: str = "interleave"):
        if order not in ORDERS:
            raise ValueError(f"unknown flow order {order!r}; "
                             f"pick one of {ORDERS}")
        self.order = order
        self._rr_next = 0

    def reset(self) -> None:
        self._rr_next = 0

    def select(self, ctx: SchedulingContext) -> RoundDecision:
        if not ctx.queue:
            return RoundDecision()
        ops = 0
        for queued in self._candidates(ctx.queue):
            flow = queued.remaining[0]
            plan = ctx.planner.plan_event(
                ctx.network, queued.subevent([flow]), ctx.rng, commit=False)
            ops += plan.planning_ops
            if plan.feasible:
                return RoundDecision(
                    admissions=[Admission(queued=queued, plan=plan)],
                    planning_ops=ops)
            if self.order == "arrival":
                # Strict arrival order never skips a blocked flow.
                return RoundDecision(planning_ops=ops)
        return RoundDecision(planning_ops=ops)

    def _candidates(self, queue: list[QueuedEvent]) -> list[QueuedEvent]:
        """Queue rotated to the round-robin cursor (or as-is for arrival)."""
        if self.order == "arrival":
            return list(queue)
        start = self._rr_next % len(queue)
        self._rr_next = start + 1
        return queue[start:] + queue[:start]
