"""Scheduling policies and the spec-based scheduler factory.

Experiment cells that cross process boundaries cannot carry scheduler
*objects*, so the parallel runner describes schedulers as JSON-serializable
spec dicts — ``{"kind": "lmtf", "alpha": 4, "seed": 9}`` — and rebuilds
them in the worker with :func:`build_scheduler`. The sequential experiment
paths use the same factory so both paths construct identical policies.
"""

from __future__ import annotations

from repro.sched.base import Scheduler
from repro.sched.fifo import FIFOScheduler
from repro.sched.flowlevel import FlowLevelScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sched.oracle import OracleSJFScheduler
from repro.sched.plmtf import PLMTFScheduler

#: Spec ``kind`` -> scheduler class. The kind is the constructor's identity,
#: not necessarily the instance's ``name`` (oracles embed their signal).
SCHEDULER_KINDS = {
    "fifo": FIFOScheduler,
    "lmtf": LMTFScheduler,
    "plmtf": PLMTFScheduler,
    "flow-level": FlowLevelScheduler,
    "oracle-sjf": OracleSJFScheduler,
}


def build_scheduler(spec: dict) -> Scheduler:
    """Instantiate a scheduler from a spec dict.

    Args:
        spec: ``{"kind": <SCHEDULER_KINDS key>, **constructor_kwargs}``.

    Raises:
        ValueError: unknown ``kind`` or missing ``kind`` key.
    """
    kwargs = dict(spec)
    kind = kwargs.pop("kind", None)
    if kind not in SCHEDULER_KINDS:
        raise ValueError(f"unknown scheduler kind {kind!r}; pick one of "
                         f"{sorted(SCHEDULER_KINDS)}")
    return SCHEDULER_KINDS[kind](**kwargs)


def scheduler_name(spec: dict) -> str:
    """The ``name`` the scheduler built from ``spec`` reports in metrics."""
    return build_scheduler(spec).name


__all__ = [
    "SCHEDULER_KINDS",
    "Scheduler",
    "build_scheduler",
    "scheduler_name",
]
