"""Scheduling policies, the scheduler registry, and the spec factory.

Experiment cells that cross process boundaries cannot carry scheduler
*objects*, so the parallel runner describes schedulers as JSON-serializable
spec dicts — ``{"kind": "lmtf", "alpha": 4, "seed": 9}`` — and rebuilds
them in the worker with :func:`build_scheduler`. The sequential experiment
paths use the same factory so both paths construct identical policies.

Adding a scheduler is one call::

    from repro.sched import register_scheduler

    @register_scheduler("my-policy")
    class MyScheduler(Scheduler): ...

after which ``make_scheduler("my-policy", **kwargs)``, spec dicts
(``{"kind": "my-policy", ...}``) and the experiment CLI all resolve it —
no dispatch tables to edit.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.sched.base import Scheduler
from repro.sched.fifo import FIFOScheduler
from repro.sched.flowlevel import FlowLevelScheduler
from repro.sched.learned import LearnedLMTFScheduler
from repro.sched.lmtf import LMTFScheduler
from repro.sched.oracle import OracleSJFScheduler
from repro.sched.plmtf import PLMTFScheduler
from repro.sched.shard import ShardedScheduler
from repro.sched.staged import StagedLMTFScheduler, StagedPLMTFScheduler

#: Spec ``kind`` -> scheduler class. The kind is the constructor's identity,
#: not necessarily the instance's ``name`` (oracles embed their signal; the
#: sharded wrapper reports its inner policy's name).
SCHEDULER_KINDS: dict[str, type[Scheduler]] = {
    "fifo": FIFOScheduler,
    "lmtf": LMTFScheduler,
    "plmtf": PLMTFScheduler,
    "flow-level": FlowLevelScheduler,
    "oracle-sjf": OracleSJFScheduler,
    "sharded": ShardedScheduler,
    "learned": LearnedLMTFScheduler,
    "staged-lmtf": StagedLMTFScheduler,
    "staged-plmtf": StagedPLMTFScheduler,
}

_S = TypeVar("_S", bound=type[Scheduler])


def register_scheduler(kind: str) -> Callable[[_S], _S]:
    """Class decorator adding a scheduler to the registry under ``kind``.

    Raises:
        ValueError: ``kind`` is already registered (shadowing a policy
            silently would corrupt spec-described experiment grids).
    """
    def deco(cls: _S) -> _S:
        if kind in SCHEDULER_KINDS:
            raise ValueError(f"scheduler kind {kind!r} already registered "
                             f"({SCHEDULER_KINDS[kind].__name__})")
        SCHEDULER_KINDS[kind] = cls
        return cls
    return deco


def make_scheduler(kind: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by kind name.

    Raises:
        ValueError: unknown ``kind``.
    """
    try:
        cls = SCHEDULER_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown scheduler kind {kind!r}; pick one of "
                         f"{sorted(SCHEDULER_KINDS)}") from None
    return cls(**kwargs)


def build_scheduler(spec: dict) -> Scheduler:
    """Instantiate a scheduler from a spec dict.

    Args:
        spec: ``{"kind": <SCHEDULER_KINDS key>, **constructor_kwargs}``.

    Raises:
        ValueError: unknown ``kind`` or missing ``kind`` key.
    """
    kwargs = dict(spec)
    kind = kwargs.pop("kind", None)
    if kind is None:
        raise ValueError(f"scheduler spec {spec!r} has no 'kind' key")
    return make_scheduler(kind, **kwargs)


def scheduler_name(spec: dict) -> str:
    """The ``name`` the scheduler built from ``spec`` reports in metrics."""
    return build_scheduler(spec).name


def wrap_scheduler_specs(specs: tuple[dict, ...],
                         shards: int | None) -> tuple[dict, ...]:
    """Wrap each spec in a sharded-scheduler spec when ``shards`` is set.

    ``None`` returns the specs untouched (the unsharded path); any shard
    count — including 1 — routes the policies through
    :class:`~repro.sched.shard.ShardedScheduler`, which is byte-identical
    by contract (the schedule pins run figures through this wrapper at
    shard counts 1/2/4/8 against the unsharded baselines).
    """
    if shards is None:
        return specs
    return tuple({"kind": "sharded", "shards": shards, "inner": dict(spec)}
                 for spec in specs)


def standard_scheduler_specs(seed: int, alpha: int = 4) -> tuple[dict, ...]:
    """The paper's three-way comparison as spec dicts: FIFO, LMTF, P-LMTF.

    Every figure/sweep compares these; centralizing the triple keeps the
    ``seed + 9`` scheduler-sampling convention in one place. ``seed`` is
    the experiment seed (the scheduler seed derived from it must differ
    from the trace/background/planner seeds so sampling never correlates
    with workload generation).
    """
    return (
        {"kind": "fifo"},
        {"kind": "lmtf", "alpha": alpha, "seed": seed + 9},
        {"kind": "plmtf", "alpha": alpha, "seed": seed + 9},
    )


__all__ = [
    "SCHEDULER_KINDS",
    "LearnedLMTFScheduler",
    "Scheduler",
    "ShardedScheduler",
    "StagedLMTFScheduler",
    "StagedPLMTFScheduler",
    "build_scheduler",
    "make_scheduler",
    "register_scheduler",
    "scheduler_name",
    "standard_scheduler_specs",
    "wrap_scheduler_specs",
]
