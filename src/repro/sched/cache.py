"""Footprint-memoized probe cache for the sampling schedulers.

LMTF/P-LMTF replan ``α+1`` candidate events from scratch every round, yet
most rounds only mutate the handful of links the admitted plans touch. The
:class:`ProbeCache` memoizes each candidate's :class:`EventPlan` together
with the plan's link/node *footprint* and a snapshot of those members'
version counters. A later probe of the same candidate reuses the plan iff
every footprint member still reports its snapshotted version — i.e. the
state is provably unchanged on everything the plan read — and otherwise
falls back to a fresh plan.

Reuse is deliberately conservative (see
:meth:`repro.core.planner.EventPlanner.plan_event_probed`): only plans that
consumed no randomness and made no unbounded reads are stored, which is
exactly the condition under which a replan is guaranteed to reproduce the
cached plan bit-for-bit. A cache-enabled run therefore admits the *same*
events in the *same* order as an uncached run — the cache is a wall-clock
optimization, invisible to the simulated schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import EventPlan
from repro.network.footprint import Footprint
from repro.network.link import LinkId
from repro.network.state import NetworkState

#: Cache key: (event id, ids of the event's not-yet-admitted flows). The
#: remaining-flow tuple matters because schedulers probe partial events.
ProbeKey = tuple[str, tuple[str, ...]]


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters (totals or per-round deltas)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from cache (0.0 when never probed)."""
        return self.hits / self.probes if self.probes else 0.0


@dataclass
class _Entry:
    state: NetworkState
    plan: EventPlan
    #: Either ``{LinkId: version}`` or ``{int: version}`` depending on
    #: ``by_index`` — index-keyed snapshots validate via one flat column
    #: read per member instead of a string-pair lookup.
    link_versions: dict[LinkId, int] | dict[int, int]
    node_versions: dict[str, int]
    by_index: bool = False


class ProbeCache:
    """Maps probe keys to plans valid while their footprint is unchanged.

    Args:
        maxsize: entry cap; the oldest entry is evicted past it (events
            complete and leave stale keys behind, so the cap bounds memory
            on long runs).
    """

    #: After an unmemoizable plan (RNG-dependent, typically migration-heavy),
    #: footprint recording for that key is skipped for this many probes.
    #: Uncacheability is a property of the congestion regime around the
    #: event's desired paths, which rarely flips between consecutive rounds,
    #: so the backoff removes the recording tax from the migration-heavy
    #: regime while re-testing cacheability periodically. Skipping recording
    #: never changes a plan — recording is read-transparent — so this is a
    #: pure wall-clock knob.
    UNCACHEABLE_BACKOFF = 8

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._maxsize = maxsize
        self._entries: dict[ProbeKey, _Entry] = {}
        self._skip: dict[ProbeKey, int] = {}
        self.totals = CacheStats()
        self._round = CacheStats()
        #: Entries dropped by :meth:`forget_event` over the cache's life —
        #: the completion/drop purge health signal ``repro serve`` exports.
        self.purges = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------- API

    def lookup(self, key: ProbeKey, state: NetworkState) -> EventPlan | None:
        """The cached plan for ``key``, or None on a miss.

        A stale entry (version drift on any footprint member, or a
        different live network than it was recorded against) counts as both
        an invalidation and a miss, and is evicted.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._count("misses")
            return None
        if entry.state is not state or not self._fresh(entry, state):
            del self._entries[key]
            self._count("invalidations")
            self._count("misses")
            return None
        self._count("hits")
        return entry.plan

    def peek(self, key: ProbeKey, state: NetworkState) -> EventPlan | None:
        """Like :meth:`lookup` but counter-free and eviction-free.

        The sharded scheduler's speculative phase uses this to predict
        which candidates need planner work at all; the serial replay then
        performs the real :meth:`lookup` (with its counters and stale-entry
        eviction) in global candidate order, so the observable cache
        protocol is untouched by peeking.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state is not state \
                or not self._fresh(entry, state):
            return None
        return entry.plan

    def would_record(self, key: ProbeKey) -> bool:
        """:meth:`should_record`'s answer without consuming a backoff
        credit (prediction for the speculative phase)."""
        return self._skip.get(key, 0) <= 0

    def store(self, key: ProbeKey, state: NetworkState, plan: EventPlan,
              footprint: Footprint) -> None:
        """Memoize ``plan`` against the current versions of its footprint."""
        if key in self._entries:
            del self._entries[key]  # refresh insertion order for eviction
        elif len(self._entries) >= self._maxsize:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        versions_idx = footprint.link_versions_idx(state)
        if versions_idx is not None:
            link_versions, by_index = versions_idx, True
        else:
            link_versions, by_index = footprint.link_versions(state), False
        self._entries[key] = _Entry(
            state=state, plan=plan,
            link_versions=link_versions,
            node_versions=footprint.node_versions(state),
            by_index=by_index)

    def should_record(self, key: ProbeKey) -> bool:
        """Whether a miss for ``key`` is worth planning with a recorder.

        False while the key is in uncacheable backoff (each call consumes
        one backoff credit, so recording is re-attempted periodically).
        """
        remaining = self._skip.get(key, 0)
        if remaining <= 0:
            return True
        self._skip[key] = remaining - 1
        return False

    def note_uncacheable(self, key: ProbeKey) -> None:
        """Record that ``key``'s latest plan could not be memoized."""
        self._skip[key] = self.UNCACHEABLE_BACKOFF

    def forget_event(self, event_id: str) -> int:
        """Evict every entry (and backoff credit) keyed to ``event_id``.

        Returns how many plan entries were dropped. Used when an event
        leaves the queue for good without being admitted — e.g. dropped
        after exhausting its requeue deferrals under faults — so its stale
        keys stop occupying cache slots. Mid-run *capacity* changes (link
        failures/heals) need no explicit eviction: ``_set_capacity`` bumps
        the link's version column, so any entry whose footprint touches the
        failed link fails :meth:`lookup`'s freshness check and self-evicts
        as an invalidation.
        """
        stale = [key for key in self._entries if key[0] == event_id]
        for key in stale:
            del self._entries[key]
        for key in [key for key in self._skip if key[0] == event_id]:
            del self._skip[key]
        self.purges += len(stale)
        return len(stale)

    def drain_round(self) -> CacheStats:
        """Return and reset the per-round counters (totals keep running)."""
        stats, self._round = self._round, CacheStats()
        return stats

    def clear(self) -> None:
        """Drop all entries and counters (scheduler reset between runs)."""
        self._entries.clear()
        self._skip.clear()
        self.totals = CacheStats()
        self._round = CacheStats()
        self.purges = 0

    # ------------------------------------------------------------- internals

    def _count(self, counter: str) -> None:
        for stats in (self.totals, self._round):
            setattr(stats, counter, getattr(stats, counter) + 1)

    @staticmethod
    def _fresh(entry: _Entry, state: NetworkState) -> bool:
        if entry.by_index:
            version_of = state.link_version_idx
            links_ok = all(version_of(i) == version
                           for i, version in entry.link_versions.items())
        else:
            links_ok = all(state.link_version(u, v) == version
                           for (u, v), version in entry.link_versions.items())
        return links_ok and all(
            state.node_version(node) == version
            for node, version in entry.node_versions.items())
