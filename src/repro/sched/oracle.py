"""Oracle baselines: shortest-event-first scheduling with perfect knowledge.

Not part of the paper — these contextualize LMTF by answering "how much of
the benefit comes from cost being a *proxy* for event heaviness?". The
oracles sort the whole queue by a directly observed size signal instead of
probing migration costs:

* ``width`` — fewest flows first,
* ``duration`` — shortest max flow service time first (true SJF on the
  execution phase),
* ``demand`` — smallest total bandwidth demand first.

Like the paper's intrinsic reorder method, oracles sacrifice fairness
entirely; unlike it, they need no cost computation (so their plan time is
FIFO-like). The ablation benches compare them against LMTF.
"""

from __future__ import annotations

from repro.core.event import UpdateEvent
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)

#: Signals an oracle may sort by.
SIGNALS = ("width", "duration", "demand")


def event_signal(event: UpdateEvent, signal: str) -> float:
    """The sort key an oracle uses for one event."""
    if signal == "width":
        return float(len(event))
    if signal == "duration":
        return event.max_service_time
    return event.total_demand


class OracleSJFScheduler(Scheduler):
    """Execute the smallest queued event first, by a perfect size signal.

    Args:
        signal: which size signal to sort by (``width`` / ``duration`` /
            ``demand``).
    """

    name = "oracle-sjf"

    def __init__(self, signal: str = "duration"):
        if signal not in SIGNALS:
            raise ValueError(f"unknown oracle signal {signal!r}; "
                             f"pick one of {SIGNALS}")
        self.signal = signal
        self.name = f"oracle-sjf-{signal}"

    def select(self, ctx: SchedulingContext) -> RoundDecision:
        if not ctx.queue:
            return RoundDecision()
        ranked = sorted(ctx.queue,
                        key=lambda q: (event_signal(q.event, self.signal),
                                       q.seq))
        ops = 0
        for queued in ranked:
            plan = self.plan_whole_event(ctx, queued)
            ops += plan.planning_ops
            if plan.feasible:
                return RoundDecision(
                    admissions=[Admission(queued=queued, plan=plan)],
                    planning_ops=ops)
        return RoundDecision(planning_ops=ops)
