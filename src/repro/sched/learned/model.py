"""Pure-stdlib online ridge regressor for probe-cost prediction.

The learned scheduler (:mod:`repro.sched.learned.scheduler`) needs a cost
predictor that is (a) cheap enough to evaluate for every sampled candidate
— its whole point is replacing ~ms exact probes with ~µs predictions —
(b) trainable *online* from the probes the scheduler performs anyway, and
(c) bit-deterministic: the same feature/label stream must always produce
the same weights, because L-LMTF's schedule is pinned seed-deterministic
across worker processes and shard counts.

:class:`OnlineRidge` is an SGD-trained linear model with L2 shrinkage over
*standardized* features (running per-feature mean/variance via Welford's
recurrences, which are themselves deterministic). No numpy, no RNG, no
wall clock — just float arithmetic in a fixed order. ``save``/``load``
round-trip the full state (weights, normalizer moments, error tracker)
through JSON, so a model trained on one trace can be shipped to another
run via the ``{"kind": "learned", "model_path": ...}`` scheduler spec.

Prediction-quality self-assessment is part of the model: ``ewma_error``
tracks an exponentially-weighted mean of absolute prediction error on the
(transformed) label scale, and the scheduler compares it against its
drift threshold to decide when to stop trusting rankings and fall back to
full probing.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.ioutil import atomic_write_text

__all__ = ["OnlineRidge"]


class OnlineRidge:
    """Online linear regression with L2 regularization and standardization.

    Args:
        dim: feature-vector length (fixed for the model's lifetime).
        lr: SGD learning rate (applied to standardized features).
        l2: L2 shrinkage coefficient per update.
        ewma_beta: smoothing factor of the absolute-error EWMA
            (``error <- beta * error + (1 - beta) * |residual|``).
    """

    def __init__(self, dim: int, lr: float = 0.05, l2: float = 1e-4,
                 ewma_beta: float = 0.98):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not 0.0 < lr <= 1.0:
            raise ValueError(f"lr must be in (0, 1], got {lr}")
        if l2 < 0.0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        if not 0.0 <= ewma_beta < 1.0:
            raise ValueError(f"ewma_beta must be in [0, 1), got {ewma_beta}")
        self.dim = dim
        self.lr = lr
        self.l2 = l2
        self.ewma_beta = ewma_beta
        self.weights = [0.0] * dim
        self.bias = 0.0
        self.samples = 0
        self.ewma_error = 0.0
        # Welford running moments for per-feature standardization.
        self._mean = [0.0] * dim
        self._m2 = [0.0] * dim

    # ----------------------------------------------------------- inference

    def predict(self, features: list[float]) -> float:
        """The model's estimate for ``features`` (label scale)."""
        z = self._standardize(features)
        total = self.bias
        for w, x in zip(self.weights, z):
            total += w * x
        return total

    def update(self, features: list[float], label: float) -> float:
        """One SGD step on ``(features, label)``.

        Returns the absolute prediction error *before* the step — the
        honest out-of-sample residual, which also feeds ``ewma_error``.
        The normalizer moments are advanced first so early samples do not
        divide by a zero variance.
        """
        self.samples += 1
        self._observe(features)
        z = self._standardize(features)
        predicted = self.bias + sum(w * x for w, x in zip(self.weights, z))
        residual = label - predicted
        error = abs(residual)
        self.ewma_error = (self.ewma_beta * self.ewma_error
                           + (1.0 - self.ewma_beta) * error)
        step = self.lr * residual
        shrink = 1.0 - self.lr * self.l2
        for i, x in enumerate(z):
            self.weights[i] = self.weights[i] * shrink + step * x
        self.bias += step
        return error

    # -------------------------------------------------------- normalization

    def _observe(self, features: list[float]) -> None:
        if len(features) != self.dim:
            raise ValueError(f"expected {self.dim} features, "
                             f"got {len(features)}")
        n = self.samples
        for i, x in enumerate(features):
            delta = x - self._mean[i]
            self._mean[i] += delta / n
            self._m2[i] += delta * (x - self._mean[i])

    def _standardize(self, features: list[float]) -> list[float]:
        if len(features) != self.dim:
            raise ValueError(f"expected {self.dim} features, "
                             f"got {len(features)}")
        if self.samples < 2:
            return [0.0] * self.dim
        n = self.samples
        out = []
        for i, x in enumerate(features):
            var = self._m2[i] / (n - 1)
            std = math.sqrt(var) if var > 1e-12 else 1.0
            out.append((x - self._mean[i]) / std)
        return out

    # ------------------------------------------------------------ save/load

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the full training state."""
        return {
            "dim": self.dim,
            "lr": self.lr,
            "l2": self.l2,
            "ewma_beta": self.ewma_beta,
            "weights": list(self.weights),
            "bias": self.bias,
            "samples": self.samples,
            "ewma_error": self.ewma_error,
            "mean": list(self._mean),
            "m2": list(self._m2),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OnlineRidge":
        """Rebuild a model bit-for-bit from a :meth:`to_dict` payload.

        Floats survive the JSON round-trip exactly (``json`` serializes
        via ``repr``), so a loaded model predicts — and keeps training —
        identically to the one that was saved.
        """
        model = cls(dim=int(data["dim"]), lr=data["lr"], l2=data["l2"],
                    ewma_beta=data["ewma_beta"])
        model.weights = [float(w) for w in data["weights"]]
        model.bias = float(data["bias"])
        model.samples = int(data["samples"])
        model.ewma_error = float(data["ewma_error"])
        model._mean = [float(m) for m in data["mean"]]
        model._m2 = [float(m) for m in data["m2"]]
        if len(model.weights) != model.dim or len(model._mean) != model.dim \
                or len(model._m2) != model.dim:
            raise ValueError("model payload dimensions disagree with 'dim'")
        return model

    def save(self, path: "str | Path") -> None:
        """Atomically write :meth:`to_dict` as JSON to ``path``."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2,
                                           sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "OnlineRidge":
        """Read a model previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(
            encoding="utf-8")))

    def __repr__(self) -> str:
        return (f"<OnlineRidge dim={self.dim} samples={self.samples} "
                f"ewma_error={self.ewma_error:.4f}>")
