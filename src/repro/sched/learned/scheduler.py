"""L-LMTF — LMTF with learned candidate ranking (``kind: "learned"``).

Exact LMTF probes all ``α+1`` sampled candidates with full ``Cost(U)``
planning every round; at ~ms per cache miss that probe loop dominates
per-round wall clock (BENCH_7). L-LMTF keeps LMTF's sampling, admission
rule, and probe-cache protocol **bit-for-bit** but inserts a ranking stage
between them:

1. ``probe_targets`` samples the usual ``α+1`` candidates (consuming the
   identical private-RNG draws, so sampling stays comparable with exact
   LMTF run-for-run), extracts a cheap feature vector per candidate
   (:mod:`repro.sched.learned.features` — no planning, no RNG), and asks
   the online model (:class:`~repro.sched.learned.model.OnlineRidge`) for
   a predicted cost.
2. When the model is *confident* — warmed up past ``warmup`` training
   samples and with prediction drift ``ewma_error`` at or under
   ``error_threshold`` — only the ``budget`` best-predicted candidates
   (the queue head always among them) are exactly probed. The rest are
   never planned this round: that is the amortization.
3. ``decide`` trains the model on every (features, actual cost) pair the
   round produced, then admits via the inherited LMTF rule
   (``pick_cheapest`` over the probed subset).

When confidence fails — cold start, or drift past the threshold — the
round degrades to **full probing**, exactly LMTF, and every probe becomes
a training sample. Quality therefore degrades gracefully, never silently:
a drifting model loses its speedup, not its schedule quality, and the
fallback is visible in metrics (``fallback_rounds``) and Prometheus
gauges.

The queue head is always probed even under budget, so the FIFO-fairness
floor of LMTF survives arbitrary model error: the head is admitted
whenever it is the cheapest feasible *probed* candidate, and a wrong
ranking can only delay a non-head bargain, never starve the head.

Composition: the class only overrides ``probe_targets``/``decide``, so it
plugs into the PR-7 decomposition unchanged — wrap it in
``{"kind": "sharded", "inner": {"kind": "learned", ...}}`` and the
sharded pipeline speculatively probes exactly the top-B targets per shard
and replays them through the inherited cache protocol. Ranking reads no
RNG and model updates happen only in the serial ``decide``, so the
schedule is identical across shard counts and worker processes.

Labels are trained on ``log1p(cost)``: costs span orders of magnitude and
the ranking only needs relative order, which the log scale preserves while
keeping SGD steps bounded. ``error_threshold`` is on that log scale
(0.5 ≈ trusting predictions within ~65% multiplicative error).
"""

from __future__ import annotations

import math

from repro.core.plan import EventPlan
from repro.sched.base import QueuedEvent, RoundDecision, SchedulingContext
from repro.sched.learned.features import FEATURE_NAMES, FeatureExtractor
from repro.sched.learned.model import OnlineRidge
from repro.sched.lmtf import LMTFScheduler

__all__ = ["LearnedLMTFScheduler"]

#: Smoothing for the scheduler's recency features (congestion/faults).
_RECENCY_BETA = 0.9


class LearnedLMTFScheduler(LMTFScheduler):
    """LMTF that exactly probes only the predicted-cheapest candidates.

    Args:
        alpha: LMTF sampling width (non-head candidates per round).
        seed: private sampling-RNG seed (same stream as exact LMTF).
        probe_cache: memoize exact probes by footprint (inherited).
        budget: exact probes per confident round (>= 1). The queue head
            is always one of them. ``budget >= alpha + 1`` disables
            skipping entirely.
        warmup: training samples required before predictions are trusted.
        error_threshold: max ``ewma_error`` (log1p-cost scale) before the
            scheduler falls back to full probing.
        model_path: optional JSON model (``OnlineRidge.save``) to start
            from — e.g. one trained by ``repro learned-bench --save-model``.
            Training continues online on top of it.
        lr / l2: optimizer hyper-parameters for a fresh model (ignored
            when ``model_path`` is given).
    """

    name = "l-lmtf"

    def __init__(self, alpha: int = 4, seed: int = 0,
                 probe_cache: bool = True, budget: int = 2,
                 warmup: int = 64, error_threshold: float = 0.5,
                 model_path: str | None = None,
                 lr: float = 0.05, l2: float = 1e-4):
        super().__init__(alpha=alpha, seed=seed, probe_cache=probe_cache)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if error_threshold <= 0.0:
            raise ValueError(
                f"error_threshold must be > 0, got {error_threshold}")
        self.budget = budget
        self.warmup = warmup
        self.error_threshold = error_threshold
        if model_path is not None:
            self._model = OnlineRidge.load(model_path)
            if self._model.dim != len(FEATURE_NAMES):
                raise ValueError(
                    f"model at {model_path!r} has dim {self._model.dim}, "
                    f"expected {len(FEATURE_NAMES)}")
        else:
            self._model = OnlineRidge(dim=len(FEATURE_NAMES), lr=lr, l2=l2)
        # Snapshot for reset(): a reset run must retrain from the same
        # starting point, or back-to-back runs would not be comparable.
        self._model_snapshot = self._model.to_dict()
        self._extractor: FeatureExtractor | None = None
        self._congestion = 0.0
        self._fault_pressure = 0.0
        # Per-round ranking state (probe_targets -> decide handoff).
        self._round_features: dict[str, list[float]] = {}
        self._round_fallback = False
        self._round_skipped = 0

    # ------------------------------------------------------------ properties

    @property
    def model(self) -> OnlineRidge:
        """The live cost model (trains in place every round)."""
        return self._model

    @property
    def extractor(self) -> FeatureExtractor | None:
        """The feature extractor, once a round has bound it to a planner."""
        return self._extractor

    @property
    def prediction_error_ewma(self) -> float:
        """Drift tracker: EWMA of absolute error on the log1p-cost scale."""
        return self._model.ewma_error

    @property
    def fallback_active(self) -> bool:
        """True while the scheduler would full-probe the next round."""
        return not self._confident()

    def save_model(self, path: str) -> None:
        """Persist the current model state as JSON (``OnlineRidge.save``)."""
        self._model.save(path)

    def reset(self) -> None:
        super().reset()
        self._model = OnlineRidge.from_dict(self._model_snapshot)
        if self._extractor is not None:
            self._extractor.clear()
        self._congestion = 0.0
        self._fault_pressure = 0.0
        self._round_features = {}
        self._round_fallback = False
        self._round_skipped = 0

    def export_state(self) -> dict:
        """Checkpoint the RNG (inherited), model, and recency EWMAs.

        The feature-memo extractor restarts cold: its entries are pure
        memoizations of static (demand, desired-path) pairs, so a cold
        extractor recomputes identical vectors — only wall clock differs.
        Per-round handoff state is empty at checkpoint time (checkpoints
        are engine-callback boundaries, never mid-``select``).
        """
        state = super().export_state()
        state["model"] = self._model.to_dict()
        state["congestion"] = self._congestion
        state["fault_pressure"] = self._fault_pressure
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._model = OnlineRidge.from_dict(state["model"])
        self._congestion = state["congestion"]
        self._fault_pressure = state["fault_pressure"]
        if self._extractor is not None:
            self._extractor.clear()
        self._round_features = {}
        self._round_fallback = False
        self._round_skipped = 0

    # ------------------------------------------------------------------ API

    def probe_targets(self,
                      ctx: SchedulingContext) -> list[QueuedEvent] | None:
        """Sample ``α+1`` candidates, rank them, return the probe set.

        Confident rounds return the ``budget`` best-predicted candidates
        (head forced in), in queue (``seq``) order; fallback rounds return
        all of them — byte-identical to exact LMTF's probe set.
        """
        if not ctx.queue:
            return []
        candidates = self.sample_candidates(ctx.queue)
        extractor = self._bind_extractor(ctx)
        self._round_features = {}
        self._round_skipped = 0
        predicted: dict[str, float] = {}
        for queued in candidates:
            vec = extractor.extract(queued, ctx.network,
                                    congestion=self._congestion,
                                    fault_pressure=self._fault_pressure)
            self._round_features[queued.event.event_id] = vec
            predicted[queued.event.event_id] = self._model.predict(vec)
        self._round_fallback = not self._confident()
        if self._round_fallback or self.budget >= len(candidates):
            return candidates
        head = candidates[0]  # lowest seq == queue head after the sort
        ranked = sorted(
            candidates,
            key=lambda q: (predicted[q.event.event_id], q.seq))
        chosen = ranked[:self.budget]
        if all(c.seq != head.seq for c in chosen):
            chosen[-1] = head
        chosen.sort(key=lambda q: q.seq)
        self._round_skipped = len(candidates) - len(chosen)
        return chosen

    def decide(self, ctx: SchedulingContext,
               probes: list[tuple[QueuedEvent, EventPlan]],
               ops: int) -> RoundDecision:
        """Train on the round's exact probes, then admit via LMTF."""
        error_sum = 0.0
        samples = 0
        for queued, plan in probes:
            vec = self._round_features.get(queued.event.event_id)
            if vec is None or not plan.feasible:
                # Infeasible plans carry no meaningful cost label; the
                # model only ranks feasible work.
                continue
            error_sum += self._model.update(vec, math.log1p(plan.cost))
            samples += 1
        decision = super().decide(ctx, probes, ops)
        decision.probes_skipped = self._round_skipped
        decision.prediction_samples = samples
        decision.prediction_error_sum = error_sum
        decision.fallback = self._round_fallback
        if decision.admissions:
            admitted_cost = sum(a.plan.cost for a in decision.admissions)
            self._congestion = (_RECENCY_BETA * self._congestion
                                + (1.0 - _RECENCY_BETA)
                                * math.log1p(admitted_cost))
        self._fault_pressure = (_RECENCY_BETA * self._fault_pressure
                                + (1.0 - _RECENCY_BETA)
                                * decision.cache_invalidations)
        if self._extractor is not None:
            for admission in decision.admissions:
                if admission.completes_event:
                    self._extractor.forget_event(
                        admission.queued.event.event_id)
        self._round_features = {}
        return decision

    # ------------------------------------------------------------ internals

    def _confident(self) -> bool:
        """Trust rankings only once trained past warmup and under drift."""
        return (self._model.samples >= self.warmup
                and self._model.ewma_error <= self.error_threshold)

    def _bind_extractor(self, ctx: SchedulingContext) -> FeatureExtractor:
        """The extractor for this run's planner (rebuilt if it changed)."""
        extractor = self._extractor
        if extractor is None or extractor.provider is not ctx.planner.provider:
            extractor = FeatureExtractor(ctx.planner)
            self._extractor = extractor
        return extractor

    def __repr__(self) -> str:
        return (f"<LearnedLMTFScheduler alpha={self.alpha} "
                f"budget={self.budget} samples={self._model.samples} "
                f"ewma_error={self._model.ewma_error:.4f} "
                f"fallback={self.fallback_active}>")
