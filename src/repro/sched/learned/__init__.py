"""Learned candidate ranking for the LMTF probe loop (L-LMTF).

The package splits into the three stages of the rank-then-verify pattern:

* :mod:`~repro.sched.learned.features` — cheap, RNG-free per-candidate
  feature vectors read straight off the indexed link-state kernel.
* :mod:`~repro.sched.learned.model` — a pure-stdlib online ridge
  regressor with deterministic training and JSON save/load.
* :mod:`~repro.sched.learned.scheduler` — the L-LMTF scheduler: rank all
  sampled candidates by predicted cost, exactly probe only the top-B,
  fall back to full probing whenever confidence is low.

Registered as scheduler spec ``{"kind": "learned", ...}``; see
``docs/architecture.md`` for the pipeline description and
``repro learned-bench`` for the accuracy/quality/throughput ablation.
"""

from repro.sched.learned.features import FEATURE_NAMES, FeatureExtractor
from repro.sched.learned.model import OnlineRidge
from repro.sched.learned.scheduler import LearnedLMTFScheduler

__all__ = [
    "FEATURE_NAMES",
    "FeatureExtractor",
    "LearnedLMTFScheduler",
    "OnlineRidge",
]
