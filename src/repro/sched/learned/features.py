"""Cheap candidate features for learned probe-cost ranking.

An exact ``Cost(U)`` probe plans every remaining flow of a candidate —
migration search included — at ~ms per miss (BENCH_7). The features here
are the *readable* fraction of that work: what the indexed kernel answers
in O(flows × path-length) flat-column reads with no planning, no view
stack, and no RNG draw. Per candidate:

========================= ==============================================
feature                   meaning
========================= ==============================================
``width``                 remaining (unadmitted) flows of the event
``total_demand``          sum of remaining-flow demands (Mbit/s)
``max_demand``            largest single remaining demand
``tight_flows``           flows whose *desired path* lacks residual
``deficit_total``         total bandwidth the desired paths are short by
``min_margin``            worst (bottleneck residual − demand) over flows
``congestion``            scheduler-supplied EWMA of recent admitted cost
``fault_pressure``        scheduler-supplied EWMA of cache invalidations
========================= ==============================================

The first six are the static/desired-path signal: a flow whose
hash-designated path (:meth:`~repro.core.planner.EventPlanner.
desired_path`, the planner's ECMP rule) fits in the current residual costs
nothing to place, so ``tight_flows``/``deficit_total`` are direct drivers
of migration volume — which *is* ``Cost(U)``. The last two are recency
signals the scheduler maintains, letting the model shift its estimates
when the fabric is churning (faults bump link versions, which surface as
probe-cache invalidations).

The per-flow desired paths and demands never change for a given
``(event_id, remaining flows)`` key, so they are memoized exactly like
probe-cache entries (bounded, evicted oldest-first, purged by
``forget_event``); only the residual reads — three flat-column reads per
link — run fresh each extraction. This is what keeps feature extraction
<2% of a single exact probe (see ``benchmarks/test_core_microbench.py``).

Extraction is read-only and consumes no randomness, so it can run at any
point of a round without perturbing the planner RNG stream — the property
L-LMTF's cross-shard determinism relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.planner import EventPlanner

if TYPE_CHECKING:
    from repro.network.state import NetworkState
    from repro.sched.base import QueuedEvent
    from repro.sched.cache import ProbeKey

__all__ = ["FEATURE_NAMES", "FeatureExtractor"]

#: Feature order of the vectors :meth:`FeatureExtractor.extract` returns.
FEATURE_NAMES: tuple[str, ...] = (
    "width",
    "total_demand",
    "max_demand",
    "tight_flows",
    "deficit_total",
    "min_margin",
    "congestion",
    "fault_pressure",
)


class FeatureExtractor:
    """Extracts per-candidate feature vectors from the indexed kernel.

    Args:
        planner: the event planner, consulted only for its path provider
            and the deterministic desired-path rule — never for planning.
        maxsize: cap on memoized static entries (desired paths/demands per
            probe key); the oldest entry is evicted past it.
    """

    def __init__(self, planner: EventPlanner, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._provider = planner.provider
        self._maxsize = maxsize
        #: ProbeKey -> ((demand, desired_path), ...) static per-flow data.
        self._static: dict["ProbeKey", tuple] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._static)

    @property
    def provider(self):
        """The path provider the memoized desired paths were computed on."""
        return self._provider

    # ------------------------------------------------------------------ API

    def extract(self, queued: "QueuedEvent", state: "NetworkState",
                congestion: float = 0.0,
                fault_pressure: float = 0.0) -> list[float]:
        """The candidate's feature vector against the current state.

        Read-only and RNG-free; safe to call for candidates that will
        never be probed.
        """
        pairs = self._static_pairs(queued)
        width = float(len(pairs))
        total_demand = 0.0
        max_demand = 0.0
        tight = 0.0
        deficit = 0.0
        min_margin = float("inf")
        for demand, desired in pairs:
            total_demand += demand
            if demand > max_demand:
                max_demand = demand
            margin = state.path_residual(desired) - demand
            if margin < min_margin:
                min_margin = margin
            if margin < 0.0:
                tight += 1.0
                deficit -= margin
        if min_margin == float("inf"):
            min_margin = 0.0
        return [width, total_demand, max_demand, tight, deficit,
                min_margin, congestion, fault_pressure]

    def forget_event(self, event_id: str) -> int:
        """Evict every memoized entry keyed to ``event_id``.

        Mirrors :meth:`repro.sched.cache.ProbeCache.forget_event`: called
        when an event leaves the queue for good, so completed/dropped
        events stop occupying memo slots on long runs. Returns how many
        entries were dropped.
        """
        stale = [key for key in self._static if key[0] == event_id]
        for key in stale:
            del self._static[key]
        return len(stale)

    def clear(self) -> None:
        """Drop all memoized entries and counters (scheduler reset)."""
        self._static.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------ internals

    def _static_pairs(self, queued: "QueuedEvent") -> Sequence[tuple]:
        """Memoized ``(demand, desired_path)`` per remaining flow.

        The desired path is a pure function of the flow id and the
        topology's candidate set (CRC-32 ECMP), and demands are immutable,
        so the entry is valid for as long as the key — which includes the
        remaining-flow ids — matches.
        """
        key = (queued.event.event_id,
               tuple(f.flow_id for f in queued.remaining))
        entry = self._static.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        pairs = []
        for flow in queued.remaining:
            paths = self._provider.paths(flow.src, flow.dst)
            desired = EventPlanner.desired_path(flow, paths)
            pairs.append((flow.demand, desired))
        if len(self._static) >= self._maxsize:
            oldest = next(iter(self._static))
            del self._static[oldest]
        entry = tuple(pairs)
        self._static[key] = entry
        return entry

    def __repr__(self) -> str:
        return (f"<FeatureExtractor entries={len(self._static)} "
                f"hits={self.hits} misses={self.misses}>")
