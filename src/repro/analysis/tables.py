"""Plain-text table rendering for experiment results.

The paper reports its evaluation as figures; our harness regenerates each as
an aligned ASCII table of the same series so the shape (who wins, by what
factor, where crossovers fall) is readable in a terminal and diffable in CI.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping


def format_cell(value: Any) -> str:
    """Human-friendly cell formatting (floats to 3 significant forms)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(columns: list[str], rows: Iterable[Mapping[str, Any]],
                 title: str = "", notes: Iterable[str] = ()) -> str:
    """Render rows as an aligned ASCII table.

    Args:
        columns: ordered column names (also the header).
        rows: mappings from column name to value; missing keys render "-".
        title: optional heading line.
        notes: optional footnote lines, prefixed with ``note:``.
    """
    body = [[format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in body)) if body else len(col)
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for cells in body:
        lines.append("  ".join(cells[i].ljust(widths[i])
                               for i in range(len(columns))))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
