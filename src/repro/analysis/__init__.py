"""Result normalization and table rendering for experiment outputs."""

from repro.analysis.normalize import (
    normalize_by_max,
    percent_reduction,
    speedup,
)
from repro.analysis.tables import format_cell, render_table

__all__ = [
    "format_cell",
    "normalize_by_max",
    "percent_reduction",
    "render_table",
    "speedup",
]
