"""Multi-seed statistics for experiment results.

Single-seed trace-driven runs are noisy (the paper averages over repeated
trials without saying how many). These helpers run a scenario across seeds
and report mean, standard deviation, and a normal-approximation confidence
interval per metric, so EXPERIMENTS.md can state effect sizes with spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.sim.metrics import RunMetrics

#: RunMetrics attributes that aggregate meaningfully across seeds.
AGGREGATABLE_METRICS = (
    "total_cost",
    "total_migrations",
    "average_ect",
    "tail_ect",
    "p95_ect",
    "p99_ect",
    "average_queuing_delay",
    "worst_queuing_delay",
    "total_plan_time",
    "makespan",
    "rounds",
)


@dataclass(frozen=True)
class Summary:
    """Mean/spread of one metric across seeds."""

    mean: float
    stdev: float
    low: float
    high: float
    samples: int

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.stdev:.2g} (n={self.samples})"


def summarize(values: Sequence[float], confidence_z: float = 1.96) -> Summary:
    """Mean, sample stdev and a z-interval for ``values``.

    Args:
        values: at least one sample.
        confidence_z: z-score of the interval half-width (1.96 -> ~95%).
    """
    if not values:
        raise ValueError("cannot summarize zero samples")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    half = confidence_z * stdev / math.sqrt(n)
    return Summary(mean=mean, stdev=stdev, low=mean - half,
                   high=mean + half, samples=n)


def aggregate_runs(runs: Iterable[RunMetrics]) -> dict[str, Summary]:
    """Per-metric summaries over several same-scenario runs."""
    runs = list(runs)
    if not runs:
        raise ValueError("no runs to aggregate")
    return {name: summarize([float(getattr(run, name)) for run in runs])
            for name in AGGREGATABLE_METRICS}


def across_seeds(run_one: Callable[[int], RunMetrics],
                 seeds: Sequence[int]) -> dict[str, Summary]:
    """Run ``run_one(seed)`` for every seed and aggregate the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return aggregate_runs(run_one(seed) for seed in seeds)


def reduction_summary(baseline_runs: Sequence[RunMetrics],
                      treated_runs: Sequence[RunMetrics],
                      metric: str) -> Summary:
    """Paired percent-reduction summary for one metric across seeds.

    Pairs run *i* of the baseline with run *i* of the treatment (same seed)
    — the paper's %-reduction-vs-FIFO reporting, with spread.
    """
    if len(baseline_runs) != len(treated_runs):
        raise ValueError("baseline and treated runs must pair up by seed")
    reductions = []
    for base, treated in zip(baseline_runs, treated_runs):
        base_value = float(getattr(base, metric))
        treated_value = float(getattr(treated, metric))
        if base_value == 0:
            reductions.append(0.0)
        else:
            reductions.append((1.0 - treated_value / base_value) * 100.0)
    return summarize(reductions)
