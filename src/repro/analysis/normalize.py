"""Normalization helpers matching the paper's reporting conventions.

Figs. 4–5 report metrics "normalized ... by dividing the maximum value of
the flow-level method"; Figs. 6–9 report percent reductions against FIFO.
"""

from __future__ import annotations

from typing import Sequence


def normalize_by_max(values: Sequence[float],
                     reference: Sequence[float] | None = None) -> list[float]:
    """Divide ``values`` by the maximum of ``reference`` (default: itself).

    This is the paper's Fig. 4/5 convention: every series is scaled by the
    flow-level method's maximum, so the flow-level curve peaks at 1.0.
    """
    pool = reference if reference is not None else values
    if not pool:
        return []
    peak = max(pool)
    if peak == 0:
        return [0.0 for __ in values]
    return [v / peak for v in values]


def percent_reduction(baseline: float, value: float) -> float:
    """``(1 - value/baseline) * 100`` — positive when ``value`` improved."""
    if baseline == 0:
        return 0.0
    return (1.0 - value / baseline) * 100.0


def speedup(baseline: float, value: float) -> float:
    """How many times faster ``value`` is than ``baseline``."""
    if value == 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / value
