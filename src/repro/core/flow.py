"""The unsplittable flow abstraction (paper §III-A).

A flow ``f`` has a fixed bandwidth demand ``d^f`` and is forwarded along a
single path; it consumes ``d^f`` on every link of that path for its whole
lifetime. The paper's congestion-free constraints are enforced by the network
substrate (:mod:`repro.network`), not here — a :class:`Flow` is a pure value
object and placement state (the chosen path, the start time) lives in the
network and simulator.

Units used throughout the library:

* bandwidth / demand / capacity — **Mbit/s** (so a 1 Gbps link is 1000.0),
* flow size — **Mbit**,
* time — **seconds** (``duration = size / demand`` for a trace flow).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

_flow_counter = itertools.count()


def flow_id_state() -> int:
    """The next integer :func:`next_flow_id` would hand out.

    Flow ids feed the ECMP-style path hash
    (:meth:`~repro.core.planner.EventPlanner.desired_path`), so simulation
    results depend on the counter state at scenario-build time. The
    experiment runner snapshots and restores it around each cell to make
    every cell's result a pure function of its spec.
    """
    global _flow_counter
    value = next(_flow_counter)
    _flow_counter = itertools.count(value)
    return value


def set_flow_id_state(value: int) -> None:
    """Reset the flow-id counter so the next id is ``f{value}``.

    Only safe when flows minted under the old counter state will never share
    a network with flows minted under the new one (hermetic experiment
    cells); colliding ids would corrupt placement bookkeeping.
    """
    global _flow_counter
    _flow_counter = itertools.count(value)


class FlowKind(enum.Enum):
    """Why a flow exists; only used for bookkeeping and reporting."""

    BACKGROUND = "background"
    """Pre-existing traffic injected to reach a target utilization."""

    UPDATE = "update"
    """A flow belonging to an update event (new or rerouted by the event)."""


def next_flow_id() -> str:
    """Return a process-unique flow id (``f0``, ``f1``, ...)."""
    return f"f{next(_flow_counter)}"


@dataclass(frozen=True)
class Flow:
    """An unsplittable flow with a fixed bandwidth demand.

    Attributes:
        flow_id: unique identifier.
        src: source host (a node name in the topology).
        dst: destination host.
        demand: bandwidth requirement ``d^f`` in Mbit/s; must be positive.
        size: flow volume in Mbit; ``0`` means "no intrinsic size" (the
            duration must then be given explicitly).
        duration: transmission time in seconds once the flow starts. When
            ``None`` it is derived as ``size / demand``.
        event_id: id of the owning update event, or ``None`` for background.
        kind: background vs. update-event flow.
    """

    flow_id: str
    src: str
    dst: str
    demand: float
    size: float = 0.0
    duration: float | None = None
    event_id: str | None = None
    kind: FlowKind = FlowKind.BACKGROUND

    def __post_init__(self):
        if self.demand <= 0:
            raise ValueError(f"flow {self.flow_id}: demand must be positive, "
                             f"got {self.demand}")
        if self.size < 0:
            raise ValueError(f"flow {self.flow_id}: size must be >= 0")
        if self.duration is not None and self.duration < 0:
            raise ValueError(f"flow {self.flow_id}: duration must be >= 0")
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src and dst are both "
                             f"{self.src!r}; a flow needs two endpoints")

    @property
    def service_time(self) -> float:
        """Transmission time in seconds once the flow is placed.

        Explicit ``duration`` wins; otherwise it is derived from the size.
        A flow with neither (size 0, duration None) is treated as permanent
        and reports ``inf`` — useful for static background traffic.
        """
        if self.duration is not None:
            return self.duration
        if self.size > 0:
            return self.size / self.demand
        return float("inf")

    def replace(self, **changes) -> "Flow":
        """Return a copy of this flow with the given fields replaced."""
        from dataclasses import replace as _replace
        return _replace(self, **changes)

    def to_payload(self) -> dict:
        """JSON-ready encoding; exact inverse of :meth:`from_payload`.

        Floats survive the JSON round-trip bit-exactly (repr-based), which
        the crash-recovery checkpoints rely on: a restored flow must have
        the identical demand, or residual arithmetic diverges.
        """
        return {"flow_id": self.flow_id, "src": self.src, "dst": self.dst,
                "demand": self.demand, "size": self.size,
                "duration": self.duration, "event_id": self.event_id,
                "kind": self.kind.value}

    @classmethod
    def from_payload(cls, payload: dict) -> "Flow":
        """Rebuild a flow from :meth:`to_payload` output."""
        return cls(flow_id=payload["flow_id"], src=payload["src"],
                   dst=payload["dst"], demand=payload["demand"],
                   size=payload["size"], duration=payload["duration"],
                   event_id=payload["event_id"],
                   kind=FlowKind(payload["kind"]))


@dataclass(frozen=True)
class Placement:
    """A flow together with the path it occupies in the network."""

    flow: Flow
    path: tuple[str, ...]

    def __post_init__(self):
        if len(self.path) < 2:
            raise ValueError("a placement path needs at least two nodes")
        if self.path[0] != self.flow.src or self.path[-1] != self.flow.dst:
            raise ValueError(
                f"path endpoints {self.path[0]!r}->{self.path[-1]!r} do not "
                f"match flow endpoints {self.flow.src!r}->{self.flow.dst!r}")

    @property
    def links(self) -> tuple[tuple[str, str], ...]:
        """The directed links traversed by the path.

        Interned candidate paths carry their links precomputed; for plain
        node tuples the zip is computed once and cached on the instance —
        placements are read far more often than they are created.
        """
        links = getattr(self.path, "links", None)
        if links is not None:
            return links
        links = self.__dict__.get("_links")
        if links is None:
            links = tuple(zip(self.path[:-1], self.path[1:]))
            object.__setattr__(self, "_links", links)
        return links


@dataclass
class FlowStats:
    """Mutable per-flow runtime statistics collected by the simulator."""

    start_time: float | None = None
    finish_time: float | None = None
    migrations: int = field(default=0)
    """How many times the flow was rerouted to make room for update flows."""

    @property
    def completed(self) -> bool:
        return self.finish_time is not None
