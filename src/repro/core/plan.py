"""Plan objects produced by the event planner and consumed by the executor.

Planning and execution are deliberately separated: the planner runs against a
copy-on-write :class:`~repro.network.view.NetworkView` so that schedulers can
*probe* the update cost of many candidate events per round (LMTF samples
``α+1`` of them) without touching the real network, and the executor later
replays the chosen plan against live state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.event import UpdateEvent
from repro.core.flow import Flow


@dataclass(frozen=True)
class Migration:
    """Reroute one existing flow to free bandwidth on a congested link.

    The migrated traffic of this migration — the term it contributes to
    ``Cost(U)`` in Definition 2 — is the flow's bandwidth demand.
    """

    flow: Flow
    old_path: tuple[str, ...]
    new_path: tuple[str, ...]

    @property
    def migrated_traffic(self) -> float:
        """Bandwidth demand moved by this migration (Mbit/s)."""
        return self.flow.demand


@dataclass(frozen=True)
class FlowPlan:
    """How one flow of an update event is accommodated.

    Attributes:
        flow: the event flow being inserted.
        path: the path selected for it.
        migrations: existing flows that must move *before* this flow can be
            placed — the set ``F_a`` of Definition 1. Empty when the path had
            sufficient residual bandwidth.
    """

    flow: Flow
    path: tuple[str, ...]
    migrations: tuple[Migration, ...] = ()

    @property
    def cost(self) -> float:
        """Migrated traffic charged to this flow: ``sum(F_a)``."""
        return sum(m.migrated_traffic for m in self.migrations)


@dataclass
class EventPlan:
    """A complete plan for one update event.

    Attributes:
        event: the event being planned.
        flow_plans: one :class:`FlowPlan` per successfully planned flow, in
            planning order.
        blocked: flows for which no placement exists even with migration;
            an event with blocked flows is infeasible against the probed
            network state and must wait.
        planning_ops: number of elementary planning operations performed
            (path feasibility checks + migration-candidate scans); the
            simulated plan-time model charges time proportional to this.
    """

    event: UpdateEvent
    flow_plans: tuple[FlowPlan, ...] = ()
    blocked: tuple[Flow, ...] = ()
    planning_ops: int = 0

    @property
    def feasible(self) -> bool:
        """True when every flow of the event found a placement."""
        return not self.blocked

    @property
    def cost(self) -> float:
        """``Cost(U)``: total migrated traffic over all flows (Definition 2)."""
        return sum(fp.cost for fp in self.flow_plans)

    @property
    def migrations(self) -> tuple[Migration, ...]:
        """All migrations of the plan, in execution order."""
        return tuple(m for fp in self.flow_plans for m in fp.migrations)

    @property
    def migration_count(self) -> int:
        return sum(len(fp.migrations) for fp in self.flow_plans)


@dataclass
class ExecutionRecord:
    """What actually happened when a plan was executed.

    Produced by the executor and consumed by the metrics collector.

    Attributes:
        plan: the executed plan.
        start_time: simulated time execution began (after planning).
        migration_time: simulated seconds spent draining migrations.
        install_time: simulated seconds spent installing the event's flows.
        finish_setup_time: time at which all event flows were running.
        attempts: execution attempts made (1 on a reliable control plane).
        retry_time: simulated seconds lost to failed attempts, backoff
            waits, and control-plane latency jitter; included in
            ``finish_setup_time``.
        stage_count: stages of the compiled schedule actually applied
            (1 under atomic compilation).
        max_transient_overload: worst fractional capacity overshoot any
            link saw while a stage was in flight (0.0 when congestion-free).
        epsilon: the augmentation knob the plan was compiled with.
    """

    plan: EventPlan
    start_time: float = 0.0
    migration_time: float = 0.0
    install_time: float = 0.0
    finish_setup_time: float = 0.0
    rerouted_flow_ids: tuple[str, ...] = field(default=())
    attempts: int = 1
    retry_time: float = 0.0
    stage_count: int = 1
    max_transient_overload: float = 0.0
    epsilon: float = 0.0
