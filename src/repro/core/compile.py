"""Compile an :class:`EventPlan` into a consistency-aware staged schedule.

The paper treats an event's update as one atomic reroute+install, but the
related consistency literature ("Short Schedules for Fast Flow Rerouting",
"The Augmentation-Speed Tradeoff for Consistent Network Updates") makes the
*transition* itself the object of study: order the primitive steps so no
intermediate state oversubscribes a link, and optionally trade a bounded ε
of transient over-subscription for a shorter schedule. This module is that
compilation stage, sitting between planning and execution:

* ``atomic`` (the default) — the whole plan is one stage, exactly today's
  one-shot behavior. The stage's recorded ``transient_overload`` is the
  worst one-shot flip overshoot from
  :func:`repro.core.consistency.transient_overloads` (0.0 when the plan is
  one-shot safe), so the mode doubles as the one-shot-safety probe.
* ``staged`` — strict congestion-freedom: steps are ordered by
  :func:`repro.core.ordering.find_safe_order` and greedily batched into the
  longest prefixes whose *transient* load (a migrated flow occupies both
  its old and new path until the stage commits; a placed flow sends
  immediately) stays within every link's capacity.
* ``augmented`` — like ``staged`` but any link may transiently carry up to
  ``(1 + ε) · capacity`` inside a stage, which merges stages and shortens
  the schedule; the settled state after every stage is back to
  ``≤ capacity`` because settled loads are exactly the planner-verified
  sequential states.

A plan whose sequential order is safe against the compiled-against state
(our planner guarantees this at plan time) always compiles into stages that
respect the ``(1 + ε)`` bound: a single step's transient load on the links
it adds equals its settled load, which the planner already bounded by
capacity. Under state *drift* (churn between planning and execution) a step
may not fit even alone; it is then emitted as its own stage with the
overshoot recorded in ``transient_overload`` rather than dropped — the
executor's live network still enforces hard capacity and its failure path
(rollback + requeue) handles the drift, while the compiler stays total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.consistency import transient_overloads
from repro.core.ordering import Step, StepKind, find_safe_order, plan_steps
from repro.core.plan import EventPlan, Migration
from repro.network.link import EPS, LinkId, path_links
from repro.network.state import NetworkState

#: Recognized compilation modes.
COMPILE_MODES = ("atomic", "staged", "augmented")


@dataclass(frozen=True)
class PlanCompilerConfig:
    """How plans are compiled into staged schedules.

    Attributes:
        mode: one of :data:`COMPILE_MODES` — ``atomic`` (one-shot, the
            byte-identical default), ``staged`` (strict congestion-free
            stages), ``augmented`` (stages may transiently oversubscribe
            any link by ``≤ epsilon · capacity``).
        epsilon: the augmentation knob; must be 0 unless ``mode`` is
            ``augmented``.
    """

    mode: str = "atomic"
    epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in COMPILE_MODES:
            raise ValueError(f"unknown compile mode {self.mode!r}; "
                             f"pick one of {COMPILE_MODES}")
        if self.epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if self.epsilon > 0 and self.mode != "augmented":
            raise ValueError(
                f"epsilon > 0 requires mode='augmented', got {self.mode!r}")


@dataclass(frozen=True)
class Stage:
    """One batch of steps applied together, then settled.

    ``transient_overload`` is the worst-link fractional overshoot of base
    capacity while the stage is in flight: 0.0 for a congestion-free stage,
    ``≤ ε`` for an augmented stage, larger only when the compiled-against
    state had drifted so far that a single step no longer fits alone.
    """

    steps: tuple[Step, ...]
    transient_overload: float = 0.0


@dataclass(frozen=True)
class CompiledPlan:
    """An ordered sequence of stages realizing ``plan``."""

    plan: EventPlan
    mode: str
    epsilon: float
    stages: tuple[Stage, ...]

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def max_transient_overload(self) -> float:
        """Worst fractional capacity overshoot across all stages."""
        return max((s.transient_overload for s in self.stages), default=0.0)

    @property
    def steps(self) -> tuple[Step, ...]:
        """All steps in execution order (stage by stage)."""
        return tuple(s for stage in self.stages for s in stage.steps)


def compile_plan(state: NetworkState, plan: EventPlan,
                 config: PlanCompilerConfig | None = None) -> CompiledPlan:
    """Compile ``plan`` against ``state`` into a :class:`CompiledPlan`.

    Read-only on ``state`` (safe ordering probes a throwaway view). The
    compiled steps are a permutation of :func:`plan_steps`; when the plan's
    own sequential order is safe against ``state`` — always true when
    compiling against the state the plan was computed on — the permutation
    is the identity, so stage-by-stage execution reaches a final state
    byte-identical to the atomic :func:`repro.core.executor.apply_plan`.
    """
    config = config or PlanCompilerConfig()
    steps = plan_steps(plan)
    if config.mode == "atomic":
        overloads = transient_overloads(state, plan)
        overload = max((o.excess / o.capacity
                        for o in overloads if o.capacity > 0), default=0.0)
        return CompiledPlan(
            plan=plan, mode=config.mode, epsilon=0.0,
            stages=(Stage(steps=tuple(steps),
                          transient_overload=overload),))
    ordering = find_safe_order(state, steps)
    # A safe order exists in plan order against the planned-on state; under
    # drift, stuck steps (swap deadlocks) are appended so execution still
    # attempts every step — the live network enforces capacity for real.
    sequence = ordering.order + ordering.stuck
    stages = _batch_stages(state, sequence, config.epsilon)
    if not stages:
        stages = (Stage(steps=()),)
    return CompiledPlan(plan=plan, mode=config.mode,
                        epsilon=config.epsilon, stages=stages)


# ----------------------------------------------------------------- internals


def _transient_additions(step: Step) -> dict[LinkId, float]:
    """Per-link load a step adds *while its stage is in flight*.

    A migrated flow occupies both paths until the stage commits, so only
    links new to its path gain load; a placed flow loads its whole path.
    """
    added: dict[LinkId, float] = {}
    if step.kind is StepKind.MIGRATE:
        migration = step.payload
        assert isinstance(migration, Migration)
        old = frozenset(path_links(migration.old_path))
        for link in path_links(step.path):
            if link not in old:
                added[link] = added.get(link, 0.0) + step.demand
    else:
        for link in path_links(step.path):
            added[link] = added.get(link, 0.0) + step.demand
    return added


def _settle(step: Step, delta: dict[LinkId, float]) -> None:
    """Fold a committed step's steady-state load shift into ``delta``."""
    if step.kind is StepKind.MIGRATE:
        migration = step.payload
        assert isinstance(migration, Migration)
        old = frozenset(path_links(migration.old_path))
        new = frozenset(path_links(migration.new_path))
        for link in new - old:
            delta[link] = delta.get(link, 0.0) + step.demand
        for link in old - new:
            delta[link] = delta.get(link, 0.0) - step.demand
    else:
        for link in path_links(step.path):
            delta[link] = delta.get(link, 0.0) + step.demand


def _batch_stages(state: NetworkState, sequence: list[Step],
                  epsilon: float) -> tuple[Stage, ...]:
    """Greedy longest-prefix batching of ``sequence`` into stages.

    ``delta`` shadows the settled load shift of the stages already closed
    (a plain dict, not a capacity-enforcing view: augmented stages may
    legally exceed capacity mid-schedule). A step joins the current batch
    iff every link it loads stays within ``(1 + ε) · capacity``; a step
    that does not fit even in an empty batch becomes its own stage with
    the overshoot recorded.
    """
    delta: dict[LinkId, float] = {}
    stages: list[Stage] = []
    batch: list[Step] = []
    batch_added: dict[LinkId, float] = {}

    def headroom(link: LinkId) -> float:
        capacity = state.capacity(*link)
        return ((1.0 + epsilon) * capacity + EPS
                - state.used(*link) - delta.get(link, 0.0))

    def close() -> None:
        if not batch:
            return
        overload = 0.0
        for link, add in batch_added.items():
            capacity = state.capacity(*link)
            if capacity <= 0:
                continue
            transient = state.used(*link) + delta.get(link, 0.0) + add
            overload = max(overload, (transient - capacity) / capacity)
        stages.append(Stage(steps=tuple(batch),
                            transient_overload=max(0.0, overload)))
        for step in batch:
            _settle(step, delta)
        batch.clear()
        batch_added.clear()

    for step in sequence:
        additions = _transient_additions(step)
        fits = all(batch_added.get(link, 0.0) + add <= headroom(link)
                   for link, add in additions.items())
        if not fits and batch:
            close()
            fits = all(add <= headroom(link)
                       for link, add in additions.items())
        for link, add in additions.items():
            batch_added[link] = batch_added.get(link, 0.0) + add
        batch.append(step)
        if not fits:
            close()  # drifted singleton: emit with its overshoot recorded
    close()
    return tuple(stages)
