"""Subpackage of repro."""
