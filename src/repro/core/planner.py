"""Per-event planning: place every flow of an update event, migrating
existing flows when needed, and report ``Cost(U)`` (paper Definition 2).

The planner is the single component both *probed* (LMTF computes the cost of
``α+1`` candidate events per round) and *executed* (the chosen event's plan is
replayed on the live network), so it works against any
:class:`~repro.network.state.NetworkState` and only mutates it when asked to
``commit``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.event import UpdateEvent
from repro.core.exceptions import InsufficientBandwidthError
from repro.core.flow import Flow
from repro.core.migration import MigrationConfig, MigrationPlanner
from repro.core.plan import EventPlan, FlowPlan
from repro.network.footprint import (
    DrawCountingRandom,
    Footprint,
    FootprintRecorder,
)
from repro.network.link import EPS, path_links
from repro.network.routing.candidate import CandidatePath
from repro.network.routing.provider import PathProvider
from repro.network.state import NetworkState
from repro.network.view import NetworkView

#: How the planner picks among feasible candidate paths.
PATH_SELECTION = ("desired", "best_residual", "random", "first")

#: In which order an event's flows are planned.
FLOW_ORDERS = ("given", "largest_first", "smallest_first")


@dataclass(frozen=True)
class PlannerConfig:
    """Tunables of the event planner.

    Attributes:
        path_selection: how a flow's path is chosen.

            * ``desired`` (default, the paper's model): each flow has a
              single *desired path*, picked by a deterministic hash of its
              id over the candidate set (ECMP-style). If the desired path
              lacks residual bandwidth, existing flows are migrated off its
              congested links (Definition 1). Only when no migration set
              exists does the planner fall back to alternate paths. The
              deterministic choice also makes a probe's ``Cost(U)`` equal
              the cost realized at execution against the same state — which
              is what LMTF's comparisons assume.
            * ``best_residual`` — search all candidates, pick the largest
              bottleneck residual, and migrate only when none fits.
            * ``random`` / ``first`` — like ``best_residual`` but picking a
              uniformly random / the first feasible candidate.
        flow_order: order in which an event's flows are planned;
            ``largest_first`` packs big flows before the path pool fragments.
        allow_migration: when False the planner never migrates existing
            flows — a flow without a feasible path is simply blocked. Used
            by the Fig. 1 success-probability experiment and as an ablation.
        max_migration_paths: how many candidate paths (ordered by estimated
            migration deficit) to attempt migration on before declaring the
            flow blocked.
        migration: knobs of the migration heuristic itself.
    """

    path_selection: str = "desired"
    flow_order: str = "given"
    allow_migration: bool = True
    max_migration_paths: int = 4
    migration: MigrationConfig = field(default_factory=MigrationConfig)

    def __post_init__(self) -> None:
        if self.path_selection not in PATH_SELECTION:
            raise ValueError(f"unknown path selection "
                             f"{self.path_selection!r}; "
                             f"pick one of {PATH_SELECTION}")
        if self.flow_order not in FLOW_ORDERS:
            raise ValueError(f"unknown flow order {self.flow_order!r}; "
                             f"pick one of {FLOW_ORDERS}")
        if self.max_migration_paths < 1:
            raise ValueError("max_migration_paths must be >= 1")


class EventPlanner:
    """Plans update events against a network state."""

    def __init__(self, provider: PathProvider,
                 config: PlannerConfig | None = None) -> None:
        self._provider = provider
        self._config = config or PlannerConfig()
        self._migration = MigrationPlanner(provider, self._config.migration)

    @property
    def config(self) -> PlannerConfig:
        return self._config

    @property
    def provider(self) -> PathProvider:
        return self._provider

    # ------------------------------------------------------------ public API

    def plan_event(self, state: NetworkState, event: UpdateEvent,
                   rng: random.Random, commit: bool = False,
                   extra_protected: frozenset[str] = frozenset()) -> EventPlan:
        """Plan all flows of ``event`` against ``state``.

        Args:
            state: network state to plan against; mutated only on commit.
            rng: randomness source (path tiebreaks) — pass a seeded
                ``random.Random`` for reproducible plans.
            commit: when True and the plan is feasible, apply it to
                ``state`` (migrations rerouted, event flows placed).
            extra_protected: flow ids that must not be migrated, e.g. the
                running flows of other events in a P-LMTF batch.

        Returns:
            An :class:`EventPlan`; ``plan.feasible`` is False when at least
            one flow found no placement even with migration, in which case
            ``state`` is left untouched regardless of ``commit``.
        """
        working = NetworkView(state)
        protected = frozenset(f.flow_id for f in event.flows) | extra_protected
        flow_plans: list[FlowPlan] = []
        blocked: list[Flow] = []
        total_ops = 0
        for flow in self._ordered_flows(event):
            plan, ops = self._plan_flow(working, flow, protected, rng)
            total_ops += ops
            if plan is None:
                blocked.append(flow)
            else:
                flow_plans.append(plan)
        event_plan = EventPlan(event=event, flow_plans=tuple(flow_plans),
                               blocked=tuple(blocked),
                               planning_ops=total_ops)
        if commit and event_plan.feasible:
            working.commit()
        return event_plan

    def plan_event_probed(
            self, state: NetworkState, event: UpdateEvent,
            rng: random.Random) -> tuple[EventPlan, Footprint | None]:
        """Plan without committing, recording the plan's read footprint.

        Returns ``(plan, footprint)``. The footprint is the exact set of
        links/nodes whose state the plan depends on: as long as each one's
        version counter (:meth:`NetworkState.link_version`) is unchanged, a
        replan would reproduce this plan bit-for-bit, so callers may reuse
        it (see :class:`repro.sched.cache.ProbeCache`).

        The footprint is ``None`` — the plan is *not* memoizable — when
        planning consumed randomness (a replan at a different RNG-stream
        position could differ), made an unbounded read, or ``state`` does
        not maintain version counters. The RNG stream advances exactly as a
        plain :meth:`plan_event` call would, so probed and unprobed
        planning are interchangeable without perturbing determinism.
        """
        if not state.supports_versions:
            return self.plan_event(state, event, rng, commit=False), None
        recorder = FootprintRecorder(state)
        counting = DrawCountingRandom(rng)
        plan = self.plan_event(recorder, event, counting, commit=False)
        if counting.draws:
            return plan, None
        return plan, recorder.footprint()

    def probe_cost(self, state: NetworkState, event: UpdateEvent,
                   rng: random.Random) -> float:
        """``Cost(U)`` against the current state; ``inf`` when infeasible.

        This is what LMTF/P-LMTF compare across their ``α+1`` candidates.
        """
        plan = self.plan_event(state, event, rng, commit=False)
        return plan.cost if plan.feasible else float("inf")

    # -------------------------------------------------------------- internals

    def _ordered_flows(self, event: UpdateEvent) -> list[Flow]:
        flows = list(event.flows)
        if self._config.flow_order == "largest_first":
            flows.sort(key=lambda f: (-f.demand, f.flow_id))
        elif self._config.flow_order == "smallest_first":
            flows.sort(key=lambda f: (f.demand, f.flow_id))
        return flows

    def _plan_flow(self, state: NetworkView, flow: Flow,
                   protected: frozenset[str],
                   rng: random.Random) -> tuple[FlowPlan | None, int]:
        """Place one flow, migrating existing flows if necessary."""
        paths: Sequence[CandidatePath] = \
            self._provider.paths(flow.src, flow.dst)
        ops = 0
        if self._config.path_selection == "desired":
            desired = self.desired_path(flow, paths)
            ops += 1
            if state.path_feasible(desired, flow.demand):
                try:
                    state.place(flow, desired)
                except InsufficientBandwidthError:
                    pass  # rule-table shortage; try migration/alternates
                else:
                    return FlowPlan(flow=flow, path=desired), ops
            if self._config.allow_migration:
                plan, mig_ops = self._try_migration(state, flow, desired,
                                                    protected, rng)
                ops += mig_ops
                if plan is not None:
                    return plan, ops
            else:
                return None, ops
            # Desired path unusable even with migration: fall through to the
            # alternate-path search below. The desired path is excluded — it
            # was just proven infeasible (and its migration attempt failed),
            # so re-probing it could only repeat that result.
            paths = [p for p in paths if p is not desired]

        ops += len(paths)
        remaining = list(paths)
        while remaining:
            chosen = self._select_feasible_path(state, flow, remaining, rng)
            if chosen is None:
                break
            try:
                state.place(flow, chosen)
            except InsufficientBandwidthError:
                # Bandwidth looked fine but a switch's rule table is full;
                # drop this candidate and try the next.
                remaining.remove(chosen)
                continue
            return FlowPlan(flow=flow, path=chosen), ops
        if not self._config.allow_migration:
            return None, ops

        # No feasible path: attempt migration on the candidate paths with the
        # smallest estimated deficit first (least migration to arrange).
        ranked = sorted(paths,
                        key=lambda p: (self._deficit(state, p, flow.demand),
                                       rng.random()))
        for path in ranked[:self._config.max_migration_paths]:
            plan, mig_ops = self._try_migration(state, flow, path,
                                                protected, rng)
            ops += mig_ops
            if plan is not None:
                return plan, ops
        return None, ops

    @staticmethod
    def desired_path(flow: Flow,
                     paths: Sequence[CandidatePath]) -> CandidatePath:
        """The flow's hash-designated (ECMP-style) desired path."""
        digest = zlib.crc32(flow.flow_id.encode("utf-8"))
        return paths[digest % len(paths)]

    def _try_migration(self, state: NetworkView, flow: Flow,
                       path: Sequence[str], protected: frozenset[str],
                       rng: random.Random) -> tuple[FlowPlan | None, int]:
        """Attempt to make room for ``flow`` on ``path`` via migration."""
        attempt = NetworkView(state)
        migrations, ops = self._migration.make_room(attempt, flow, path,
                                                    protected, rng)
        if migrations is None:
            # Failed attempts still charge the planning work they did.
            return None, ops
        try:
            attempt.place(flow, path)
        except InsufficientBandwidthError:
            return None, ops
        attempt.commit()
        return FlowPlan(flow=flow, path=tuple(path),
                        migrations=tuple(migrations)), ops

    def _select_feasible_path(
            self, state: NetworkState, flow: Flow,
            paths: Sequence[CandidatePath],
            rng: random.Random) -> CandidatePath | None:
        """Pick a path with sufficient residual, or None."""
        feasible: list[tuple[float, CandidatePath]] = []
        for path in paths:
            residual = state.path_residual(path)
            if residual + EPS >= flow.demand:
                feasible.append((residual, path))
        if not feasible:
            return None
        if self._config.path_selection == "first":
            return feasible[0][1]
        if self._config.path_selection == "random":
            return rng.choice(feasible)[1]
        best_residual = max(r for r, __ in feasible)
        best = [p for r, p in feasible if r >= best_residual - EPS]
        return rng.choice(best)

    @staticmethod
    def _deficit(state: NetworkState, path: Sequence[str],
                 demand: float) -> float:
        """Total bandwidth that migration must free along ``path``."""
        return sum(max(0.0, demand - res)
                   for res in state.path_residuals(path))
