"""Replays an :class:`EventPlan` onto network state.

Planning runs on throwaway views; execution is the moment the chosen event's
migrations and placements hit real state. The executor performs the same
make-before-break order the plan was built with — migrations first (freeing
the congested links), then the event's flows — and converts the plan into
simulated time via the :class:`~repro.sim.timing.TimingModel`.

:func:`apply_plan` is the pure state-transition part, reused by P-LMTF to
mirror an already-probed plan onto its cumulative batch view so that batch
members are planned against exactly the state their predecessors will leave
behind.

Execution is no longer assumed infallible. With an unreliable
:class:`~repro.sim.controlplane.ControlPlane`, each rule install / migration
drain can fail; the executor then retries the whole plan with exponential
backoff under a :class:`RetryPolicy`, and on exhaustion (or deadline) rolls
the partial application back and raises
:class:`~repro.core.exceptions.ControlPlaneError` with the simulated time
the failed attempts consumed — the simulator requeues the event instead of
crashing the run. With the default reliable control plane the historical
single-shot path runs unchanged, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.compile import (
    CompiledPlan,
    PlanCompilerConfig,
    compile_plan,
)
from repro.core.exceptions import (
    ControlPlaneError,
    PlacementError,
    PlanningError,
    TopologyError,
)
from repro.core.ordering import Step, StepKind
from repro.core.plan import EventPlan, ExecutionRecord, FlowPlan
from repro.network.state import NetworkState
from repro.sim.crashpoint import crash_point
from repro.sim.timing import TimingModel

if TYPE_CHECKING:
    from repro.sim.controlplane import ControlPlane
    from repro.sim.hooks import HookBus

#: One applied operation and what undoes it: ``("reroute", (flow_id,
#: old_path))`` or ``("place", (flow_id,))``.
_AppliedOp = tuple[str, tuple[Any, ...]]


def apply_plan(state: NetworkState, plan: EventPlan) -> list[str]:
    """Apply a feasible plan's migrations and placements to ``state``.

    Returns the ids of the rerouted (migrated) flows. On *any* mid-way
    placement failure — insufficient bandwidth, a full rule table, a
    missing flow or invalid path — the partial application is rolled back
    before the error propagates, leaving ``state`` untouched.

    Raises:
        PlanningError: the plan has blocked flows.
        PlacementError: the state diverged from what the plan was computed
            against and the plan no longer applies (the usual case is
            ``InsufficientBandwidthError``; rule-table-limited networks
            raise its ``RuleSpaceError`` subtype).
    """
    _check_feasible(plan)
    applied: list[_AppliedOp] = []
    rerouted: list[str] = []
    try:
        for flow_plan in plan.flow_plans:
            for migration in flow_plan.migrations:
                old = state.placement(migration.flow.flow_id)
                state.reroute(migration.flow.flow_id, migration.new_path)
                applied.append(("reroute", (migration.flow.flow_id,
                                            old.path)))
                rerouted.append(migration.flow.flow_id)
            state.place(flow_plan.flow, flow_plan.path)
            applied.append(("place", (flow_plan.flow.flow_id,)))
    except (PlacementError, TopologyError):
        _rollback(state, applied)
        raise
    return rerouted


def _check_feasible(plan: EventPlan) -> None:
    if not plan.feasible:
        raise PlanningError(
            f"refusing to apply infeasible plan for event "
            f"{plan.event.event_id} ({len(plan.blocked)} blocked flows)")


def _rollback(state: NetworkState, applied: list[_AppliedOp]) -> None:
    """Undo partially applied operations, newest first."""
    for op, args in reversed(applied):
        if op == "place":
            state.remove(args[0])
        else:
            flow_id, old_path = args
            state.reroute(flow_id, old_path)


def _apply_step(state: NetworkState, step: Step,
                applied: list[_AppliedOp], rerouted: list[str]) -> None:
    """Apply one compiled step, recording its undo operation."""
    if step.kind is StepKind.MIGRATE:
        old = state.placement(step.flow_id)
        state.reroute(step.flow_id, step.path)
        applied.append(("reroute", (step.flow_id, old.path)))
        rerouted.append(step.flow_id)
    else:
        flow_plan = step.payload
        assert isinstance(flow_plan, FlowPlan)
        state.place(flow_plan.flow, step.path)
        applied.append(("place", (step.flow_id,)))


def apply_stages(state: NetworkState, compiled: CompiledPlan) -> list[str]:
    """Apply a compiled plan stage by stage; the staged analog of
    :func:`apply_plan`.

    Returns the rerouted flow ids. Rollback is *whole-plan*: a failure in
    any stage undoes every stage already applied (newest op first), so the
    caller sees the same all-or-nothing contract as :func:`apply_plan` —
    settled intermediate states never leak past a raised error. The
    ``"stage"`` crash point fires between stages for the chaos harness.
    """
    _check_feasible(compiled.plan)
    applied: list[_AppliedOp] = []
    rerouted: list[str] = []
    try:
        for index, stage in enumerate(compiled.stages):
            if index:
                crash_point("stage")
            for step in stage.steps:
                _apply_step(state, step, applied, rerouted)
    except (PlacementError, TopologyError):
        _rollback(state, applied)
        raise
    return rerouted


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs for execution on an unreliable control plane.

    Attributes:
        max_retries: additional attempts after the first failure.
        backoff_s: wait before the first retry; doubles each retry
            (``backoff_s * backoff_factor ** (attempt - 1)``).
        backoff_factor: exponential backoff multiplier.
        deadline_s: per-plan budget of simulated seconds (attempt time +
            backoff). Execution aborts once the next wait would exceed it,
            even with retries remaining.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    deadline_s: float = math.inf

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


class PlanExecutor:
    """Applies event plans to a network state and accounts their time.

    Args:
        timing: simulated-time model for plan/migration/install costs.
        control_plane: per-operation failure/latency model; ``None`` (or
            any :attr:`~repro.sim.controlplane.ControlPlane.reliable`
            model) takes the historical infallible path.
        retry: retry/backoff/deadline policy used when ``control_plane``
            is unreliable.
        hooks: optional :class:`~repro.sim.hooks.HookBus`; when given, the
            executor announces burned retries as
            :class:`~repro.sim.hooks.ExecutionRetried` instead of the
            caller scraping ``attempts`` off records and exceptions. The
            hook fires once per execute with the *failed* attempt count —
            both on eventual success and right before a
            :class:`~repro.core.exceptions.ControlPlaneError` — matching
            the historical accounting exactly (a propagating
            ``PlacementError`` reports nothing, as before).
        compiler: plan-compilation config. ``None`` or ``atomic`` mode
            takes the historical one-shot path bit for bit (no compile
            call at all); ``staged``/``augmented`` compile each plan at
            execute time and apply it stage by stage, charging install
            latency per stage.
    """

    def __init__(self, timing: TimingModel | None = None,
                 control_plane: "ControlPlane | None" = None,
                 retry: RetryPolicy | None = None,
                 hooks: "HookBus | None" = None,
                 compiler: PlanCompilerConfig | None = None) -> None:
        self._timing = timing or TimingModel()
        self._control_plane = control_plane
        self._retry = retry or RetryPolicy()
        self._hooks = hooks
        if compiler is not None and compiler.mode == "atomic":
            compiler = None  # atomic IS the default path
        self._compiler = compiler

    @property
    def timing(self) -> TimingModel:
        return self._timing

    @property
    def retry(self) -> RetryPolicy:
        return self._retry

    @property
    def compiler(self) -> PlanCompilerConfig | None:
        return self._compiler

    def execute(self, state: NetworkState, plan: EventPlan,
                start_time: float) -> ExecutionRecord:
        """Apply ``plan`` to ``state`` starting at ``start_time``.

        Returns an :class:`ExecutionRecord` whose ``finish_setup_time`` is
        when all the event's flows are installed and running; their
        transmissions then complete on their own service times. On an
        unreliable control plane the record also carries the attempts made
        and the simulated time lost to retries.

        Raises:
            PlanningError: the plan has blocked flows (callers must only
                execute feasible plans).
            PlacementError: the state changed since planning and the plan
                no longer fits — the caller should replan. Not retried
                (the same state rejects the same plan); state is rolled
                back before this propagates.
            ControlPlaneError: every attempt failed on the control plane
                or the retry deadline elapsed; state is rolled back.
        """
        cp = self._control_plane
        if self._compiler is not None:
            return self._execute_compiled(state, plan, start_time, cp)
        migration_time = self._timing.migration_time(plan.migrations)
        install_time = self._timing.install_time(len(plan.flow_plans))
        if cp is None or cp.reliable:
            rerouted = apply_plan(state, plan)
            return ExecutionRecord(
                plan=plan,
                start_time=start_time,
                migration_time=migration_time,
                install_time=install_time,
                finish_setup_time=start_time + migration_time + install_time,
                rerouted_flow_ids=tuple(rerouted),
            )
        _check_feasible(plan)
        base_time = migration_time + install_time
        elapsed = 0.0
        attempts = 0
        while True:
            attempts += 1
            jitter = cp.attempt_jitter_s()
            rerouted = self._attempt(state, plan, cp)
            # A failed attempt still occupied the control plane for the
            # full issue-and-wait window; charge it like a successful one.
            elapsed += base_time + jitter
            if rerouted is not None:
                self._note_retries(plan, attempts)
                return ExecutionRecord(
                    plan=plan,
                    start_time=start_time,
                    migration_time=migration_time,
                    install_time=install_time,
                    finish_setup_time=start_time + elapsed,
                    rerouted_flow_ids=tuple(rerouted),
                    attempts=attempts,
                    retry_time=elapsed - base_time,
                )
            retries_left = self._retry.max_retries - (attempts - 1)
            backoff = (self._retry.backoff_s
                       * self._retry.backoff_factor ** (attempts - 1))
            if retries_left <= 0:
                self._note_retries(plan, attempts)
                raise ControlPlaneError(
                    f"event {plan.event.event_id}: all {attempts} "
                    f"execution attempts failed on the control plane",
                    attempts=attempts, elapsed=elapsed)
            if elapsed + backoff > self._retry.deadline_s:
                self._note_retries(plan, attempts)
                raise ControlPlaneError(
                    f"event {plan.event.event_id}: execution deadline "
                    f"{self._retry.deadline_s:.3f}s exceeded after "
                    f"{attempts} attempt(s)",
                    attempts=attempts, elapsed=elapsed)
            elapsed += backoff

    def _execute_compiled(self, state: NetworkState, plan: EventPlan,
                          start_time: float,
                          cp: "ControlPlane | None") -> ExecutionRecord:
        """Staged/augmented execution: compile, then apply stage by stage.

        The plan is compiled against the live state at execute time — the
        same state it was planned against in the default round pipeline —
        so the compiled step order is the plan order and the settled final
        state is byte-identical to the atomic path's. Install latency is
        charged per stage, so longer schedules cost simulated time.
        """
        _check_feasible(plan)
        assert self._compiler is not None
        compiled = compile_plan(state, plan, self._compiler)
        migration_time = self._timing.migration_time(plan.migrations)
        install_time = self._timing.install_time(
            len(plan.flow_plans), stages=compiled.stage_count)
        if cp is None or cp.reliable:
            rerouted = apply_stages(state, compiled)
            return ExecutionRecord(
                plan=plan,
                start_time=start_time,
                migration_time=migration_time,
                install_time=install_time,
                finish_setup_time=start_time + migration_time + install_time,
                rerouted_flow_ids=tuple(rerouted),
                stage_count=compiled.stage_count,
                max_transient_overload=compiled.max_transient_overload,
                epsilon=compiled.epsilon,
            )
        base_time = migration_time + install_time
        elapsed = 0.0
        attempts = 0
        while True:
            attempts += 1
            jitter = cp.attempt_jitter_s()
            rerouted_attempt = self._attempt_compiled(state, compiled, cp)
            elapsed += base_time + jitter
            if rerouted_attempt is not None:
                self._note_retries(plan, attempts)
                return ExecutionRecord(
                    plan=plan,
                    start_time=start_time,
                    migration_time=migration_time,
                    install_time=install_time,
                    finish_setup_time=start_time + elapsed,
                    rerouted_flow_ids=tuple(rerouted_attempt),
                    attempts=attempts,
                    retry_time=elapsed - base_time,
                    stage_count=compiled.stage_count,
                    max_transient_overload=compiled.max_transient_overload,
                    epsilon=compiled.epsilon,
                )
            retries_left = self._retry.max_retries - (attempts - 1)
            backoff = (self._retry.backoff_s
                       * self._retry.backoff_factor ** (attempts - 1))
            if retries_left <= 0:
                self._note_retries(plan, attempts)
                raise ControlPlaneError(
                    f"event {plan.event.event_id}: all {attempts} "
                    f"execution attempts failed on the control plane",
                    attempts=attempts, elapsed=elapsed)
            if elapsed + backoff > self._retry.deadline_s:
                self._note_retries(plan, attempts)
                raise ControlPlaneError(
                    f"event {plan.event.event_id}: execution deadline "
                    f"{self._retry.deadline_s:.3f}s exceeded after "
                    f"{attempts} attempt(s)",
                    attempts=attempts, elapsed=elapsed)
            elapsed += backoff

    def _attempt_compiled(self, state: NetworkState, compiled: CompiledPlan,
                          cp: "ControlPlane") -> list[str] | None:
        """One staged execution attempt under an unreliable ``cp``.

        Consumes the same control-plane RNG sequence as :meth:`_attempt`
        whenever the compiled step order equals the plan order (the
        no-drift case): one ``migration_ok`` per migrate step and one
        ``install_ok`` per place step, in plan order.
        """
        snapshot_fn = getattr(state, "version_snapshot", None)
        restore_fn = getattr(state, "restore_versions", None)
        versions = snapshot_fn() if snapshot_fn is not None else None
        applied: list[_AppliedOp] = []
        rerouted: list[str] = []

        def undo() -> None:
            _rollback(state, applied)
            if versions is not None and restore_fn is not None:
                restore_fn(versions)

        try:
            for index, stage in enumerate(compiled.stages):
                if index:
                    crash_point("stage")
                for step in stage.steps:
                    if step.kind is StepKind.MIGRATE:
                        if not cp.migration_ok():
                            undo()
                            return None
                    elif not cp.install_ok():
                        undo()
                        return None
                    _apply_step(state, step, applied, rerouted)
        except (PlacementError, TopologyError):
            undo()
            raise
        return rerouted

    def _note_retries(self, plan: EventPlan, attempts: int) -> None:
        """Announce the failed attempts of one execute on the hook bus."""
        if attempts > 1 and self._hooks is not None:
            from repro.sim.hooks import ExecutionRetried
            self._hooks.emit(ExecutionRetried(
                event_id=plan.event.event_id, retries=attempts - 1))

    def _attempt(self, state: NetworkState, plan: EventPlan,
                 cp: "ControlPlane") -> list[str] | None:
        """One execution attempt under ``cp``.

        Returns the rerouted flow ids on success, or ``None`` when the
        control plane failed an operation — in both the failure and the
        placement-divergence case every operation already applied is rolled
        back, so the state is bit-identical to before the attempt. That
        includes the version counters (the roll-forward/roll-back pair
        would otherwise bump them with no net change), so memoized probe
        plans stay provably fresh across a failed attempt.
        """
        # Version counters are a Network extension, not part of the
        # NetworkState contract; probe for them instead of isinstance so
        # any version-tracking state benefits.
        snapshot_fn = getattr(state, "version_snapshot", None)
        restore_fn = getattr(state, "restore_versions", None)
        versions = snapshot_fn() if snapshot_fn is not None else None
        applied: list[_AppliedOp] = []
        rerouted: list[str] = []

        def undo() -> None:
            _rollback(state, applied)
            if versions is not None and restore_fn is not None:
                restore_fn(versions)

        try:
            for flow_plan in plan.flow_plans:
                for migration in flow_plan.migrations:
                    if not cp.migration_ok():
                        undo()
                        return None
                    old = state.placement(migration.flow.flow_id)
                    state.reroute(migration.flow.flow_id,
                                  migration.new_path)
                    applied.append(("reroute", (migration.flow.flow_id,
                                                old.path)))
                    rerouted.append(migration.flow.flow_id)
                if not cp.install_ok():
                    undo()
                    return None
                state.place(flow_plan.flow, flow_plan.path)
                applied.append(("place", (flow_plan.flow.flow_id,)))
        except (PlacementError, TopologyError):
            undo()
            raise
        return rerouted
