"""Replays an :class:`EventPlan` onto network state.

Planning runs on throwaway views; execution is the moment the chosen event's
migrations and placements hit real state. The executor performs the same
make-before-break order the plan was built with — migrations first (freeing
the congested links), then the event's flows — and converts the plan into
simulated time via the :class:`~repro.sim.timing.TimingModel`.

:func:`apply_plan` is the pure state-transition part, reused by P-LMTF to
mirror an already-probed plan onto its cumulative batch view so that batch
members are planned against exactly the state their predecessors will leave
behind.
"""

from __future__ import annotations

from repro.core.exceptions import PlacementError, PlanningError, TopologyError
from repro.core.plan import EventPlan, ExecutionRecord
from repro.network.state import NetworkState
from repro.sim.timing import TimingModel


def apply_plan(state: NetworkState, plan: EventPlan) -> list[str]:
    """Apply a feasible plan's migrations and placements to ``state``.

    Returns the ids of the rerouted (migrated) flows. On *any* mid-way
    placement failure — insufficient bandwidth, a full rule table, a
    missing flow or invalid path — the partial application is rolled back
    before the error propagates, leaving ``state`` untouched.

    Raises:
        PlanningError: the plan has blocked flows.
        PlacementError: the state diverged from what the plan was computed
            against and the plan no longer applies (the usual case is
            ``InsufficientBandwidthError``; rule-table-limited networks
            raise its ``RuleSpaceError`` subtype).
    """
    if not plan.feasible:
        raise PlanningError(
            f"refusing to apply infeasible plan for event "
            f"{plan.event.event_id} ({len(plan.blocked)} blocked flows)")
    applied: list[tuple[str, tuple]] = []
    rerouted: list[str] = []
    try:
        for flow_plan in plan.flow_plans:
            for migration in flow_plan.migrations:
                old = state.placement(migration.flow.flow_id)
                state.reroute(migration.flow.flow_id, migration.new_path)
                applied.append(("reroute", (migration.flow.flow_id,
                                            old.path)))
                rerouted.append(migration.flow.flow_id)
            state.place(flow_plan.flow, flow_plan.path)
            applied.append(("place", (flow_plan.flow.flow_id,)))
    except (PlacementError, TopologyError):
        _rollback(state, applied)
        raise
    return rerouted


def _rollback(state: NetworkState, applied: list[tuple[str, tuple]]) -> None:
    """Undo partially applied operations, newest first."""
    for op, args in reversed(applied):
        if op == "place":
            state.remove(args[0])
        else:
            flow_id, old_path = args
            state.reroute(flow_id, old_path)


class PlanExecutor:
    """Applies event plans to a network state and accounts their time."""

    def __init__(self, timing: TimingModel | None = None):
        self._timing = timing or TimingModel()

    @property
    def timing(self) -> TimingModel:
        return self._timing

    def execute(self, state: NetworkState, plan: EventPlan,
                start_time: float) -> ExecutionRecord:
        """Apply ``plan`` to ``state`` starting at ``start_time``.

        Returns an :class:`ExecutionRecord` whose ``finish_setup_time`` is
        when all the event's flows are installed and running; their
        transmissions then complete on their own service times.

        Raises:
            PlanningError: the plan has blocked flows (callers must only
                execute feasible plans).
            InsufficientBandwidthError: the state changed since planning and
                the plan no longer fits — the caller should replan.
        """
        rerouted = apply_plan(state, plan)
        migration_time = self._timing.migration_time(plan.migrations)
        install_time = self._timing.install_time(len(plan.flow_plans))
        return ExecutionRecord(
            plan=plan,
            start_time=start_time,
            migration_time=migration_time,
            install_time=install_time,
            finish_setup_time=start_time + migration_time + install_time,
            rerouted_flow_ids=tuple(rerouted),
        )
