"""Greedy approximation of the minimum-migration-traffic problem.

Paper §III-B / §IV-A: when a flow ``f_a`` of an update event cannot be placed
because links of its desired path lack residual bandwidth, a subset ``F_a`` of
the existing flows crossing those congested links must be migrated to other
paths so that, on every congested link, *freed + residual >= d^{f_a}*
(Eq. 3), while no migrated flow may congest its new path (Eq. 5). Choosing
the minimum-traffic ``F_a`` is NP-complete, so the paper — and this module —
uses a greedy covering heuristic.

The planner mutates the :class:`NetworkState` it is given (rerouting the
migrated flows and leaving room for the new flow), so callers hand it a
throwaway :class:`~repro.network.view.NetworkView` per attempt and commit
only successful attempts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import InsufficientBandwidthError
from repro.core.flow import Flow, Placement
from repro.core.plan import Migration
from repro.network.link import EPS, LinkId, path_links
from repro.network.routing.provider import PathProvider
from repro.network.state import NetworkState

#: Migration-set selection strategies (ablation knob; the paper's heuristic
#: corresponds to ``best_fit``).
STRATEGIES = ("best_fit", "smallest_first", "largest_first")


@dataclass(frozen=True)
class MigrationConfig:
    """Tunables of the migration heuristic.

    Attributes:
        strategy: how flows are picked off a congested link —
            ``best_fit`` first tries the single smallest flow whose demand
            covers the whole deficit and falls back to smallest-first
            accumulation (minimizes migrated traffic, the paper's goal);
            ``smallest_first`` / ``largest_first`` are ablation variants.
        max_rounds: migrations can shift congestion onto other links of the
            desired path; the planner re-derives the congested-link set and
            retries up to this many rounds before declaring the path
            infeasible.
        max_migrations_per_flow: hard cap on ``|F_a|`` so pathological states
            cannot trigger migration storms.
        prefer_disjoint: when choosing the new path of a migrated flow,
            prefer paths that share no link with the new flow's desired path,
            so the migration cannot re-congest it.
    """

    strategy: str = "best_fit"
    max_rounds: int = 4
    max_migrations_per_flow: int = 16
    prefer_disjoint: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown migration strategy "
                             f"{self.strategy!r}; pick one of {STRATEGIES}")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.max_migrations_per_flow < 1:
            raise ValueError("max_migrations_per_flow must be >= 1")


class MigrationPlanner:
    """Computes and applies the migration set ``F_a`` for one new flow."""

    def __init__(self, provider: PathProvider,
                 config: MigrationConfig | None = None) -> None:
        self._provider = provider
        self._config = config or MigrationConfig()

    @property
    def config(self) -> MigrationConfig:
        return self._config

    # ------------------------------------------------------------ public API

    def congested_links(self, state: NetworkState, path: Sequence[str],
                        demand: float) -> list[LinkId]:
        """The set ``E^c_{f_a}`` of Definition 1 for ``path``/``demand``."""
        return [link for link, res in zip(path_links(path),
                                          state.path_residuals(path))
                if res + EPS < demand]

    def make_room(self, state: NetworkState, flow: Flow,
                  path: Sequence[str], protected: frozenset[str],
                  rng: random.Random) -> tuple[list[Migration] | None, int]:
        """Migrate existing flows off ``path`` until ``flow`` fits.

        Mutates ``state`` by rerouting the chosen flows. Returns
        ``(migrations, ops)`` — the applied migrations and the number of
        elementary planning operations performed. ``migrations`` is ``None``
        when no migration set exists within the configured budget (the
        caller then discards its attempt view, so the mutations vanish);
        the ops are still reported so failed attempts charge the planning
        work they actually did.

        Args:
            protected: flow ids that must not be migrated — the flows of the
                event currently being planned, plus anything the caller wants
                pinned.
        """
        migrations: list[Migration] = []
        ops = 0
        avoid = getattr(path, "link_set", None) or frozenset(path_links(path))
        for _round in range(self._config.max_rounds):
            congested = self.congested_links(state, path, flow.demand)
            ops += len(path) - 1
            if not congested:
                return migrations, ops
            for link in congested:
                if len(migrations) >= self._config.max_migrations_per_flow:
                    return None, ops
                relieved, link_ops = self._relieve_link(
                    state, link, flow.demand, protected, avoid, rng,
                    budget=self._config.max_migrations_per_flow
                    - len(migrations))
                ops += link_ops
                if relieved is None:
                    return None, ops
                migrations.extend(relieved)
        # Rounds exhausted: if the path is now clear we still succeeded.
        ops += len(path) - 1
        if not self.congested_links(state, path, flow.demand):
            return migrations, ops
        return None, ops

    # -------------------------------------------------------------- internals

    def _relieve_link(self, state: NetworkState, link: LinkId, demand: float,
                      protected: frozenset[str], avoid: frozenset[LinkId],
                      rng: random.Random,
                      budget: int) -> tuple[list[Migration] | None, int]:
        """Free enough bandwidth on one congested link (Eq. 3 for ``link``).

        Returns ``(migrations, ops)``; migrations is ``None`` on failure.
        """
        ops = 0
        deficit = demand - state.residual(*link)
        if deficit <= EPS:
            return [], ops
        candidates = [state.placement(fid)
                      for fid in state.flows_on_link(*link)
                      if fid not in protected]
        ops += len(candidates)
        candidates.sort(key=lambda pl: (pl.flow.demand, pl.flow.flow_id))

        chosen: list[Placement] = []
        if self._config.strategy == "best_fit":
            # Smallest single flow that covers the whole deficit by itself.
            for placement in candidates:
                if placement.flow.demand + EPS >= deficit:
                    ops += 1
                    if self._movable(state, placement, link):
                        chosen = [placement]
                        break
        if not chosen:
            order = candidates
            if self._config.strategy == "largest_first":
                order = list(reversed(candidates))
            freed = 0.0
            for placement in order:
                if freed + EPS >= deficit:
                    break
                if len(chosen) >= budget:
                    break
                ops += 1
                if self._movable(state, placement, link):
                    chosen.append(placement)
                    freed += placement.flow.demand
            if freed + EPS < deficit:
                return None, ops

        migrations: list[Migration] = []
        for placement in chosen:
            new_path = self._pick_alternate_path(state, placement, link,
                                                 avoid, rng)
            if new_path is None:
                # Raced with an earlier migration in this batch; the
                # feasibility probe in _movable() used slightly older state.
                return None, ops
            try:
                state.reroute(placement.flow.flow_id, new_path)
            except InsufficientBandwidthError:
                return None, ops
            migrations.append(Migration(flow=placement.flow,
                                        old_path=placement.path,
                                        new_path=new_path))
        return migrations, ops

    def _movable(self, state: NetworkState, placement: Placement,
                 link: LinkId) -> bool:
        """True when the flow has at least one feasible path off ``link``."""
        own = frozenset((placement.flow.flow_id,))
        for path in self._provider.paths(placement.flow.src,
                                         placement.flow.dst):
            # Provider paths are interned CandidatePaths: membership tests
            # run on the precomputed link frozenset.
            if link in path.link_set:
                continue
            if state.path_feasible(path, placement.flow.demand, ignore=own):
                return True
        return False

    def _pick_alternate_path(self, state: NetworkState, placement: Placement,
                             link: LinkId, avoid: frozenset[LinkId],
                             rng: random.Random) -> tuple[str, ...] | None:
        """Choose the new path for a migrated flow.

        Feasible paths avoiding ``link`` are ranked: paths disjoint from the
        new flow's desired path first (when ``prefer_disjoint``), then by
        bottleneck residual, with a random tiebreak.
        """
        own = frozenset((placement.flow.flow_id,))
        best: tuple[str, ...] | None = None
        best_key: tuple[bool, float, float] | None = None
        for path in self._provider.paths(placement.flow.src,
                                         placement.flow.dst):
            links = path.link_set
            if link in links:
                continue
            residual = state.path_residual(path, ignore=own)
            if residual + EPS < placement.flow.demand:
                continue
            overlaps = not avoid.isdisjoint(links) \
                if self._config.prefer_disjoint else False
            key = (overlaps, -residual, rng.random())
            if best_key is None or key < best_key:
                best, best_key = path, key
        return best
