"""Small filesystem and artifact-identity utilities shared across the
library.

Result artifacts (trace logs, experiment JSON, sweep checkpoints, service
snapshots) are what resume logic and downstream tooling trust, so they must
never be observable half-written. :func:`atomic_write_text` provides the
standard write-to-temp-then-rename pattern: a crash or interrupt mid-write
leaves either the previous content or the complete new content, never a
truncated file. :func:`payload_fingerprint` is the shared content hash
those artifacts embed so loaders can reject entries written by a
differently-parameterized producer.
"""

from __future__ import annotations

import json
import os
from hashlib import sha256
from pathlib import Path
from typing import Any


def payload_fingerprint(payload: Any, length: int = 16) -> str:
    """Stable short hash of a JSON-serializable ``payload``.

    Canonicalizes with sorted keys (and ``str()`` for stray non-JSON
    leaves), so the fingerprint depends only on content, not dict insertion
    order. Used by the sweep checkpoint loader to guard cell reuse and by
    the service's periodic snapshots to make each snapshot line
    self-validating.
    """
    if length < 4 or length > 64:
        raise ValueError(f"fingerprint length must be in [4, 64], "
                         f"got {length}")
    blob = json.dumps(payload, sort_keys=True, default=str)
    return sha256(blob.encode("utf-8")).hexdigest()[:length]


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically.

    The content goes to a temporary sibling file (same directory, so the
    final ``os.replace`` stays on one filesystem), is flushed and fsynced,
    and then renamed over the target. Readers concurrent with the write see
    the old content until the rename lands.
    """
    target = Path(path)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
