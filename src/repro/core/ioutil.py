"""Small filesystem utilities shared across the library.

Result artifacts (trace logs, experiment JSON, sweep checkpoints) are what
resume logic and downstream tooling trust, so they must never be observable
half-written. :func:`atomic_write_text` provides the standard
write-to-temp-then-rename pattern: a crash or interrupt mid-write leaves
either the previous content or the complete new content, never a truncated
file.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically.

    The content goes to a temporary sibling file (same directory, so the
    final ``os.replace`` stays on one filesystem), is flushed and fsynced,
    and then renamed over the target. Readers concurrent with the write see
    the old content until the rename lands.
    """
    target = Path(path)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
