"""Small filesystem and artifact-identity utilities shared across the
library.

Result artifacts (trace logs, experiment JSON, sweep checkpoints, service
snapshots) are what resume logic and downstream tooling trust, so they must
never be observable half-written. :func:`atomic_write_text` provides the
standard write-to-temp-then-rename pattern: a crash or interrupt mid-write
leaves either the previous content or the complete new content, never a
truncated file. :func:`payload_fingerprint` is the shared content hash
those artifacts embed so loaders can reject entries written by a
differently-parameterized producer.
"""

from __future__ import annotations

import json
import os
import random
from hashlib import sha256
from pathlib import Path
from typing import Any


def payload_fingerprint(payload: Any, length: int = 16) -> str:
    """Stable short hash of a JSON-serializable ``payload``.

    Canonicalizes with sorted keys (and ``str()`` for stray non-JSON
    leaves), so the fingerprint depends only on content, not dict insertion
    order. Used by the sweep checkpoint loader to guard cell reuse and by
    the service's periodic snapshots to make each snapshot line
    self-validating.
    """
    if length < 4 or length > 64:
        raise ValueError(f"fingerprint length must be in [4, 64], "
                         f"got {length}")
    blob = json.dumps(payload, sort_keys=True, default=str)
    return sha256(blob.encode("utf-8")).hexdigest()[:length]


def rng_state_payload(rng: random.Random) -> list:
    """JSON-ready encoding of a ``random.Random`` state.

    ``getstate()`` returns ``(version, tuple_of_ints, gauss_next)``; JSON
    has no tuples, so the shape is normalized to nested lists. Exact
    round-trip: ints are ints and ``gauss_next`` (a float or None) survives
    JSON's repr-based float encoding bit-for-bit.
    """
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def set_rng_state(rng: random.Random, payload: list) -> None:
    """Restore a ``random.Random`` from :func:`rng_state_payload` output."""
    version, internal, gauss_next = payload
    rng.setstate((version, tuple(internal), gauss_next))


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed/created entry survives a crash.

    ``os.replace`` makes the rename atomic but not durable: until the
    directory inode itself is flushed, a power loss can roll the directory
    back to a state without the new name. Platforms whose directories cannot
    be opened (or fsynced) are tolerated silently — the rename is still
    atomic there, just not crash-durable.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The content goes to a temporary sibling file (same directory, so the
    final ``os.replace`` stays on one filesystem), is flushed and fsynced,
    and then renamed over the target; the parent directory is fsynced after
    the rename so a crash immediately afterwards cannot lose the entry.
    Readers concurrent with the write see the old content until the rename
    lands.
    """
    target = Path(path)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    renamed = False
    try:
        with open(tmp, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        renamed = True
        fsync_dir(target.parent)
    finally:
        # Only the failure path may unlink: after a successful rename the
        # tmp name is gone, and a third party recreating it (or a racing
        # writer) must not have its file swept by our cleanup.
        if not renamed:
            tmp.unlink(missing_ok=True)
