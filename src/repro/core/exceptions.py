"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type to handle any library failure. The subtypes distinguish the
failure modes that the planner and simulator react to differently: a flow that
cannot be placed right now (:class:`InsufficientBandwidthError`) is retried on
a later round, whereas a malformed topology or plan is a programming error and
propagates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed or a requested node/link does not exist."""


class PlacementError(ReproError):
    """Base class for every way a state mutation (place / remove / reroute)
    can be refused. Rollback code — :meth:`NetworkState.reroute` restoring a
    flow, :func:`~repro.core.executor.apply_plan` undoing a partial plan —
    catches this one type so *any* placement failure restores state instead
    of leaving it half-applied."""


class UnknownFlowError(PlacementError):
    """An operation referenced a flow id that is not placed in the network."""


class DuplicateFlowError(PlacementError):
    """A flow id was placed twice without being removed in between."""


class InvalidPathError(PlacementError):
    """A path is not a simple connected path in the network graph."""


class InsufficientBandwidthError(PlacementError):
    """A flow could not be placed because some link lacks residual bandwidth.

    Attributes:
        bottleneck: the ``(u, v)`` link that rejected the placement, or
            ``None`` when no single link can be blamed (e.g. no path at all).
        deficit: how much bandwidth was missing on the bottleneck link.
    """

    def __init__(self, message: str, bottleneck: tuple | None = None,
                 deficit: float = 0.0):
        super().__init__(message)
        self.bottleneck = bottleneck
        self.deficit = deficit


class RuleSpaceError(InsufficientBandwidthError):
    """A flow could not be placed because a switch's rule table (TCAM) is
    full. Subclasses :class:`InsufficientBandwidthError` deliberately:
    every handler that retries/replans on a bandwidth shortage reacts the
    same way to a rule-space shortage.

    Attributes:
        switch: the switch whose rule table rejected the placement.
    """

    def __init__(self, message: str, switch: str | None = None):
        super().__init__(message)
        self.switch = switch


class PlanningError(ReproError):
    """An event plan could not be constructed (no migration set exists)."""


class ControlPlaneError(ReproError):
    """Executing a plan failed on the (unreliable) control plane.

    Raised by :class:`~repro.core.executor.PlanExecutor` after every retry
    of a plan's rule installs / migration drains failed or the per-plan
    deadline elapsed. The network state has already been rolled back to its
    pre-execution contents when this propagates; the simulator reacts by
    requeueing the event rather than crashing the run.

    Attributes:
        attempts: how many full execution attempts were made.
        elapsed: simulated seconds consumed by the failed attempts
            (attempt latencies plus backoff waits).
    """

    def __init__(self, message: str, attempts: int = 1,
                 elapsed: float = 0.0):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
