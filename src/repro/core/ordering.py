"""Greedy safe ordering of update steps (a Dionysus-lite).

The executor applies a plan in the exact order the planner built it, which
is safe against the state the plan was computed on. When the state has
*drifted* (churn between planning and execution, or a hand-assembled set of
moves), that order may no longer work even though *some* order does —
finding one is exactly the dependency-scheduling problem Dionysus solves
for consistent updates.

:func:`find_safe_order` implements the greedy core: repeatedly apply any
step that fits the current state until none is applicable. For unsplittable
flows this either finds a safe sequential order or reports the residual
deadlock (real Dionysus breaks such deadlocks by splitting flows, which the
paper's model — unsplit flows, §III-A — rules out).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.exceptions import InsufficientBandwidthError
from repro.core.plan import EventPlan, FlowPlan, Migration
from repro.network.state import NetworkState
from repro.network.view import NetworkView


class StepKind(enum.Enum):
    MIGRATE = "migrate"
    PLACE = "place"


@dataclass(frozen=True)
class Step:
    """One primitive update step of a plan."""

    kind: StepKind
    flow_id: str
    path: tuple[str, ...]
    demand: float
    payload: Migration | FlowPlan  # what this step came from

    def describe(self) -> str:
        return f"{self.kind.value} {self.flow_id} ({self.demand:.1f} Mbit/s)"


@dataclass
class OrderingResult:
    """Outcome of :func:`find_safe_order`."""

    order: list[Step]
    stuck: list[Step]

    @property
    def complete(self) -> bool:
        """True when every step was ordered (no residual deadlock)."""
        return not self.stuck


def plan_steps(plan: EventPlan) -> list[Step]:
    """Decompose a plan into its primitive steps, in plan order."""
    steps: list[Step] = []
    for flow_plan in plan.flow_plans:
        for migration in flow_plan.migrations:
            steps.append(Step(kind=StepKind.MIGRATE,
                              flow_id=migration.flow.flow_id,
                              path=migration.new_path,
                              demand=migration.flow.demand,
                              payload=migration))
        steps.append(Step(kind=StepKind.PLACE,
                          flow_id=flow_plan.flow.flow_id,
                          path=flow_plan.path,
                          demand=flow_plan.flow.demand,
                          payload=flow_plan))
    return steps


def _try_step(view: NetworkView, step: Step) -> bool:
    """Apply one step to the view if it fits; False when it does not."""
    try:
        if step.kind is StepKind.MIGRATE:
            if not view.has_flow(step.flow_id):
                return False  # its flow left the network; nothing to move
            view.reroute(step.flow_id, step.path)
        else:
            flow = step.payload.flow
            view.place(flow, step.path)
    except InsufficientBandwidthError:
        return False
    return True


def find_safe_order(state: NetworkState, steps: list[Step],
                    apply: bool = False) -> OrderingResult:
    """Greedily order ``steps`` so each fits the state left by its
    predecessors.

    Args:
        state: the state to order against (probed on a throwaway view).
        steps: primitive steps in any order (e.g. from :func:`plan_steps`,
            possibly from several plans).
        apply: when True and a complete order is found, commit it to
            ``state``; partial orders are never committed.

    Returns:
        An :class:`OrderingResult`; ``result.order`` is a safe prefix (all
        of the steps when ``result.complete``), ``result.stuck`` are steps
        no order can schedule without splitting flows.

    The greedy loop is deterministic (steps are scanned in their given
    order each round). An exchange argument suggests it is also complete
    for this step model — applying a feasible step early only frees its old
    links earlier, and any step that also needed its new links must fit
    alongside it in every safe order anyway — so a stall indicates a swap
    deadlock (mutually dependent migrations), which unsplittable flows
    cannot break. The test suite exercises both outcomes.
    """
    view = NetworkView(state)
    pending = list(steps)
    order: list[Step] = []
    progressed = True
    while pending and progressed:
        progressed = False
        remaining: list[Step] = []
        for step in pending:
            if _try_step(view, step):
                order.append(step)
                progressed = True
            else:
                remaining.append(step)
        pending = remaining
    result = OrderingResult(order=order, stuck=pending)
    if apply and result.complete:
        view.commit()
    return result


def reorder_plan(state: NetworkState, plan: EventPlan,
                 apply: bool = False) -> OrderingResult:
    """Find a safe order for ``plan``'s steps against (possibly drifted)
    ``state``. A drop-in recovery for executor staleness: when the plan's
    built-in order no longer applies, a reordering may still."""
    return find_safe_order(state, plan_steps(plan), apply=apply)
