"""Plan-level transition-consistency analysis.

The paper's related work (§VI) splits update correctness into *consistent*
update (Reitblatt et al.: flip all rules atomically under a version tag) and
*congestion-free* update (zUpdate/SWAN: order the steps so no intermediate
state oversubscribes a link; Dionysus schedules that ordering). This module
answers, for any :class:`~repro.core.plan.EventPlan`, where a plan sits on
that spectrum:

* :func:`transient_overloads` — if the whole plan flipped in **one shot**
  (every migrated flow transiently occupying both its old and new path, the
  event's new flows already sending), which links would exceed capacity and
  by how much?
* :func:`is_one_shot_safe` — no such link: a single version flip is both
  consistent *and* congestion-free.
* :func:`sequential_order_is_safe` — verifies that the plan's own
  step-by-step order (migrations before each placement, in plan order)
  never oversubscribes — a property our planner guarantees by construction,
  re-checked here independently.

The executor applies plans sequentially, so plans never *need* one-shot
safety to execute; the analysis quantifies how often the cheaper one-shot
flip would have been available (the ``consistency`` ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InsufficientBandwidthError, PlanningError
from repro.core.plan import EventPlan
from repro.network.link import EPS, LinkId, path_links
from repro.network.state import NetworkState
from repro.network.view import NetworkView


@dataclass(frozen=True)
class TransientOverload:
    """One link that a one-shot flip would transiently oversubscribe."""

    link: LinkId
    capacity: float
    transient_load: float

    @property
    def excess(self) -> float:
        return self.transient_load - self.capacity


def transient_overloads(state: NetworkState,
                        plan: EventPlan) -> list[TransientOverload]:
    """Links oversubscribed by flipping ``plan`` in one shot.

    The transient load of a link is its current usage, **plus** the demand
    of every migrated flow whose *new* path adds the link (its old-path
    usage is still in place mid-flip), **plus** the demand of every event
    flow placed on the link. Flows leaving a link release nothing until the
    flip completes, so their usage still counts.
    """
    added: dict[LinkId, float] = {}
    for flow_plan in plan.flow_plans:
        for migration in flow_plan.migrations:
            old_links = frozenset(path_links(migration.old_path))
            for link in path_links(migration.new_path):
                if link not in old_links:
                    added[link] = added.get(link, 0.0) \
                        + migration.flow.demand
        for link in path_links(flow_plan.path):
            added[link] = added.get(link, 0.0) + flow_plan.flow.demand
    overloads: list[TransientOverload] = []
    for link, extra in sorted(added.items()):
        transient = state.used(*link) + extra
        capacity = state.capacity(*link)
        if transient > capacity + EPS:
            overloads.append(TransientOverload(
                link=link, capacity=capacity, transient_load=transient))
    return overloads


def is_one_shot_safe(state: NetworkState, plan: EventPlan) -> bool:
    """True when a single atomic version flip of ``plan`` is
    congestion-free (no transient overload on any link)."""
    return not transient_overloads(state, plan)


def sequential_order_is_safe(state: NetworkState, plan: EventPlan) -> bool:
    """Independently verify the plan's own step order never oversubscribes.

    Replays each migration and placement in plan order on a throwaway view
    (whose ``place`` rejects oversubscription); the view is discarded, so
    ``state`` is untouched.

    Returns False for infeasible plans or if any intermediate step fails —
    the latter would indicate a planner bug, and the test suite asserts it
    never happens.
    """
    if not plan.feasible:
        return False
    view = NetworkView(state)
    try:
        for flow_plan in plan.flow_plans:
            for migration in flow_plan.migrations:
                view.reroute(migration.flow.flow_id, migration.new_path)
            view.place(flow_plan.flow, flow_plan.path)
    except (InsufficientBandwidthError, PlanningError):
        return False
    return True


def one_shot_safety_rate(state: NetworkState,
                         plans: list[EventPlan]) -> float:
    """Fraction of feasible plans that a one-shot flip could execute."""
    feasible = [plan for plan in plans if plan.feasible]
    if not feasible:
        return 1.0
    safe = sum(1 for plan in feasible if is_one_shot_safe(state, plan))
    return safe / len(feasible)
