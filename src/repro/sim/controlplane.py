"""Models of an unreliable SDN control plane.

The executor historically assumed every rule install and migration drain
succeeds instantly and atomically. Real control planes drop rule-install
messages, time out on busy switches, and jitter on latency — which is why
the consistent-update literature treats updates as long-running, failable
operations. A :class:`ControlPlane` decides, per elementary operation of an
execution attempt, whether that operation succeeds, and how much extra
latency the attempt pays.

Determinism contract
--------------------
* :class:`ReliableControlPlane` (and ``control_plane=None``) never draws
  randomness and never adds latency; the executor detects it via
  :attr:`ControlPlane.reliable` and takes the exact historical code path,
  so reliable runs are byte-identical to pre-fault-subsystem runs.
* :class:`UnreliableControlPlane` owns a private ``random.Random(seed)``.
  It never touches the planner's or scheduler's RNG streams, so enabling
  it cannot perturb path tiebreaks — only the injected failures differ.
  Runs are a pure function of the seed, which is what keeps a faulted
  ``--jobs N`` sweep byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

import random
from typing import Iterable


class ControlPlane:
    """Per-operation success/latency oracle consulted by the executor.

    The base class is perfectly reliable; subclasses override the three
    sampling hooks. The executor consults :attr:`reliable` once per
    ``execute`` call and skips the retry machinery (and all sampling)
    entirely when it is True.
    """

    @property
    def reliable(self) -> bool:
        """True when no operation can ever fail and latency never jitters.

        The executor uses this to take the historical fast path; a subclass
        that can fail must return False even if its current probabilities
        happen to be zero-ish.
        """
        return True

    def migration_ok(self) -> bool:
        """Whether one migration drain (reroute) succeeds."""
        return True

    def install_ok(self) -> bool:
        """Whether one flow's rule install succeeds."""
        return True

    def attempt_jitter_s(self) -> float:
        """Extra control-plane latency charged to one execution attempt."""
        return 0.0


class ReliableControlPlane(ControlPlane):
    """The perfect control plane (explicit spelling of the default)."""


class UnreliableControlPlane(ControlPlane):
    """Seeded stochastic control plane with per-operation failure modes.

    Args:
        install_failure_prob: probability one rule install fails.
        migration_failure_prob: probability one migration drain fails.
        jitter_s: per-attempt latency jitter, drawn uniformly from
            ``[0, jitter_s]`` seconds.
        seed: seed of the model's private RNG.
    """

    def __init__(self, install_failure_prob: float = 0.0,
                 migration_failure_prob: float = 0.0,
                 jitter_s: float = 0.0, seed: int = 0):
        for name, p in (("install_failure_prob", install_failure_prob),
                        ("migration_failure_prob", migration_failure_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {jitter_s}")
        self.install_failure_prob = install_failure_prob
        self.migration_failure_prob = migration_failure_prob
        self.jitter_s = jitter_s
        self.seed = seed
        self._rng = random.Random(seed)

    @property
    def reliable(self) -> bool:
        return (self.install_failure_prob == 0.0
                and self.migration_failure_prob == 0.0
                and self.jitter_s == 0.0)

    def migration_ok(self) -> bool:
        if self.migration_failure_prob == 0.0:
            return True
        return self._rng.random() >= self.migration_failure_prob

    def install_ok(self) -> bool:
        if self.install_failure_prob == 0.0:
            return True
        return self._rng.random() >= self.install_failure_prob

    def attempt_jitter_s(self) -> float:
        if self.jitter_s == 0.0:
            return 0.0
        return self._rng.uniform(0.0, self.jitter_s)

    def __repr__(self) -> str:
        return (f"UnreliableControlPlane(install={self.install_failure_prob}"
                f", migration={self.migration_failure_prob}, "
                f"jitter={self.jitter_s}s, seed={self.seed})")


class ScriptedControlPlane(ControlPlane):
    """Replays a fixed success/failure script, one entry per operation.

    Deterministic by construction — used by tests (and debugging) to force
    a failure at an exact operation of an exact attempt. Once the script is
    exhausted every further operation succeeds.

    Args:
        outcomes: success flags consumed in operation order (migrations
            before the install, per flow plan, attempts back to back).
        jitter_s: constant per-attempt latency (no randomness).
    """

    def __init__(self, outcomes: Iterable[bool], jitter_s: float = 0.0):
        self._outcomes = list(outcomes)
        self._cursor = 0
        self.jitter_s = jitter_s

    @property
    def reliable(self) -> bool:
        return False

    def _next(self) -> bool:
        if self._cursor >= len(self._outcomes):
            return True
        outcome = self._outcomes[self._cursor]
        self._cursor += 1
        return outcome

    def migration_ok(self) -> bool:
        return self._next()

    def install_ok(self) -> bool:
        return self._next()

    def attempt_jitter_s(self) -> float:
        return self.jitter_s

    @property
    def consumed(self) -> int:
        """How many scripted outcomes have been consumed."""
        return self._cursor


def build_control_plane(spec: dict | None) -> ControlPlane | None:
    """Build a control plane from a JSON-serializable spec (worker cells).

    ``None`` / ``{}`` → None (the reliable default); otherwise the spec's
    keys are :class:`UnreliableControlPlane` kwargs.
    """
    if not spec:
        return None
    return UnreliableControlPlane(**spec)
