"""Long-running service mode: unbounded ingest with live observability.

The figure experiments are batch runs — generate a finite queue, ``run()``,
read the metrics. :class:`SimulationService` instead drives an
:class:`~repro.sim.simulator.UpdateSimulator` as a *daemon*: it pulls
update events lazily from an unbounded arrival stream (see
:mod:`repro.traces.arrivals`), applies bounded-queue backpressure, writes
periodic fingerprinted snapshots, and drains gracefully on SIGINT/SIGTERM.
The :class:`~repro.sim.audit.LifecycleAuditor` rides along by default so
bookkeeping drift crashes the service instead of silently corrupting weeks
of soak-test numbers.

Mechanically the service is an *open-loop* driver: exactly one pending
arrival callback sits in the engine at any time, and firing it enqueues
the event and schedules the next pull. Backpressure pauses that chain —
when the scheduler queue reaches ``queue_cap``, the next event is held
until ``PostRound`` observes the queue back at ``resume_depth`` (held
arrivals are re-timestamped to the resume time: an open system cannot
deliver in the past). Everything the service schedules is an ordinary
engine event, so a service run is exactly as deterministic as a batch run
of the same spec.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from types import FrameType
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.exceptions import SimulationError
from repro.core.ioutil import (
    atomic_write_text,
    payload_fingerprint,
    set_rng_state,
)
from repro.sim.crashpoint import crash_point
from repro.sim.export import CounterExporter, StatsLine
from repro.sim.hooks import EventCompleted, EventDropped, PostRound
from repro.sim.journal import JournalScan, JournalWriter, encode_record
from repro.sim.metrics import RunMetrics
from repro.sim.snapshot import (
    CHECKPOINT_FILE,
    HEARTBEAT_FILE,
    JOURNAL_FILE,
    RecoveryError,
    build_checkpoint,
    load_checkpoint,
)

if TYPE_CHECKING:
    from repro.core.event import UpdateEvent
    from repro.sim.engine import EventHandle
    from repro.sim.simulator import UpdateSimulator

__all__ = ["ServiceConfig", "ServiceReport", "SimulationService"]

#: Starting value of the chained completed-event schedule digest.
_DIGEST_SEED = "0" * 64


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service run.

    Attributes:
        queue_cap: backpressure high watermark — ingestion pauses while the
            scheduler queue holds this many events.
        resume_depth: low watermark — a paused service resumes pulling once
            the queue drains to this depth (must be < ``queue_cap``).
        max_events: stop ingesting after this many events (``None`` = run
            until the stream ends or a stop is requested). The bounded CI
            smoke run uses this.
        horizon: stop ingesting once an arrival would land past this
            simulated time (``None`` = no horizon).
        snapshot_every: simulated seconds between snapshots (0 disables).
        snapshot_dir: directory for ``snapshots.jsonl`` / ``latest.json`` /
            ``metrics.prom`` (required when ``snapshot_every > 0``).
        stats_every: settled rounds between one-line stats digests
            (0 disables).
        audit: attach a lifecycle auditor (crash on bookkeeping drift).
        audit_every: audit every N-th round (see
            :class:`~repro.sim.audit.LifecycleAuditor`).
        install_signals: install SIGINT/SIGTERM handlers for graceful
            drain while serving (restored afterwards). Disable in tests
            and embedded callers.
        engine_step_cap: hard ceiling on engine events processed in one
            :meth:`SimulationService.serve` call — the runaway backstop
            for unbounded streams.
        state_dir: directory for the crash-recovery state — the
            write-ahead journal (``journal.wal``), the restorable
            checkpoint (``checkpoint.json``) and the supervisor heartbeat
            (``heartbeat.json``). ``None`` disables crash recovery.
        resume: continue the run recorded in ``state_dir`` instead of
            starting fresh. The caller must rebuild the *identical*
            simulator and stream (same spec, same seeds); the service
            restores the latest checkpoint and verifies re-execution
            against the journal suffix.
    """

    queue_cap: int = 64
    resume_depth: int = 32
    max_events: int | None = None
    horizon: float | None = None
    snapshot_every: float = 0.0
    snapshot_dir: str | Path | None = None
    stats_every: int = 0
    audit: bool = True
    audit_every: int = 1
    install_signals: bool = False
    engine_step_cap: int = 50_000_000
    state_dir: str | Path | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if not 0 <= self.resume_depth < self.queue_cap:
            raise ValueError("need 0 <= resume_depth < queue_cap")
        if self.max_events is not None and self.max_events < 0:
            raise ValueError("max_events must be >= 0")
        if self.horizon is not None and self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if (self.snapshot_every > 0 and self.snapshot_dir is None
                and self.state_dir is None):
            raise ValueError("snapshot_every needs a snapshot_dir or "
                             "state_dir")
        if self.resume and self.state_dir is None:
            raise ValueError("resume requires a state_dir to resume from")
        if self.stats_every < 0:
            raise ValueError("stats_every must be >= 0")
        if self.audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        if self.engine_step_cap < 1:
            raise ValueError("engine_step_cap must be >= 1")


@dataclass
class ServiceReport:
    """What one service run did, returned by :meth:`serve`.

    ``stopped`` records why ingestion ended: ``"stream"`` (the stream ran
    dry), ``"max_events"``, ``"horizon"``, or ``"signal"``. ``metrics`` is
    the standard batch aggregate over everything the service ingested
    (present whenever at least one event was ingested and the drain
    completed cleanly).
    """

    stopped: str
    ingested: int
    completed: int
    dropped: int
    rounds: int
    audits: int
    backpressure_pauses: int
    snapshots: int
    final_time: float
    metrics: RunMetrics | None = None
    counters: dict[str, int] = field(default_factory=dict)
    #: Chained SHA-256 over terminal outcomes (the schedule digest the
    #: chaos harness compares across interrupted and uninterrupted runs).
    digest: str = _DIGEST_SEED
    #: Checkpoints this run resumed through (0 for an uninterrupted run).
    restarts: int = 0


class SimulationService:
    """Drives a simulator from an unbounded arrival stream.

    Args:
        sim: a freshly built :class:`~repro.sim.simulator.UpdateSimulator`
            (no events submitted, never run). The service attaches its own
            exporter/stats/auditor subscribers per ``config``.
        stream: iterator of update events with monotonically non-decreasing
            ``arrival_time`` — typically
            :func:`repro.traces.arrivals.make_stream`. May be finite.
        config: service knobs.
    """

    def __init__(self, sim: "UpdateSimulator",
                 stream: Iterator["UpdateEvent"],
                 config: ServiceConfig | None = None) -> None:
        self._sim = sim
        self._stream = stream
        self._config = config or ServiceConfig()
        # Re-assert the watermark ordering defensively: ServiceConfig
        # validates it in __post_init__, but the service accepts any
        # duck-typed config object (tests stub them), and with
        # resume_depth >= queue_cap the backpressure hysteresis collapses:
        # every settled round releases the held arrival while the queue
        # still sits at the cap, so the service thrashes pause→resume on
        # every round, the cap stops bounding the queue, and each held
        # arrival is re-timestamped — an ingest livelock where pause
        # bookkeeping grows without the queue ever draining below the cap.
        if self._config.queue_cap < 1:
            raise ValueError(
                f"queue_cap must be >= 1, got {self._config.queue_cap}")
        if not 0 <= self._config.resume_depth < self._config.queue_cap:
            raise ValueError(
                f"need 0 <= resume_depth < queue_cap, got "
                f"resume_depth={self._config.resume_depth} with "
                f"queue_cap={self._config.queue_cap}")
        self._exporter = CounterExporter()
        sim.attach(self._exporter)
        if self._config.stats_every:
            sim.attach(StatsLine(every=self._config.stats_every))
        self._auditor = sim.auditor
        if self._config.audit and self._auditor is None:
            from repro.sim.audit import LifecycleAuditor
            self._auditor = LifecycleAuditor(every=self._config.audit_every)
            sim.attach(self._auditor)
        sim.hooks.subscribe(PostRound, self._on_post_round)
        sim.hooks.subscribe(EventCompleted, self._on_terminal)
        sim.hooks.subscribe(EventDropped, self._on_terminal)
        self._ingested = 0
        self._pulled = 0
        self._pauses = 0
        self._snapshots = 0
        self._held: "UpdateEvent | None" = None
        self._pending_arrival: "UpdateEvent | None" = None
        self._arrival_handle: "EventHandle | None" = None
        self._snapshot_handle: "EventHandle | None" = None
        self._stream_done = False
        self._stopped: str | None = None
        self._served = False
        # Crash-recovery state (inert without config.state_dir).
        self._state_dir = (Path(self._config.state_dir)
                           if self._config.state_dir is not None else None)
        self._journal: JournalWriter | None = None
        self._journal_records = 0
        self._journal_offset = 0
        self._digest = _DIGEST_SEED
        self._replay: deque[bytes] = deque()
        self._replayed = 0
        self._restarts = 0
        self._restored = False
        self._resume_origin: str | None = None
        self._stop_checkpoint_due = False

    # ------------------------------------------------------------- queries

    @property
    def ingested(self) -> int:
        """Events pulled from the stream and enqueued so far."""
        return self._ingested

    @property
    def paused(self) -> bool:
        """True while backpressure is holding the next arrival."""
        return self._held is not None

    @property
    def exporter(self) -> CounterExporter:
        return self._exporter

    @property
    def digest(self) -> str:
        """Chained SHA-256 over every terminal outcome so far — two runs
        with identical digests completed/dropped the same events at the
        same simulated times in the same order."""
        return self._digest

    @property
    def restarts(self) -> int:
        """Checkpoint restores this run has been through."""
        return self._restarts

    # ------------------------------------------------------------- control

    def request_stop(self, reason: str = "signal") -> None:
        """Stop ingesting; in-flight events drain, then serve() returns.

        Idempotent, safe to call from a signal handler: it only flips
        flags and cancels the pending arrival callback.
        """
        if self._stream_done:
            return
        self._stream_done = True
        self._stopped = reason
        self._held = None
        if self._arrival_handle is not None:
            self._arrival_handle.cancel()
            self._arrival_handle = None
        self._pending_arrival = None
        if reason == "signal" and self._state_dir is not None:
            # Flag only — the serve loop writes the final checkpoint at
            # the next engine-step boundary, where full state is
            # serializable (a signal may land mid-callback).
            self._stop_checkpoint_due = True

    def serve(self) -> ServiceReport:
        """Run the service until the stream ends (or a stop) and the
        last in-flight event settles; returns the :class:`ServiceReport`.

        Raises:
            SimulationError: called twice, the engine exceeded
                ``engine_step_cap``, or (via the auditor)
                :class:`~repro.sim.audit.AuditError` on ledger drift.
        """
        if self._served:
            raise SimulationError("service already ran; build a new one")
        self._served = True
        sim = self._sim
        try:
            self._open_state()
            if self._restored:
                sim.mark_restored()
            else:
                sim.start()
                self._pull_next()
                if self._config.snapshot_every > 0:
                    self._snapshot_handle = sim.engine.schedule_callback(
                        sim.now + self._config.snapshot_every,
                        self._on_snapshot, tag="service:snapshot")
            self._write_heartbeat()
            previous = self._install_signals()
            try:
                if self._restored and self._resume_origin == "snapshot-tick":
                    # The checkpointing run died after the write but before
                    # its post-snapshot continuation; running it now makes
                    # the resumed run allocate the same engine seqs (timer
                    # re-arm, stall round) the uninterrupted run did.
                    self._after_snapshot()
                steps = 0
                while sim.engine.step():
                    steps += 1
                    if self._stop_checkpoint_due:
                        # SIGTERM/SIGINT landed: persist a resumable state
                        # before the drain proceeds, at the first
                        # engine-step boundary after the signal.
                        self._stop_checkpoint_due = False
                        if self._config.snapshot_dir is not None:
                            self._write_snapshot()
                        self._write_checkpoint("stop")
                    if steps >= self._config.engine_step_cap:
                        raise SimulationError(
                            f"service exceeded engine_step_cap="
                            f"{self._config.engine_step_cap}; raise the cap "
                            f"for longer soaks")
            finally:
                self._restore_signals(previous)
            if self._replay:
                raise RecoveryError(
                    f"{len(self._replay)} journal records were never "
                    f"re-produced by the resumed run; the journal does not "
                    f"belong to this service spec")
            if self._auditor is not None:
                self._auditor.assert_drained()
            metrics: RunMetrics | None = None
            if (self._ingested
                    and not sim.metrics_collector.incomplete_events()):
                metrics = sim.metrics_collector.finalize()
            if (self._config.snapshot_every > 0
                    and self._config.snapshot_dir is not None):
                self._write_snapshot(final=True)
            self._write_checkpoint("final")
        finally:
            if self._journal is not None:
                self._journal.close()
        collector = sim.metrics_collector
        return ServiceReport(
            stopped=self._stopped or "stream",
            ingested=self._ingested,
            completed=collector.completed_count,
            dropped=collector.dropped_count,
            rounds=collector.round_count,
            audits=self._auditor.audits if self._auditor else 0,
            backpressure_pauses=self._pauses,
            snapshots=self._snapshots,
            final_time=sim.now,
            metrics=metrics,
            counters=self._exporter.counters,
            digest=self._digest,
            restarts=self._restarts)

    # ----------------------------------------------------------- ingestion

    def _pull_next(self) -> None:
        """Pull one event from the stream and schedule (or hold) it."""
        if self._stream_done:
            return
        if (self._config.max_events is not None
                and self._ingested >= self._config.max_events):
            self.request_stop("max_events")
            return
        event = next(self._stream, None)
        if event is None:
            self.request_stop("stream")
            return
        self._pulled += 1
        if (self._config.horizon is not None
                and event.arrival_time > self._config.horizon):
            self.request_stop("horizon")
            return
        if self._sim.pipeline.queue_depth >= self._config.queue_cap:
            # Backpressure: hold this arrival; _on_post_round releases it
            # once the queue drains to resume_depth.
            self._held = event
            self._pauses += 1
            return
        self._schedule_arrival(event)

    def _schedule_arrival(self, event: "UpdateEvent") -> None:
        when = max(self._sim.now, event.arrival_time)
        self._pending_arrival = event
        self._arrival_handle = self._sim.engine.schedule_callback(
            when, lambda: self._ingest(event),
            tag=f"service:arrival:{event.event_id}")

    def _ingest(self, event: "UpdateEvent") -> None:
        self._arrival_handle = None
        self._pending_arrival = None
        self._ingested += 1
        # Write-ahead: the arrival is journaled (and fsynced) before the
        # queue learns about it, so a crash can lose an arrival only
        # before the rest of the pipeline ever observed it.
        self._journal_append({"kind": "ingest", "n": self._ingested,
                              "event": event.to_payload()})
        self._sim.enqueue(event, origin="stream")
        self._pull_next()

    # ------------------------------------------------------------ plumbing

    def _on_post_round(self, hook: PostRound) -> None:
        crash_point("post-round")
        if (self._held is not None
                and self._sim.pipeline.queue_depth
                <= self._config.resume_depth):
            event, self._held = self._held, None
            self._schedule_arrival(event)
        self._write_heartbeat(round_index=hook.index)

    def _on_terminal(self, hook: "EventCompleted | EventDropped") -> None:
        kind = "complete" if isinstance(hook, EventCompleted) else "drop"
        # Chain the digest before journaling so the journal records and
        # the digest always agree on the outcome order.
        self._digest = sha256(
            (self._digest + f"{hook.event_id}:{kind}:{hook.now!r}")
            .encode("utf-8")).hexdigest()
        self._journal_append({"kind": kind, "event": hook.event_id,
                              "time": hook.now})
        # Once the stream is done and the last event settled, cancel the
        # snapshot timer so the engine drains at the real end time instead
        # of idling forward to the next snapshot tick. The handle cancel
        # is idempotent even if the timer already fired.
        if (self._stream_done and self._held is None
                and self._sim.pipeline.events_remaining == 0
                and self._snapshot_handle is not None):
            self._snapshot_handle.cancel()
            self._snapshot_handle = None

    # ----------------------------------------------------------- snapshots

    def _on_snapshot(self) -> None:
        self._snapshot_handle = None
        if self._config.snapshot_dir is not None:
            self._write_snapshot()
        self._write_checkpoint("snapshot-tick")
        self._after_snapshot()

    def _after_snapshot(self) -> None:
        """The post-snapshot continuation: stall check, drain check, timer
        re-arm. Split out of :meth:`_on_snapshot` because a resume from a
        ``snapshot-tick`` checkpoint re-enters exactly here — the original
        run wrote the checkpoint *before* this ran, so the restored run
        must run it to allocate the same engine seqs."""
        if (self._sim.engine.pending == 0
                and self._sim.pipeline.queue_depth > 0):
            # With the timer popped, nothing is pending: the queue is
            # genuinely stalled and the recurring timer was masking it
            # from the pipeline's deadlock detection (which keys off
            # ``engine.pending == 0``). Run a round so the pipeline can
            # stall-handle (defer/drop) or raise its deadlock error.
            self._sim.maybe_round()
        if (self._stream_done and self._held is None
                and self._sim.pipeline.events_remaining == 0):
            return  # drained: let the engine stop at the real end time
        self._snapshot_handle = self._sim.engine.schedule_callback(
            self._sim.now + self._config.snapshot_every, self._on_snapshot,
            tag="service:snapshot")

    def snapshot_payload(self) -> dict[str, Any]:
        """The current snapshot content (fingerprinted by the writer)."""
        sim = self._sim
        collector = sim.metrics_collector
        return {
            "seq": self._snapshots,
            "time": sim.now,
            "ingested": self._ingested,
            "queue_depth": sim.pipeline.queue_depth,
            "events_remaining": sim.pipeline.events_remaining,
            "rounds": collector.round_count,
            "completed": collector.completed_count,
            "dropped": collector.dropped_count,
            "paused": self.paused,
            "backpressure_pauses": self._pauses,
            "lifecycle": {state.value: count for state, count
                          in sim.lifecycle.counts().items()},
            "counters": self._exporter.counters,
        }

    def _write_snapshot(self, final: bool = False) -> None:
        directory = Path(self._config.snapshot_dir or ".")
        directory.mkdir(parents=True, exist_ok=True)
        payload = self.snapshot_payload()
        payload["final"] = final
        payload["fingerprint"] = payload_fingerprint(payload)
        line = json.dumps(payload, sort_keys=True)
        with open(directory / "snapshots.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write(line + "\n")
        atomic_write_text(directory / "latest.json", line + "\n")
        self._exporter.write(directory / "metrics.prom")
        self._snapshots += 1

    # ------------------------------------------------------ crash recovery

    def _journal_append(self, record: dict[str, Any]) -> None:
        """Durably append ``record`` — or, while a resume is replaying the
        journal suffix, verify re-execution re-produced it exactly.

        Frames are compared byte-for-byte (canonical JSON encoding), so
        any divergence — different event, different time, different order
        — fails immediately instead of silently forking the schedule.
        """
        frame = encode_record(record)
        if self._replay:
            expected = self._replay.popleft()
            if frame != expected:
                raise RecoveryError(
                    f"recovery replay diverged from the journal: "
                    f"re-execution produced {record!r} where the journal "
                    f"holds {json.loads(expected[8:].decode('utf-8'))!r}; "
                    f"the state dir was not written by this service spec")
            self._replayed += 1
            self._journal_records += 1
            self._journal_offset += len(expected)
            self._exporter.set_counter("recovery_replayed_events",
                                       self._replayed)
            self._exporter.set_counter("journal_records",
                                       self._journal_records)
            return
        if self._journal is None:
            return
        self._journal.append(record)
        self._journal_records += 1
        self._journal_offset = self._journal.size
        self._exporter.set_counter("journal_records", self._journal_records)

    def _write_checkpoint(self, origin: str) -> None:
        """Write the restorable full-state checkpoint (atomic replace).

        Hosts the ``snapshot`` crash point: a kill here leaves the
        *previous* checkpoint intact (the new one never replaces it), so
        recovery restores the older state and replays a longer journal
        suffix.
        """
        if self._state_dir is None or self._journal is None:
            return
        payload = build_checkpoint(
            self, origin, journal_offset=self._journal_offset,
            journal_records=self._journal_records)
        crash_point("snapshot")
        atomic_write_text(self._state_dir / CHECKPOINT_FILE,
                          json.dumps(payload, sort_keys=True) + "\n")

    def _service_state(self) -> dict[str, Any]:
        """The service's own slice of the checkpoint payload."""
        return {
            "ingested": self._ingested,
            "pulled": self._pulled,
            "pauses": self._pauses,
            "snapshots": self._snapshots,
            "held": (self._held.to_payload()
                     if self._held is not None else None),
            "pending_arrival": (self._pending_arrival.to_payload()
                                if self._pending_arrival is not None
                                else None),
            "stream_done": self._stream_done,
            "stopped": self._stopped,
            "digest": self._digest,
            "replayed": self._replayed,
            "restarts": self._restarts,
        }

    def _open_state(self) -> None:
        """Open the state dir: journal, and (on resume) the checkpoint.

        Raises:
            RecoveryError: a fresh start would clobber an existing run, or
                a resume has nothing usable to resume from.
            JournalCorruptionError: the journal holds a complete frame
                that fails its CRC (bit-rot or tampering — torn tails are
                tolerated and truncated).
        """
        if self._state_dir is None:
            return
        self._state_dir.mkdir(parents=True, exist_ok=True)
        journal_path = self._state_dir / JOURNAL_FILE
        checkpoint_path = self._state_dir / CHECKPOINT_FILE
        has_journal = (journal_path.exists()
                       and journal_path.stat().st_size > 0)
        has_checkpoint = checkpoint_path.exists()
        if not self._config.resume and (has_journal or has_checkpoint):
            present = CHECKPOINT_FILE if has_checkpoint else JOURNAL_FILE
            raise RecoveryError(
                f"state dir {self._state_dir} already holds a run "
                f"({present} present); pass --resume to continue it or "
                f"--fresh to discard it")
        if self._config.resume and not (has_journal or has_checkpoint):
            raise RecoveryError(
                f"--resume requested but state dir {self._state_dir} "
                f"holds no {CHECKPOINT_FILE} or {JOURNAL_FILE}; remove "
                f"--resume to start fresh")
        self._journal = JournalWriter(journal_path)
        scan = self._journal.open()
        if self._config.resume:
            checkpoint = (load_checkpoint(checkpoint_path)
                          if has_checkpoint else None)
            self._restore(checkpoint, scan)

    def _restore(self, checkpoint: dict[str, Any] | None,
                 scan: JournalScan) -> None:
        """Apply a checkpoint (or a bare journal) to the fresh simulator.

        With no checkpoint — the original run died before its first tick —
        the resume is a fresh deterministic re-run that treats the whole
        journal as its verification suffix. With a checkpoint, every
        component restores its serialized state, the engine heap is
        re-bound through the tag resolver, the arrival stream skips its
        consumed prefix, and the journal records past the checkpoint
        become replay expectations.
        """
        from repro.core.event import UpdateEvent, set_event_id_state
        from repro.core.flow import set_flow_id_state

        if checkpoint is None:
            self._replay = deque(encode_record(r) for r in scan.records)
            self._restarts = 1
            self._exporter.set_counter("restarts", 1)
            return
        sim = self._sim
        if checkpoint["scheduler"] != sim.scheduler.name:
            raise RecoveryError(
                f"checkpoint was written by scheduler "
                f"{checkpoint['scheduler']!r} but this service runs "
                f"{sim.scheduler.name!r}; resume with the original spec")
        # Tolerant read: checkpoints written before plan compilation
        # existed carry no "compile" key and imply the atomic default.
        compiled = checkpoint.get("compile") or {"mode": "atomic",
                                                 "epsilon": 0.0}
        ours = {"mode": sim.config.compile_mode,
                "epsilon": sim.config.compile_epsilon}
        if compiled != ours:
            raise RecoveryError(
                f"checkpoint was written under compile config {compiled!r} "
                f"but this service runs {ours!r}; staged execution changes "
                f"the schedule — resume with the original spec")
        prefix_count = int(checkpoint["journal"]["records"])
        offset = int(checkpoint["journal"]["offset"])
        if scan.valid_size < offset or len(scan.records) < prefix_count:
            raise RecoveryError(
                f"journal at {self._journal.path if self._journal else '?'} "
                f"is truncated below the checkpoint (valid "
                f"{scan.valid_size} bytes / {len(scan.records)} records, "
                f"checkpoint expects {offset} bytes / {prefix_count} "
                f"records); the state dir is damaged — restore it from a "
                f"backup or start fresh with --fresh")
        prefix_bytes = sum(len(encode_record(r))
                           for r in scan.records[:prefix_count])
        if prefix_bytes != offset:
            raise RecoveryError(
                f"journal content does not line up with the checkpoint "
                f"({prefix_count} records span {prefix_bytes} bytes, "
                f"checkpoint recorded {offset}); journal and checkpoint "
                f"come from different runs — start fresh with --fresh")
        svc = checkpoint["service"]
        # Service bookkeeping first: the engine tag resolver needs the
        # pending-arrival payload to re-bind its callback.
        self._ingested = int(svc["ingested"])
        self._pulled = int(svc["pulled"])
        self._pauses = int(svc["pauses"])
        self._snapshots = int(svc["snapshots"])
        self._held = (UpdateEvent.from_payload(svc["held"])
                      if svc["held"] is not None else None)
        self._pending_arrival = (
            UpdateEvent.from_payload(svc["pending_arrival"])
            if svc["pending_arrival"] is not None else None)
        self._stream_done = bool(svc["stream_done"])
        self._stopped = svc["stopped"]
        self._digest = str(svc["digest"])
        self._replayed = int(svc["replayed"])
        self._restarts = int(svc["restarts"]) + 1
        self._journal_records = prefix_count
        self._journal_offset = offset
        self._resume_origin = str(checkpoint["origin"])
        # Component state.
        sim.network.restore_state(checkpoint["network"])
        sim.lifecycle.restore_state(checkpoint["lifecycle"])
        sim.metrics_collector.restore_state(checkpoint["metrics"])
        sim.pipeline.restore_state(checkpoint["pipeline"])
        if sim.churn is not None and checkpoint["churn"] is not None:
            sim.churn.restore_state(checkpoint["churn"])
        sim.scheduler.restore_state(checkpoint["sched"])
        set_rng_state(sim.rng, checkpoint["sim_rng"])
        handles = sim.engine.restore_state(checkpoint["engine"],
                                           self._resolve_tag)
        if self._pending_arrival is not None:
            tag = f"service:arrival:{self._pending_arrival.event_id}"
            self._arrival_handle = handles.get(tag)
            if self._arrival_handle is None:
                raise RecoveryError(
                    f"checkpoint carries pending arrival "
                    f"{self._pending_arrival.event_id} but the engine "
                    f"export holds no {tag!r} entry; the checkpoint is "
                    f"internally inconsistent")
        self._snapshot_handle = handles.get("service:snapshot")
        # Arrival stream: skip the consumed prefix (advancing its RNGs
        # exactly as the original pulls did), then force the global id
        # counters to the checkpoint values — churn respawns interleaved
        # their own flow ids with the stream's in the original run, so
        # the skip alone cannot realign the counters.
        for _ in range(self._pulled):
            if next(self._stream, None) is None:
                break
        set_flow_id_state(int(checkpoint["ids"]["flow"]))
        set_event_id_state(int(checkpoint["ids"]["event"]))
        self._exporter.restore_state(checkpoint["counters"])
        self._exporter.set_counter("restarts", self._restarts)
        self._replay = deque(encode_record(r)
                             for r in scan.records[prefix_count:])
        if self._auditor is not None:
            self._auditor.assert_restored(scan.records[:prefix_count])
        self._restored = True

    def _resolve_tag(self, tag: str) -> Callable[[], None]:
        """Re-bind a checkpointed engine tag to its callback.

        Service tags resolve here; pipeline and churn tags delegate to
        their owners. An unowned tag means the service was rebuilt with a
        different plugin set than the checkpointing run (e.g. a fault
        schedule attached) and cannot be resumed safely.
        """
        if tag == "service:snapshot":
            return self._on_snapshot
        if tag.startswith("service:arrival:"):
            event_id = tag[len("service:arrival:"):]
            event = self._pending_arrival
            if event is None or event.event_id != event_id:
                raise RecoveryError(
                    f"engine entry {tag!r} has no matching pending arrival "
                    f"in the checkpoint; the checkpoint is internally "
                    f"inconsistent")
            return lambda e=event: self._ingest(e)
        resolved = self._sim.pipeline.resolve_tag(tag)
        if resolved is not None:
            return resolved
        churn = self._sim.churn
        if churn is not None:
            resolved = churn.resolve_tag(tag)
            if resolved is not None:
                return resolved
        raise RecoveryError(
            f"no component owns checkpointed engine tag {tag!r}; was the "
            f"service rebuilt with a different plugin set than the run "
            f"that wrote the checkpoint?")

    def _write_heartbeat(self, round_index: int | None = None) -> None:
        """Refresh the supervisor's liveness/progress file.

        Plain write + rename, no fsync: the heartbeat signals liveness,
        not durability, and an fsync per settled round would tax long
        soaks for nothing.
        """
        if self._state_dir is None:
            return
        payload = {"wall": time.time(), "pid": os.getpid(),
                   "round": (round_index if round_index is not None
                             else self._sim.metrics_collector.round_count),
                   "sim_time": self._sim.now}
        tmp = self._state_dir / f".{HEARTBEAT_FILE}.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, self._state_dir / HEARTBEAT_FILE)

    # ------------------------------------------------------------- signals

    def _install_signals(self) -> list[tuple[int, Any]]:
        if not self._config.install_signals:
            return []
        previous: list[tuple[int, Any]] = []

        def on_signal(signum: int, _frame: FrameType | None) -> None:
            self.request_stop("signal")

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous.append((signum, signal.signal(signum, on_signal)))
        return previous

    def _restore_signals(self, previous: list[tuple[int, Any]]) -> None:
        for signum, handler in previous:
            signal.signal(signum, handler)
