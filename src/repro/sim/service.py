"""Long-running service mode: unbounded ingest with live observability.

The figure experiments are batch runs — generate a finite queue, ``run()``,
read the metrics. :class:`SimulationService` instead drives an
:class:`~repro.sim.simulator.UpdateSimulator` as a *daemon*: it pulls
update events lazily from an unbounded arrival stream (see
:mod:`repro.traces.arrivals`), applies bounded-queue backpressure, writes
periodic fingerprinted snapshots, and drains gracefully on SIGINT/SIGTERM.
The :class:`~repro.sim.audit.LifecycleAuditor` rides along by default so
bookkeeping drift crashes the service instead of silently corrupting weeks
of soak-test numbers.

Mechanically the service is an *open-loop* driver: exactly one pending
arrival callback sits in the engine at any time, and firing it enqueues
the event and schedules the next pull. Backpressure pauses that chain —
when the scheduler queue reaches ``queue_cap``, the next event is held
until ``PostRound`` observes the queue back at ``resume_depth`` (held
arrivals are re-timestamped to the resume time: an open system cannot
deliver in the past). Everything the service schedules is an ordinary
engine event, so a service run is exactly as deterministic as a batch run
of the same spec.
"""

from __future__ import annotations

import json
import signal
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.exceptions import SimulationError
from repro.core.ioutil import atomic_write_text, payload_fingerprint
from repro.sim.export import CounterExporter, StatsLine
from repro.sim.hooks import EventCompleted, EventDropped, PostRound
from repro.sim.metrics import RunMetrics

if TYPE_CHECKING:
    from repro.core.event import UpdateEvent
    from repro.sim.engine import EventHandle
    from repro.sim.simulator import UpdateSimulator

__all__ = ["ServiceConfig", "ServiceReport", "SimulationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service run.

    Attributes:
        queue_cap: backpressure high watermark — ingestion pauses while the
            scheduler queue holds this many events.
        resume_depth: low watermark — a paused service resumes pulling once
            the queue drains to this depth (must be < ``queue_cap``).
        max_events: stop ingesting after this many events (``None`` = run
            until the stream ends or a stop is requested). The bounded CI
            smoke run uses this.
        horizon: stop ingesting once an arrival would land past this
            simulated time (``None`` = no horizon).
        snapshot_every: simulated seconds between snapshots (0 disables).
        snapshot_dir: directory for ``snapshots.jsonl`` / ``latest.json`` /
            ``metrics.prom`` (required when ``snapshot_every > 0``).
        stats_every: settled rounds between one-line stats digests
            (0 disables).
        audit: attach a lifecycle auditor (crash on bookkeeping drift).
        audit_every: audit every N-th round (see
            :class:`~repro.sim.audit.LifecycleAuditor`).
        install_signals: install SIGINT/SIGTERM handlers for graceful
            drain while serving (restored afterwards). Disable in tests
            and embedded callers.
        engine_step_cap: hard ceiling on engine events processed in one
            :meth:`SimulationService.serve` call — the runaway backstop
            for unbounded streams.
    """

    queue_cap: int = 64
    resume_depth: int = 32
    max_events: int | None = None
    horizon: float | None = None
    snapshot_every: float = 0.0
    snapshot_dir: str | Path | None = None
    stats_every: int = 0
    audit: bool = True
    audit_every: int = 1
    install_signals: bool = False
    engine_step_cap: int = 50_000_000

    def __post_init__(self) -> None:
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if not 0 <= self.resume_depth < self.queue_cap:
            raise ValueError("need 0 <= resume_depth < queue_cap")
        if self.max_events is not None and self.max_events < 0:
            raise ValueError("max_events must be >= 0")
        if self.horizon is not None and self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.snapshot_every > 0 and self.snapshot_dir is None:
            raise ValueError("snapshot_every needs a snapshot_dir")
        if self.stats_every < 0:
            raise ValueError("stats_every must be >= 0")
        if self.audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        if self.engine_step_cap < 1:
            raise ValueError("engine_step_cap must be >= 1")


@dataclass
class ServiceReport:
    """What one service run did, returned by :meth:`serve`.

    ``stopped`` records why ingestion ended: ``"stream"`` (the stream ran
    dry), ``"max_events"``, ``"horizon"``, or ``"signal"``. ``metrics`` is
    the standard batch aggregate over everything the service ingested
    (present whenever at least one event was ingested and the drain
    completed cleanly).
    """

    stopped: str
    ingested: int
    completed: int
    dropped: int
    rounds: int
    audits: int
    backpressure_pauses: int
    snapshots: int
    final_time: float
    metrics: RunMetrics | None = None
    counters: dict[str, int] = field(default_factory=dict)


class SimulationService:
    """Drives a simulator from an unbounded arrival stream.

    Args:
        sim: a freshly built :class:`~repro.sim.simulator.UpdateSimulator`
            (no events submitted, never run). The service attaches its own
            exporter/stats/auditor subscribers per ``config``.
        stream: iterator of update events with monotonically non-decreasing
            ``arrival_time`` — typically
            :func:`repro.traces.arrivals.make_stream`. May be finite.
        config: service knobs.
    """

    def __init__(self, sim: "UpdateSimulator",
                 stream: Iterator["UpdateEvent"],
                 config: ServiceConfig | None = None) -> None:
        self._sim = sim
        self._stream = stream
        self._config = config or ServiceConfig()
        # Re-assert the watermark ordering defensively: ServiceConfig
        # validates it in __post_init__, but the service accepts any
        # duck-typed config object (tests stub them), and with
        # resume_depth >= queue_cap the backpressure hysteresis collapses:
        # every settled round releases the held arrival while the queue
        # still sits at the cap, so the service thrashes pause→resume on
        # every round, the cap stops bounding the queue, and each held
        # arrival is re-timestamped — an ingest livelock where pause
        # bookkeeping grows without the queue ever draining below the cap.
        if self._config.queue_cap < 1:
            raise ValueError(
                f"queue_cap must be >= 1, got {self._config.queue_cap}")
        if not 0 <= self._config.resume_depth < self._config.queue_cap:
            raise ValueError(
                f"need 0 <= resume_depth < queue_cap, got "
                f"resume_depth={self._config.resume_depth} with "
                f"queue_cap={self._config.queue_cap}")
        self._exporter = CounterExporter()
        sim.attach(self._exporter)
        if self._config.stats_every:
            sim.attach(StatsLine(every=self._config.stats_every))
        self._auditor = sim.auditor
        if self._config.audit and self._auditor is None:
            from repro.sim.audit import LifecycleAuditor
            self._auditor = LifecycleAuditor(every=self._config.audit_every)
            sim.attach(self._auditor)
        sim.hooks.subscribe(PostRound, self._on_post_round)
        sim.hooks.subscribe(EventCompleted, self._on_terminal)
        sim.hooks.subscribe(EventDropped, self._on_terminal)
        self._ingested = 0
        self._pauses = 0
        self._snapshots = 0
        self._held: "UpdateEvent | None" = None
        self._arrival_handle: "EventHandle | None" = None
        self._snapshot_handle: "EventHandle | None" = None
        self._stream_done = False
        self._stopped: str | None = None
        self._served = False

    # ------------------------------------------------------------- queries

    @property
    def ingested(self) -> int:
        """Events pulled from the stream and enqueued so far."""
        return self._ingested

    @property
    def paused(self) -> bool:
        """True while backpressure is holding the next arrival."""
        return self._held is not None

    @property
    def exporter(self) -> CounterExporter:
        return self._exporter

    # ------------------------------------------------------------- control

    def request_stop(self, reason: str = "signal") -> None:
        """Stop ingesting; in-flight events drain, then serve() returns.

        Idempotent, safe to call from a signal handler: it only flips
        flags and cancels the pending arrival callback.
        """
        if self._stream_done:
            return
        self._stream_done = True
        self._stopped = reason
        self._held = None
        if self._arrival_handle is not None:
            self._arrival_handle.cancel()
            self._arrival_handle = None

    def serve(self) -> ServiceReport:
        """Run the service until the stream ends (or a stop) and the
        last in-flight event settles; returns the :class:`ServiceReport`.

        Raises:
            SimulationError: called twice, the engine exceeded
                ``engine_step_cap``, or (via the auditor)
                :class:`~repro.sim.audit.AuditError` on ledger drift.
        """
        if self._served:
            raise SimulationError("service already ran; build a new one")
        self._served = True
        sim = self._sim
        sim.start()
        self._pull_next()
        if self._config.snapshot_every > 0:
            self._snapshot_handle = sim.engine.schedule_callback(
                sim.now + self._config.snapshot_every, self._on_snapshot,
                tag="service:snapshot")
        previous = self._install_signals()
        try:
            steps = 0
            while sim.engine.step():
                steps += 1
                if steps >= self._config.engine_step_cap:
                    raise SimulationError(
                        f"service exceeded engine_step_cap="
                        f"{self._config.engine_step_cap}; raise the cap "
                        f"for longer soaks")
        finally:
            self._restore_signals(previous)
        if self._auditor is not None:
            self._auditor.assert_drained()
        metrics: RunMetrics | None = None
        if self._ingested and not sim.metrics_collector.incomplete_events():
            metrics = sim.metrics_collector.finalize()
        if self._config.snapshot_every > 0:
            self._write_snapshot(final=True)
        collector = sim.metrics_collector
        return ServiceReport(
            stopped=self._stopped or "stream",
            ingested=self._ingested,
            completed=collector.completed_count,
            dropped=collector.dropped_count,
            rounds=collector.round_count,
            audits=self._auditor.audits if self._auditor else 0,
            backpressure_pauses=self._pauses,
            snapshots=self._snapshots,
            final_time=sim.now,
            metrics=metrics,
            counters=self._exporter.counters)

    # ----------------------------------------------------------- ingestion

    def _pull_next(self) -> None:
        """Pull one event from the stream and schedule (or hold) it."""
        if self._stream_done:
            return
        if (self._config.max_events is not None
                and self._ingested >= self._config.max_events):
            self.request_stop("max_events")
            return
        event = next(self._stream, None)
        if event is None:
            self.request_stop("stream")
            return
        if (self._config.horizon is not None
                and event.arrival_time > self._config.horizon):
            self.request_stop("horizon")
            return
        if self._sim.pipeline.queue_depth >= self._config.queue_cap:
            # Backpressure: hold this arrival; _on_post_round releases it
            # once the queue drains to resume_depth.
            self._held = event
            self._pauses += 1
            return
        self._schedule_arrival(event)

    def _schedule_arrival(self, event: "UpdateEvent") -> None:
        when = max(self._sim.now, event.arrival_time)
        self._arrival_handle = self._sim.engine.schedule_callback(
            when, lambda: self._ingest(event),
            tag=f"service:arrival:{event.event_id}")

    def _ingest(self, event: "UpdateEvent") -> None:
        self._arrival_handle = None
        self._ingested += 1
        self._sim.enqueue(event, origin="stream")
        self._pull_next()

    # ------------------------------------------------------------ plumbing

    def _on_post_round(self, hook: PostRound) -> None:
        if (self._held is not None
                and self._sim.pipeline.queue_depth
                <= self._config.resume_depth):
            event, self._held = self._held, None
            self._schedule_arrival(event)

    def _on_terminal(self, hook: "EventCompleted | EventDropped") -> None:
        # Once the stream is done and the last event settled, cancel the
        # snapshot timer so the engine drains at the real end time instead
        # of idling forward to the next snapshot tick. The handle cancel
        # is idempotent even if the timer already fired.
        if (self._stream_done and self._held is None
                and self._sim.pipeline.events_remaining == 0
                and self._snapshot_handle is not None):
            self._snapshot_handle.cancel()
            self._snapshot_handle = None

    # ----------------------------------------------------------- snapshots

    def _on_snapshot(self) -> None:
        self._snapshot_handle = None
        self._write_snapshot()
        if (self._sim.engine.pending == 0
                and self._sim.pipeline.queue_depth > 0):
            # With the timer popped, nothing is pending: the queue is
            # genuinely stalled and the recurring timer was masking it
            # from the pipeline's deadlock detection (which keys off
            # ``engine.pending == 0``). Run a round so the pipeline can
            # stall-handle (defer/drop) or raise its deadlock error.
            self._sim.maybe_round()
        if (self._stream_done and self._held is None
                and self._sim.pipeline.events_remaining == 0):
            return  # drained: let the engine stop at the real end time
        self._snapshot_handle = self._sim.engine.schedule_callback(
            self._sim.now + self._config.snapshot_every, self._on_snapshot,
            tag="service:snapshot")

    def snapshot_payload(self) -> dict[str, Any]:
        """The current snapshot content (fingerprinted by the writer)."""
        sim = self._sim
        collector = sim.metrics_collector
        return {
            "seq": self._snapshots,
            "time": sim.now,
            "ingested": self._ingested,
            "queue_depth": sim.pipeline.queue_depth,
            "events_remaining": sim.pipeline.events_remaining,
            "rounds": collector.round_count,
            "completed": collector.completed_count,
            "dropped": collector.dropped_count,
            "paused": self.paused,
            "backpressure_pauses": self._pauses,
            "lifecycle": {state.value: count for state, count
                          in sim.lifecycle.counts().items()},
            "counters": self._exporter.counters,
        }

    def _write_snapshot(self, final: bool = False) -> None:
        directory = Path(self._config.snapshot_dir or ".")
        directory.mkdir(parents=True, exist_ok=True)
        payload = self.snapshot_payload()
        payload["final"] = final
        payload["fingerprint"] = payload_fingerprint(payload)
        line = json.dumps(payload, sort_keys=True)
        with open(directory / "snapshots.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write(line + "\n")
        atomic_write_text(directory / "latest.json", line + "\n")
        self._exporter.write(directory / "metrics.prom")
        self._snapshots += 1

    # ------------------------------------------------------------- signals

    def _install_signals(self) -> list[tuple[int, Any]]:
        if not self._config.install_signals:
            return []
        previous: list[tuple[int, Any]] = []

        def on_signal(signum: int, _frame: FrameType | None) -> None:
            self.request_stop("signal")

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous.append((signum, signal.signal(signum, on_signal)))
        return previous

    def _restore_signals(self, previous: list[tuple[int, Any]]) -> None:
        for signum, handler in previous:
            signal.signal(signum, handler)
