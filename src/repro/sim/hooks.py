"""Typed hook bus decoupling the simulator core from cross-cutting concerns.

The round pipeline (:mod:`repro.sim.pipeline`) emits a small vocabulary of
frozen hook payloads at every significant transition; cross-cutting
concerns — metrics, trace logging, fault injection, background churn,
control-plane retry accounting — *subscribe* instead of being hardcoded
branches inside the simulator. The bus dispatches on the payload's exact
type and calls handlers in subscription order, so the order in which the
simulator wires its subscribers fully determines observable record order
(the byte-identity contract of the schedule pins relies on this).

Hook vocabulary:

=================== ========================================================
hook                emitted when
=================== ========================================================
RunStarted          ``run()`` begins, after arrivals are scheduled; plugins
                    (fault driver, churn driver) schedule their timelines
StateTransition     every :class:`~repro.sim.lifecycle.EventLifecycle` move
EventArrived        an event enters the queue (arrival or repair)
PreRound            a round was decided, before its admissions execute
                    (fires for empty rounds too)
PostRound           an executing round finished its queue bookkeeping
EventAdmitted       one admission executed successfully
ExecutionRetried    the executor burned failed attempts (success or not)
ExecutionFailed     an admission's execution failed terminally
EventDeferred       an event was charged one deferral
EventDropped        an event was evicted past its deferral budget
EventCompleted      an update event finished
FlowFinished        an admitted flow completed its transmission
FaultInjected       a link/switch failure fired mid-run
FaultHealed         a previously injected failure healed
ChurnTick           a background flow completed (and maybe respawned)
=================== ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, TypeVar

if TYPE_CHECKING:
    from repro.core.event import UpdateEvent
    from repro.network.network import Network
    from repro.sim.config import SimulationConfig
    from repro.sim.engine import SimulationEngine
    from repro.sim.lifecycle import EventLifecycle, TransitionRecord
    from repro.sim.metrics import MetricsCollector
    from repro.sim.pipeline import RoundPipeline


class SimulatorPort(Protocol):
    """The surface a simulator exposes to hook-bus plugins.

    Plugins (fault drivers, churn drivers, exporters) program against this
    protocol instead of the concrete simulator, which keeps the dependency
    arrow pointing outward: the simulator never imports its plugins.
    """

    @property
    def engine(self) -> SimulationEngine: ...

    @property
    def network(self) -> Network: ...

    @property
    def config(self) -> SimulationConfig: ...

    @property
    def hooks(self) -> HookBus: ...

    @property
    def now(self) -> float: ...

    @property
    def lifecycle(self) -> EventLifecycle: ...

    @property
    def pipeline(self) -> RoundPipeline: ...

    @property
    def metrics_collector(self) -> MetricsCollector: ...

    def enqueue(self, event: UpdateEvent, origin: str = ...) -> None:
        """Enqueue a mid-run event (e.g. a failure repair)."""

    def schedule_round(self) -> None:
        """Schedule a round check at the current simulated time."""

    def maybe_round(self) -> None:
        """Run a round check immediately (churn uses the direct call)."""


class Hook:
    """Base class of every hook payload (dispatch is by exact type)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class RunStarted(Hook):
    """The run began; plugins may now schedule their engine timelines."""

    sim: SimulatorPort


@dataclass(frozen=True, slots=True)
class StateTransition(Hook):
    """One applied lifecycle move (registrations included)."""

    record: TransitionRecord


@dataclass(frozen=True, slots=True)
class EventArrived(Hook):
    """An update event entered the queue."""

    now: float
    event_id: str
    flow_count: int
    origin: str


@dataclass(frozen=True, slots=True)
class PreRound(Hook):
    """A round was decided (possibly admitting nothing).

    ``admitted`` lists the *decided* admissions; execution failures may
    still turn some of them into deferrals.

    The defaulted fields are the learned-ranking telemetry
    (:mod:`repro.sched.learned`), copied from the decision:
    ``probes_skipped`` sampled candidates went unprobed under the ranking
    budget, ``prediction_samples`` training pairs were produced with
    ``prediction_error_sum`` total absolute error (log1p-cost scale), and
    ``fallback`` marks a round that degraded to full probing. Exact
    schedulers emit the zero defaults.
    """

    now: float
    index: int
    admitted: tuple[str, ...]
    planning_ops: int
    plan_time: float
    queue_depth: int
    cache_hits: int
    cache_misses: int
    cache_invalidations: int
    probes_skipped: int = 0
    prediction_samples: int = 0
    prediction_error_sum: float = 0.0
    fallback: bool = False


@dataclass(frozen=True, slots=True)
class PostRound(Hook):
    """An executing round settled; ``waiting`` are the still-queued events.

    ``waiting`` is ``None`` when the pipeline runs with
    ``queue_snapshots=False`` (scale mode): the full waiting set costs
    O(queue) per round, so deep-queue runs omit it. Subscribers that
    charge per-wait accounting must treat ``None`` as "not reported", not
    as "empty".
    """

    now: float
    index: int
    waiting: tuple[str, ...] | None


@dataclass(frozen=True, slots=True)
class EventAdmitted(Hook):
    """One admission executed successfully at ``exec_start``.

    The defaulted fields are the plan-compilation telemetry
    (:mod:`repro.core.compile`): how many stages the compiled schedule
    applied (1 under the default atomic mode), the worst fractional
    transient capacity overshoot any link saw, and the ε the plan was
    compiled with.
    """

    exec_start: float
    event_id: str
    cost: float
    migrations: int
    flows: int
    setup_done_time: float
    stage_count: int = 1
    max_transient_overload: float = 0.0
    epsilon: float = 0.0


@dataclass(frozen=True, slots=True)
class ExecutionRetried(Hook):
    """The executor consumed ``retries`` failed attempts for an event."""

    event_id: str
    retries: int


@dataclass(frozen=True, slots=True)
class ExecutionFailed(Hook):
    """An admission's execution failed terminally (state rolled back)."""

    now: float
    event_id: str
    attempts: int
    reason: str


@dataclass(frozen=True, slots=True)
class EventDeferred(Hook):
    """An event was charged one deferral; ``count`` is its total so far."""

    now: float
    event_id: str
    count: int


@dataclass(frozen=True, slots=True)
class EventDropped(Hook):
    """An event was evicted after exhausting its requeue deferrals."""

    now: float
    event_id: str
    stranded_demand: float


@dataclass(frozen=True, slots=True)
class EventCompleted(Hook):
    """An update event finished."""

    now: float
    event_id: str


@dataclass(frozen=True, slots=True)
class FlowFinished(Hook):
    """An admitted flow completed its transmission."""

    now: float
    flow_id: str
    event_id: str


@dataclass(frozen=True, slots=True)
class FaultInjected(Hook):
    """A link/switch failure fired, stranding the given traffic."""

    now: float
    description: str
    stranded_flows: int
    stranded_demand: float


@dataclass(frozen=True, slots=True)
class FaultHealed(Hook):
    """A previously injected failure healed (capacity restored)."""

    now: float
    description: str


@dataclass(frozen=True, slots=True)
class ChurnTick(Hook):
    """A background flow completed; ``respawned`` replacements were placed."""

    now: float
    flow_id: str
    respawned: int


_H = TypeVar("_H", bound=Hook)


class HookBus:
    """Exact-type hook dispatch with deterministic handler order.

    Handlers for a hook type run in subscription order; emission order is
    therefore fully determined by wiring order, which the simulator relies
    on to keep metrics/listener record order byte-identical to the
    pre-refactor monolith.
    """

    def __init__(self) -> None:
        self._handlers: dict[type[Hook], list[Callable[[Any], None]]] = {}
        self._emitted = 0

    def subscribe(self, hook_type: type[_H],
                  handler: Callable[[_H], None]) -> None:
        """Register ``handler`` for exactly ``hook_type`` (no subtypes)."""
        self._handlers.setdefault(hook_type, []).append(handler)

    def emit(self, hook: Hook) -> None:
        """Deliver ``hook`` to its type's handlers in subscription order."""
        self._emitted += 1
        for handler in self._handlers.get(type(hook), ()):
            handler(hook)

    def handlers(self, hook_type: type[Hook]) -> tuple[Callable[[Any], None],
                                                       ...]:
        """The handlers currently subscribed to ``hook_type``."""
        return tuple(self._handlers.get(hook_type, ()))

    @property
    def emitted(self) -> int:
        """Total hooks emitted (delivered or not) — a cheap liveness probe."""
        return self._emitted

    def __repr__(self) -> str:
        kinds = {t.__name__: len(hs) for t, hs in self._handlers.items() if hs}
        return f"<HookBus {self._emitted} emitted, handlers={kinds}>"
