"""Mid-run fault injection: link/switch failures as engine events.

The paper's §I names network failures as a first-class source of update
events, but :mod:`repro.network.failures` only supports *static* injection
before a run starts. This module schedules failures (and recoveries) at
simulated times *during* a run: :class:`FaultDriver` — a hook-bus plugin —
turns each :class:`LinkFault`/:class:`SwitchFault` into an engine callback
that fires the :class:`~repro.network.failures.FailureInjector`, packages
the stranded flows into a repair event
(:func:`~repro.network.failures.repair_event`), and enqueues the repair at
the failure's simulated time. The simulator core never imports this
module; fault sources attach themselves via
``UpdateSimulator(..., faults=source)`` → ``source.attach(sim)``.

Two sources of fault timelines:

* :class:`FaultSchedule` — an explicit, validated list of fault specs.
  ``FaultSchedule([])`` is the no-fault timeline; a simulator given it is
  byte-identical to one given no fault source at all.
* :class:`FaultProcess` — a seeded stochastic process (exponential
  inter-fault gaps over a horizon, uniformly chosen switch-switch links,
  lognormal-ish repair times). Materializing it against a network is a
  pure function of ``(seed, network topology)``, so faulted parallel
  sweeps stay deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.core.exceptions import SimulationError, TopologyError
from repro.network.failures import FailureInjector, FailureRecord, repair_event
from repro.sim.hooks import (
    FaultHealed,
    FaultInjected,
    RunStarted,
    SimulatorPort,
)


@dataclass(frozen=True)
class LinkFault:
    """One link failing at ``at`` and (optionally) healing at ``heal_at``.

    ``heal_at=None`` means the failure is permanent for the run.
    """

    u: str
    v: str
    at: float
    heal_at: float | None = None
    both_directions: bool = True

    def __post_init__(self):
        _validate_times(self.at, self.heal_at,
                        f"link fault {self.u}<->{self.v}")

    @property
    def description(self) -> str:
        return f"link {self.u}<->{self.v}"


@dataclass(frozen=True)
class SwitchFault:
    """A whole switch failing (all adjacent links) and optionally healing."""

    switch: str
    at: float
    heal_at: float | None = None

    def __post_init__(self):
        _validate_times(self.at, self.heal_at,
                        f"switch fault {self.switch}")

    @property
    def description(self) -> str:
        return f"switch {self.switch}"


FaultSpec = Union[LinkFault, SwitchFault]


def _validate_times(at: float, heal_at: float | None, what: str) -> None:
    if at < 0:
        raise SimulationError(f"{what}: fault time {at} is negative")
    if heal_at is not None and heal_at <= at:
        raise SimulationError(
            f"{what}: heal time {heal_at} must be after fault time {at}")


class FaultSchedule:
    """An explicit timeline of fault specs, sorted by fault time.

    Iterating yields the specs in ``(at, insertion order)`` order — the
    exact order the simulator delivers them to the engine.
    """

    def __init__(self, faults: Iterable[FaultSpec] = ()):
        specs = list(faults)
        for spec in specs:
            if not isinstance(spec, (LinkFault, SwitchFault)):
                raise SimulationError(
                    f"fault schedule entries must be LinkFault or "
                    f"SwitchFault, got {type(spec).__name__}")
        self._specs = sorted(enumerate(specs),
                             key=lambda pair: (pair[1].at, pair[0]))
        self._specs = [spec for _, spec in self._specs]

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __bool__(self) -> bool:
        return bool(self._specs)

    def materialize(self, network) -> "FaultSchedule":
        """Validate every spec against ``network`` and return the schedule.

        A schedule naming a link/switch the topology lacks fails here, at
        run start, instead of mid-simulation.
        """
        for spec in self._specs:
            if isinstance(spec, LinkFault):
                if not network.has_link(spec.u, spec.v):
                    raise TopologyError(
                        f"fault schedule names missing link "
                        f"{spec.u}->{spec.v}")
            elif spec.switch not in network.graph:
                raise TopologyError(
                    f"fault schedule names missing switch {spec.switch!r}")
        return self

    def attach(self, sim: SimulatorPort) -> "FaultDriver":
        """Wire this timeline into a simulator run (hook-bus plugin)."""
        driver = FaultDriver(self)
        driver.attach(sim)
        return driver


class FaultProcess:
    """Seeded stochastic link-failure process over a time horizon.

    Args:
        rate: expected faults per simulated second (exponential gaps).
            ``0.0`` materializes to an empty schedule without drawing any
            randomness.
        horizon: faults are generated in ``[0, horizon)`` seconds.
        seed: seed of the process's private RNG.
        mean_downtime_s: mean repair time; each fault heals after an
            exponentially distributed downtime (min 1e-3 s). ``None``
            makes every fault permanent.
        switch_fault_prob: probability a fault takes down a whole randomly
            chosen switch instead of a single link. Defaults to link-only,
            which keeps repairs routable on path-diverse fabrics.
    """

    def __init__(self, rate: float, horizon: float, seed: int = 0,
                 mean_downtime_s: float | None = 20.0,
                 switch_fault_prob: float = 0.0):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if mean_downtime_s is not None and mean_downtime_s <= 0:
            raise ValueError("mean_downtime_s must be positive or None")
        if not 0.0 <= switch_fault_prob <= 1.0:
            raise ValueError("switch_fault_prob must be in [0, 1]")
        self.rate = rate
        self.horizon = horizon
        self.seed = seed
        self.mean_downtime_s = mean_downtime_s
        self.switch_fault_prob = switch_fault_prob

    def materialize(self, network) -> FaultSchedule:
        """Draw the fault timeline for ``network``.

        Targets are drawn from the network's switch-switch links (host
        access links are never failed — a failed access link makes its
        host's repair flows permanently unplaceable) and, for switch
        faults, from switches with at least one switch-switch link.
        Deterministic: same seed + same topology → same schedule.
        """
        if self.rate == 0.0 or self.horizon == 0.0:
            return FaultSchedule([])
        links = list(network.switch_links())
        if not links:
            return FaultSchedule([])
        switches = sorted({u for u, _ in links} | {v for _, v in links})
        rng = random.Random(self.seed)
        specs: list[FaultSpec] = []
        t = rng.expovariate(self.rate)
        while t < self.horizon:
            heal_at = None
            if self.mean_downtime_s is not None:
                heal_at = t + max(1e-3,
                                  rng.expovariate(1.0 / self.mean_downtime_s))
            if (self.switch_fault_prob > 0.0
                    and rng.random() < self.switch_fault_prob):
                specs.append(SwitchFault(switch=rng.choice(switches),
                                         at=t, heal_at=heal_at))
            else:
                u, v = rng.choice(links)
                specs.append(LinkFault(u=u, v=v, at=t, heal_at=heal_at))
            t += rng.expovariate(self.rate)
        return FaultSchedule(specs).materialize(network)

    def attach(self, sim: SimulatorPort) -> "FaultDriver":
        """Wire this process into a simulator run (hook-bus plugin)."""
        driver = FaultDriver(self)
        driver.attach(sim)
        return driver

    def __repr__(self) -> str:
        return (f"FaultProcess(rate={self.rate}, horizon={self.horizon}, "
                f"seed={self.seed})")


class FaultDriver:
    """Hook-bus plugin delivering a fault source's timeline into a run.

    On :class:`~repro.sim.hooks.RunStarted` the driver materializes its
    source against the live network (validating every spec at run start —
    a schedule naming a missing link fails before any event executes),
    builds a :class:`~repro.network.failures.FailureInjector`, and
    schedules one engine callback per fault. Each fault callback injects
    the failure, announces it as :class:`~repro.sim.hooks.FaultInjected`,
    enqueues a repair event for any stranded traffic, schedules the heal,
    and kicks a round check — exactly the order the pre-refactor monolith
    used, so engine sequence numbers (and therefore results) are
    byte-identical.
    """

    def __init__(self, source: "FaultSchedule | FaultProcess"):
        self._source = source
        self._sim: SimulatorPort | None = None
        self._injector: FailureInjector | None = None

    def attach(self, sim: SimulatorPort) -> None:
        """Subscribe to the simulator's hook bus (called by the source)."""
        self._sim = sim
        sim.hooks.subscribe(RunStarted, self._on_run_started)

    # ------------------------------------------------------------ internals

    def _on_run_started(self, hook: RunStarted) -> None:
        sim = hook.sim
        self._injector = FailureInjector(sim.network)
        for spec in self._source.materialize(sim.network):
            sim.engine.schedule_callback(
                spec.at, lambda s=spec: self._on_fault(s),
                tag=f"fault:{spec.description}")

    def _on_fault(self, spec: FaultSpec) -> None:
        sim = self._sim
        assert sim is not None and self._injector is not None
        if isinstance(spec, LinkFault):
            record = self._injector.fail_link(
                spec.u, spec.v, both_directions=spec.both_directions)
        else:
            record = self._injector.fail_switch(spec.switch)
        sim.hooks.emit(FaultInjected(
            now=sim.now, description=record.description,
            stranded_flows=len(record.stranded),
            stranded_demand=record.stranded_demand))
        if record.stranded:
            # Stranded flows (background traffic or mid-transmission
            # update flows) become a repair event competing in the
            # ordinary update queue, per the paper's framing of failure
            # recovery as just another update-event source. Permanent
            # background flows carry no finite duration of their own,
            # so replacements always get the configured one.
            repair = repair_event(
                record, arrival_time=sim.now,
                duration=sim.config.repair_flow_duration)
            sim.enqueue(repair, origin="repair")
        if spec.heal_at is not None:
            sim.engine.schedule_callback(
                spec.heal_at, lambda r=record: self._on_heal(r),
                tag=f"heal:{spec.description}")
        # Re-check the queue: capacity loss cannot unblock anything,
        # but if this fault was the last pending engine event the run
        # must fall through to stall handling instead of draining with
        # events still queued.
        sim.schedule_round()

    def _on_heal(self, record: FailureRecord) -> None:
        sim = self._sim
        assert sim is not None and self._injector is not None
        self._injector.heal(record)
        sim.hooks.emit(FaultHealed(now=sim.now,
                                   description=record.description))
        # Restored capacity may make queued events feasible again.
        sim.schedule_round()


def build_fault_source(spec: dict | None):
    """Build a fault source from a JSON-serializable spec (worker cells).

    ``None`` / ``{}`` → None; otherwise the spec's keys are
    :class:`FaultProcess` kwargs.
    """
    if not spec:
        return None
    return FaultProcess(**spec)
