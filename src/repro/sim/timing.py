"""The simulated timing model (DESIGN.md §5, substitution table).

The paper runs trace-driven simulation on an SDN testbed model and reports
*relative* metrics (normalized ECTs, %-reductions vs FIFO). This module makes
our simulator's time accounting explicit so every constant is documented and
adjustable; the reproduced shapes are insensitive to the absolute values, as
they only rescale all schedulers' times together.

Three time components are charged per executed update event:

* **plan time** — proportional to the number of elementary planning
  operations (path feasibility checks + migration-candidate scans) the
  planner performed. FIFO plans one event per round; LMTF plans ``α+1``; this
  is exactly how the paper's Fig. 6(d) plan-time gap arises.
* **migration time** — a per-migration rule-update latency plus a drain term
  proportional to the migrated bandwidth (the paper's "cost is 4 seconds"
  framing in Fig. 3: time scales with migrated traffic).
* **install time** — rule installation for the event's own flows; flows of
  one event install in parallel batches in an OpenFlow-like control plane,
  so by default this is one rule latency regardless of event width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.plan import Migration


@dataclass(frozen=True)
class TimingModel:
    """Converts planner/executor work into simulated seconds.

    Attributes:
        rule_install_s: control-plane latency to install one batch of
            forwarding rules (seconds).
        parallel_install: when True an event's flows install as one batch;
            when False installation is serialized per flow.
        migration_rule_s: per-migrated-flow rule-update latency (seconds).
        drain_s_per_mbps: seconds of draining per Mbit/s of migrated demand —
            the term that makes ``Cost(U)`` translate into time, as in the
            paper's Fig. 3.
        plan_s_per_op: simulated seconds per elementary planning operation.
    """

    rule_install_s: float = 0.01
    parallel_install: bool = True
    migration_rule_s: float = 0.01
    drain_s_per_mbps: float = 0.004
    plan_s_per_op: float = 2e-5

    def __post_init__(self) -> None:
        for name in ("rule_install_s", "migration_rule_s",
                     "drain_s_per_mbps", "plan_s_per_op"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def migration_time(self, migrations: Iterable[Migration]) -> float:
        """Seconds to drain the given migrations (executed sequentially by
        the controller to honour the make-before-break order)."""
        total = 0.0
        for migration in migrations:
            total += self.migration_rule_s
            total += self.drain_s_per_mbps * migration.migrated_traffic
        return total

    def install_time(self, flow_count: int, stages: int = 1) -> float:
        """Seconds to install rules for ``flow_count`` event flows.

        ``stages`` is the compiled schedule length: each stage beyond the
        first is a separate synchronized rule-install round trip, so a
        staged update pays one extra ``rule_install_s`` per extra stage —
        schedule length costs simulated time. ``stages=1`` (atomic) is the
        historical charge, bit for bit.
        """
        if flow_count <= 0:
            return 0.0
        base = (self.rule_install_s if self.parallel_install
                else self.rule_install_s * flow_count)
        return base + self.rule_install_s * max(0, stages - 1)

    def plan_time(self, planning_ops: int) -> float:
        """Seconds the controller spends computing a plan of this size."""
        return self.plan_s_per_op * max(0, planning_ops)
