"""Live observability subscribers: counter export and periodic stats.

Both classes are plain hook-bus plugins (``sim.attach(...)``) with no
simulator support code — the same extension surface fault injection and
churn use. :class:`CounterExporter` accumulates monotonic counters from
hook emissions and renders them in the Prometheus text exposition format
(write the file where a node-exporter textfile collector looks, or serve
it verbatim). :class:`StatsLine` prints a one-line digest every N settled
rounds so an operator can eyeball a long service run without attaching a
trace log.

Neither subscriber mutates simulator state, so attaching them never
changes a schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.ioutil import atomic_write_text
from repro.sim import hooks as _hooks

if TYPE_CHECKING:
    from pathlib import Path

    from repro.sim.hooks import SimulatorPort

__all__ = ["CounterExporter", "StatsLine"]

#: (counter name, help text) in render order.
_COUNTERS = (
    ("events_arrived", "Update events that entered the queue."),
    ("events_completed", "Update events that finished."),
    ("events_dropped", "Update events evicted past their deferral budget."),
    ("events_deferred", "Deferrals charged (an event can defer repeatedly)."),
    ("rounds", "Scheduling rounds settled (empty rounds included)."),
    ("admissions", "Admissions that executed successfully."),
    ("plan_stages",
     "Compiled-plan stages applied across admissions (1 per atomic "
     "admission; staged/augmented plans contribute their stage count)."),
    ("flows_finished", "Admitted flows that completed transmission."),
    ("exec_retries", "Failed execution attempts that were retried."),
    ("exec_failures", "Admissions whose execution failed terminally."),
    ("faults_injected", "Link/switch failures fired mid-run."),
    ("faults_healed", "Failures that healed."),
    ("churn_ticks", "Background flow completions."),
    # Probe-loop health (PreRound deltas; zero for schedulers without a
    # probe cache / learned ranking).
    ("probe_cache_hits", "Cost probes served from the probe cache."),
    ("probe_cache_misses", "Cost probes that required a fresh plan."),
    ("probe_cache_invalidations",
     "Cached probes evicted on footprint version drift."),
    ("probes_skipped",
     "Sampled candidates never exactly probed (learned ranking budget)."),
    ("prediction_samples",
     "Online training pairs the learned scheduler consumed."),
    ("fallback_rounds",
     "Rounds the learned scheduler degraded to full probing."),
    # Crash-recovery health (set by the service / supervisor, not by
    # hooks; zero on runs without a state dir).
    ("restarts", "Times this service resumed from a checkpoint."),
    ("journal_records", "Records appended to the write-ahead journal."),
    ("recovery_replayed_events",
     "Journal-suffix records verified by re-execution after a restore."),
)


def _scheduler_of(sim: "SimulatorPort"):
    return sim.pipeline.scheduler


def _probe_cache_of(sim: "SimulatorPort"):
    return getattr(_scheduler_of(sim), "cache", None)


def _probe_cache_purges(sim: "SimulatorPort") -> int:
    cache = _probe_cache_of(sim)
    return getattr(cache, "purges", 0) if cache is not None else 0


def _probe_cache_entries(sim: "SimulatorPort") -> int:
    cache = _probe_cache_of(sim)
    return len(cache) if cache is not None else 0


def _prediction_error_ewma(sim: "SimulatorPort") -> float:
    return float(getattr(_scheduler_of(sim), "prediction_error_ewma", 0.0))


def _fallback_active(sim: "SimulatorPort") -> int:
    return int(bool(getattr(_scheduler_of(sim), "fallback_active", False)))


#: (counter name, help text, live reader) — monotonic values kept by the
#: scheduler itself rather than accumulated from hook deltas.
_LIVE_COUNTERS = (
    ("probe_cache_purges",
     "Probe-cache entries dropped by completion/drop purges.",
     _probe_cache_purges),
)

#: (gauge name, help text, reader) in render order.
_GAUGES = (
    ("queue_depth", "Events waiting in the scheduler queue.",
     lambda sim: sim.pipeline.queue_depth),
    ("events_remaining", "Events enqueued but not yet terminal.",
     lambda sim: sim.pipeline.events_remaining),
    ("engine_pending", "Scheduled engine events not yet executed.",
     lambda sim: sim.engine.pending),
    ("sim_time_seconds", "Current simulated time.",
     lambda sim: sim.now),
    ("probe_cache_entries", "Entries currently memoized in the probe cache.",
     _probe_cache_entries),
    ("prediction_error_ewma",
     "Learned scheduler's EWMA of absolute prediction error "
     "(log1p-cost scale; 0 for exact schedulers).",
     _prediction_error_ewma),
    ("prediction_fallback_active",
     "1 while the learned scheduler would full-probe the next round.",
     _fallback_active),
    ("compile_epsilon",
     "Transient over-subscription budget of the plan compiler "
     "(0 under atomic/staged modes).",
     lambda sim: float(sim.config.compile_epsilon)),
    ("max_transient_overload",
     "Worst fractional transient capacity overshoot any compiled stage "
     "allowed so far (0 under atomic/staged modes).",
     lambda sim: float(sim.metrics_collector.max_transient_overload)),
)


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` value per the Prometheus text exposition format.

    The format is line-oriented: help text is everything after the metric
    name up to the newline, with only two escapes defined — ``\\\\`` for a
    backslash and ``\\n`` for a line feed. Writing either character
    verbatim (as ``render`` used to) tears the exposition: an embedded
    newline turns the rest of the help text into an unparseable line, and
    a lone backslash corrupts the escaped reading on re-ingestion.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class CounterExporter:
    """Accumulates hook-driven counters; renders Prometheus text format.

    Args:
        namespace: metric-name prefix (``<namespace>_<counter>_total``).
    """

    def __init__(self, namespace: str = "repro") -> None:
        if not namespace.isidentifier():
            raise ValueError(f"namespace must be an identifier, "
                             f"got {namespace!r}")
        self._namespace = namespace
        self._sim: SimulatorPort | None = None
        self._counts: dict[str, int] = {name: 0 for name, _ in _COUNTERS}

    def attach(self, sim: SimulatorPort) -> None:
        self._sim = sim
        bus = sim.hooks
        bus.subscribe(_hooks.EventArrived, self._count("events_arrived"))
        bus.subscribe(_hooks.EventCompleted,
                      self._count("events_completed"))
        bus.subscribe(_hooks.EventDropped, self._count("events_dropped"))
        bus.subscribe(_hooks.EventDeferred, self._count("events_deferred"))
        bus.subscribe(_hooks.PostRound, self._count("rounds"))
        bus.subscribe(_hooks.PreRound, self._on_pre_round)
        bus.subscribe(_hooks.EventAdmitted, self._on_admitted)
        bus.subscribe(_hooks.FlowFinished, self._count("flows_finished"))
        bus.subscribe(_hooks.ExecutionFailed, self._count("exec_failures"))
        bus.subscribe(_hooks.ExecutionRetried, self._on_retried)
        bus.subscribe(_hooks.FaultInjected, self._count("faults_injected"))
        bus.subscribe(_hooks.FaultHealed, self._count("faults_healed"))
        bus.subscribe(_hooks.ChurnTick, self._count("churn_ticks"))

    def _count(self, name: str) -> Callable[[_hooks.Hook], None]:
        def bump(_hook: _hooks.Hook) -> None:
            self._counts[name] += 1
        return bump

    def _on_admitted(self, hook: _hooks.EventAdmitted) -> None:
        self._counts["admissions"] += 1
        self._counts["plan_stages"] += hook.stage_count

    def _on_retried(self, hook: _hooks.ExecutionRetried) -> None:
        self._counts["exec_retries"] += hook.retries

    def _on_pre_round(self, hook: _hooks.PreRound) -> None:
        self._counts["probe_cache_hits"] += hook.cache_hits
        self._counts["probe_cache_misses"] += hook.cache_misses
        self._counts["probe_cache_invalidations"] += hook.cache_invalidations
        self._counts["probes_skipped"] += hook.probes_skipped
        self._counts["prediction_samples"] += hook.prediction_samples
        if hook.fallback:
            self._counts["fallback_rounds"] += 1

    @property
    def counters(self) -> dict[str, int]:
        """Current counter values (a copy)."""
        return dict(self._counts)

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite one declared counter (service-maintained counters
        such as ``journal_records`` are pushed, not hook-accumulated)."""
        if name not in self._counts:
            raise KeyError(f"unknown counter {name!r}")
        self._counts[name] = value

    def export_state(self) -> dict[str, int]:
        """Checkpoint the accumulated counts (crash recovery)."""
        return dict(self._counts)

    def restore_state(self, state: dict[str, int]) -> None:
        """Restore counts from :meth:`export_state` output; counters
        added since the checkpoint keep their zero default."""
        for name, value in state.items():
            if name in self._counts:
                self._counts[name] = int(value)

    def render(self) -> str:
        """The Prometheus text exposition (counters, then gauges)."""
        ns = self._namespace
        lines: list[str] = []
        for name, help_text in _COUNTERS:
            metric = f"{ns}_{name}_total"
            lines.append(f"# HELP {metric} {_escape_help(help_text)}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self._counts[name]}")
        if self._sim is not None:
            for name, help_text, read_live in _LIVE_COUNTERS:
                metric = f"{ns}_{name}_total"
                lines.append(f"# HELP {metric} {_escape_help(help_text)}")
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {read_live(self._sim)}")
            for name, help_text, read in _GAUGES:
                metric = f"{ns}_{name}"
                lines.append(f"# HELP {metric} {_escape_help(help_text)}")
                lines.append(f"# TYPE {metric} gauge")
                value = read(self._sim)
                rendered = repr(value) if isinstance(value, float) \
                    else str(value)
                lines.append(f"{metric} {rendered}")
        return "\n".join(lines) + "\n"

    def write(self, path: "str | Path") -> None:
        """Atomically write :meth:`render` to ``path`` (textfile-collector
        style: scrapers never observe a torn file)."""
        atomic_write_text(path, self.render())

    def __repr__(self) -> str:
        alive = {k: v for k, v in self._counts.items() if v}
        return f"<CounterExporter {self._namespace} {alive}>"


class StatsLine:
    """Prints a one-line service digest every ``every`` settled rounds.

    Args:
        every: rounds between lines (>= 1).
        sink: where lines go; defaults to ``print`` (stdout).
    """

    def __init__(self, every: int = 50,
                 sink: Callable[[str], None] | None = None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._every = every
        self._sink: Callable[[str], None] = sink if sink is not None \
            else print
        self._sim: SimulatorPort | None = None
        self._lines = 0

    def attach(self, sim: SimulatorPort) -> None:
        self._sim = sim
        sim.hooks.subscribe(_hooks.PostRound, self._on_post_round)

    @property
    def lines(self) -> int:
        """Digest lines emitted so far."""
        return self._lines

    def _on_post_round(self, hook: _hooks.PostRound) -> None:
        if hook.index % self._every:
            return
        sim = self._sim
        assert sim is not None  # subscribed only through attach()
        collector = sim.metrics_collector
        self._lines += 1
        self._sink(
            f"[t={hook.now:10.3f}s] round={hook.index} "
            f"queued={sim.pipeline.queue_depth} "
            f"executing="
            f"{sim.pipeline.events_remaining - sim.pipeline.queue_depth} "
            f"completed={collector.completed_count} "
            f"dropped={collector.dropped_count} "
            f"stages={collector.total_stages} "
            f"pending={sim.engine.pending}")
