"""Trace-driven network-update simulation (paper §V).

The simulator wires everything together: events arrive into a queue, the
scheduler is consulted in *rounds*, admitted plans are executed on the live
network, and the admitted events' flows transmit until they complete — at
which point the next round begins. This round barrier matches the paper's
model (Fig. 3: each event occupies the network for its migration cost plus
its execution time; the next event starts afterwards), and P-LMTF's benefit
comes precisely from admitting several compatible events into one round.

Timeline of one round::

    round start (t0)            exec start (t0+plan)        round end
    |-- plan: α+1 cost probes --|-- migrate ---|-- install --|-- flows
    |                           |   (drain ∝ Cost(U))        |  transmit --|

Every admitted flow's completion is an engine event; the round ends when the
last admitted flow completes. An event completes when all its flows have
completed (for the flow-level baseline that spans many rounds).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.event import UpdateEvent
from repro.core.exceptions import (
    ControlPlaneError,
    InsufficientBandwidthError,
    PlacementError,
    SimulationError,
)
from repro.core.executor import PlanExecutor, RetryPolicy
from repro.core.flow import Flow, FlowKind
from repro.core.planner import EventPlanner
from repro.network.failures import FailureInjector, repair_event
from repro.network.network import Network
from repro.network.routing.provider import PathProvider
from repro.sim.faults import LinkFault, SwitchFault
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, RunMetrics
from repro.sim.timing import TimingModel
from repro.sim.tracelog import SimulationListener
from repro.traces.base import TraceGenerator


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level simulator knobs.

    Attributes:
        seed: seed for the planner RNG (path tiebreaks). Scheduler sampling
            uses the scheduler's own seed.
        verify_invariants: re-derive and assert network bookkeeping after
            every round (slow; the test suite turns it on).
        stall_fallback: when the scheduler admits nothing, nothing is
            running, and no future engine event can change the state, scan
            the queue in arrival order and admit the first feasible event
            instead of deadlocking. A strict-FIFO purist can turn this off
            and accept :class:`SimulationError` on pathological workloads.
        max_rounds: safety valve on scheduling rounds.
        background_churn: when True, finite-duration background flows
            complete over simulated time and (optionally) respawn, so the
            network state — and therefore queued events' costs — keeps
            changing, as §IV-A of the paper describes.
        churn_respawn: replace each completed background flow with a fresh
            trace flow to hold utilization roughly constant.
        round_barrier: when the next scheduling round may start.
            ``completion`` (default, matching the paper's Fig. 3 arithmetic
            and its "an update event cannot finish until such flows have
            been completed") waits for every admitted flow to finish
            transmitting; an event's ECT then includes its flows'
            transmissions. ``setup`` starts the next round as soon as the
            admitted updates are installed (plan + migration drain +
            install) — the pipelined reading in which ECT measures only the
            update application; admitted flows keep transmitting across
            subsequent rounds and contend with later events. Used by the
            model-sensitivity ablation.
        exec_max_retries: execution attempts after the first failure on an
            unreliable control plane (ignored on the reliable default).
        exec_backoff_s: backoff before the first execution retry; doubles
            per retry.
        exec_deadline_s: per-plan budget of simulated execution seconds;
            ``inf`` disables the deadline.
        max_deferrals: requeue budget per event. An admitted event whose
            execution fails is requeued (deferred); an event that can
            never be placed while the run is otherwise stalled is likewise
            deferred instead of deadlocking. Past this many deferrals the
            event is *dropped* with accounting (``RunMetrics.
            dropped_events`` / ``stranded_traffic``). ``None`` (default)
            keeps the legacy strictness: execution failures still requeue,
            but nothing is ever dropped and a permanent stall raises
            :class:`SimulationError` as before.
        repair_flow_duration: transmission duration given to the
            replacement flows of auto-generated repair events (stranded
            permanent background flows have none of their own).
    """

    seed: int = 0
    verify_invariants: bool = False
    stall_fallback: bool = True
    max_rounds: int = 1_000_000
    background_churn: bool = False
    churn_respawn: bool = True
    round_barrier: str = "completion"
    exec_max_retries: int = 2
    exec_backoff_s: float = 0.05
    exec_deadline_s: float = math.inf
    max_deferrals: int | None = None
    repair_flow_duration: float = 30.0

    def __post_init__(self):
        if self.round_barrier not in ("completion", "setup"):
            raise ValueError(f"unknown round_barrier "
                             f"{self.round_barrier!r}; pick 'completion' "
                             f"or 'setup'")
        if self.max_deferrals is not None and self.max_deferrals < 0:
            raise ValueError("max_deferrals must be >= 0 or None")
        if self.repair_flow_duration <= 0:
            raise ValueError("repair_flow_duration must be positive")


@dataclass
class RoundLog:
    """Diagnostic record of one scheduling round.

    The ``cache_*`` fields mirror the scheduler's probe-cache counters for
    the round (all zero for schedulers without a probe cache); benchmarks
    use them to report per-round hit rates.
    """

    index: int
    start_time: float
    plan_time: float
    admitted_events: tuple[str, ...]
    planning_ops: int
    total_cost: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0


class UpdateSimulator:
    """Runs a queue of update events through a scheduler on a live network.

    Args:
        network: the live network, typically preloaded with background
            traffic (see :class:`~repro.traces.background.BackgroundLoader`).
        provider: candidate-path lookup for the network's topology.
        scheduler: inter-event scheduling policy.
        planner: event planner; a default one is built from ``provider``.
        timing: timing model; defaults to :class:`TimingModel`.
        config: simulator knobs.
        churn_trace: generator for respawned background flows (required when
            ``config.background_churn and config.churn_respawn``).
        listener: optional :class:`~repro.sim.tracelog.SimulationListener`
            notified of rounds, admissions, completions and churn — pass a
            :class:`~repro.sim.tracelog.TraceLog` to capture a structured
            run log.
        control_plane: optional
            :class:`~repro.sim.controlplane.ControlPlane` under which rule
            installs and migration drains can fail or jitter; executions
            then retry with backoff (``config.exec_*``) and requeue on
            exhaustion. ``None`` keeps the infallible legacy model.
        faults: optional fault source — a
            :class:`~repro.sim.faults.FaultSchedule` or seeded
            :class:`~repro.sim.faults.FaultProcess` — whose link/switch
            failures fire as engine events *during* the run. Stranded
            flows are auto-packaged into repair events and enqueued at the
            failure's simulated time.
    """

    def __init__(self, network: Network, provider: PathProvider,
                 scheduler: Scheduler, planner: EventPlanner | None = None,
                 timing: TimingModel | None = None,
                 config: SimulationConfig | None = None,
                 churn_trace: TraceGenerator | None = None,
                 listener: "SimulationListener | None" = None,
                 control_plane=None, faults=None):
        self._network = network
        self._provider = provider
        self._scheduler = scheduler
        self._planner = planner or EventPlanner(provider)
        self._timing = timing or TimingModel()
        self._config = config or SimulationConfig()
        self._executor = PlanExecutor(
            self._timing, control_plane=control_plane,
            retry=RetryPolicy(max_retries=self._config.exec_max_retries,
                              backoff_s=self._config.exec_backoff_s,
                              deadline_s=self._config.exec_deadline_s))
        self._faults = faults
        self._injector = FailureInjector(network)
        if (self._config.background_churn and self._config.churn_respawn
                and churn_trace is None):
            raise ValueError("background_churn with churn_respawn requires "
                             "a churn_trace generator")
        self._churn_trace = churn_trace
        self._listener = listener
        self._rng = random.Random(self._config.seed)
        if churn_trace is not None:
            # Respawned flows obey the same host-link cap as initial loading.
            from repro.traces.background import BackgroundLoader
            self._churn_loader = BackgroundLoader(
                network, provider, churn_trace, random.Random(
                    self._config.seed + 1))
        else:
            self._churn_loader = None
        self._engine = SimulationEngine()
        self._metrics = MetricsCollector(scheduler.name)
        self._queue: list[QueuedEvent] = []
        self._round_active = False
        self._round_outstanding = 0
        self._round_index = 0
        self._event_outstanding: dict[str, int] = {}
        self._event_done_queueing: set[str] = set()
        self._rounds: list[RoundLog] = []
        self._submitted: list[UpdateEvent] = []
        self._events_remaining = 0
        self._enqueue_seq = 0
        self._churn_deficit = 0
        self._deferral_counts: dict[str, int] = {}
        self._ran = False

    # ------------------------------------------------------------ public API

    @property
    def network(self) -> Network:
        return self._network

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def rounds(self) -> list[RoundLog]:
        """Diagnostic per-round log (available after :meth:`run`)."""
        return list(self._rounds)

    def submit(self, events: list[UpdateEvent]) -> None:
        """Queue update events for the run (callable multiple times)."""
        if self._ran:
            raise SimulationError("simulator already ran; build a new one")
        for event in events:
            for flow in event.flows:
                if math.isinf(flow.service_time):
                    raise SimulationError(
                        f"event {event.event_id} flow {flow.flow_id} has "
                        f"infinite service time; event flows need a size or "
                        f"duration")
            self._submitted.append(event)

    def run(self) -> RunMetrics:
        """Execute the simulation to completion and return run metrics.

        Raises:
            SimulationError: the run deadlocked (some event can never be
                placed) or exceeded ``max_rounds``.
        """
        if self._ran:
            raise SimulationError("simulator already ran; build a new one")
        if not self._submitted:
            raise SimulationError("no events submitted")
        self._ran = True
        self._scheduler.reset()
        for event in sorted(self._submitted, key=lambda e: e.arrival_time):
            self._engine.schedule_at(event.arrival_time,
                                     self._arrival_callback(event))
        if self._faults is not None:
            for spec in self._faults.materialize(self._network):
                self._engine.schedule_at(spec.at,
                                         self._fault_callback(spec))
        if self._config.background_churn:
            self._setup_churn()
        self._engine.run()
        incomplete = self._metrics.incomplete_events()
        if incomplete:
            raise SimulationError(
                f"simulation drained with {len(incomplete)} events "
                f"incomplete: {incomplete[:5]}")
        if self._config.verify_invariants:
            self._network.check_invariants()
        return self._metrics.finalize()

    # -------------------------------------------------------------- arrivals

    def _arrival_callback(self, event: UpdateEvent):
        def on_arrival():
            self._queue.append(QueuedEvent(event, seq=self._enqueue_seq))
            self._enqueue_seq += 1
            self._metrics.on_enqueue(event.event_id, self._engine.now,
                                     len(event.flows))
            self._events_remaining += 1
            # Defer the round so that simultaneous arrivals (a batch queued
            # at t=0) are all visible to the first scheduling decision.
            self._engine.schedule_at(self._engine.now, self._maybe_round)
        return on_arrival

    # ---------------------------------------------------------------- rounds

    def _maybe_round(self) -> None:
        if self._round_active or not self._queue:
            return
        self._round_active = True
        ctx = SchedulingContext(now=self._engine.now, queue=list(self._queue),
                                planner=self._planner,
                                network=self._network, rng=self._rng)
        decision = self._scheduler.select(ctx)
        if decision.empty and self._should_fallback():
            decision = self._fallback_decision(ctx, decision)
        plan_time = self._timing.plan_time(decision.planning_ops)
        self._metrics.on_round(plan_time, decision.cache_hits,
                               decision.cache_misses,
                               decision.cache_invalidations)
        self._round_index += 1
        if self._listener is not None:
            self._listener.on_round(
                self._engine.now, self._round_index,
                [a.queued.event.event_id for a in decision.admissions],
                decision.planning_ops, plan_time, len(self._queue))
        if self._round_index > self._config.max_rounds:
            raise SimulationError(
                f"exceeded {self._config.max_rounds} scheduling rounds")
        if decision.empty:
            self._round_active = False
            self._check_deadlock()
            return
        self._execute_round(decision, plan_time)

    def _should_fallback(self) -> bool:
        """Fallback only when waiting cannot help: nothing is running and no
        future engine event (arrival, churn) will change the state."""
        return (self._config.stall_fallback
                and self._round_outstanding == 0
                and self._engine.pending == 0)

    def _fallback_decision(self, ctx: SchedulingContext,
                           prior: RoundDecision) -> RoundDecision:
        """Admit the first feasible queued event in arrival order.

        ``prior`` is the scheduler's empty decision; its planning ops and
        probe-cache counters carry over into the fallback decision.
        """
        ops = prior.planning_ops
        for queued in ctx.queue:
            plan = self._planner.plan_event(
                self._network, queued.subevent(queued.remaining), self._rng,
                commit=False)
            ops += plan.planning_ops
            if plan.feasible:
                return RoundDecision(
                    admissions=[Admission(queued=queued, plan=plan)],
                    planning_ops=ops,
                    cache_hits=prior.cache_hits,
                    cache_misses=prior.cache_misses,
                    cache_invalidations=prior.cache_invalidations)
        return RoundDecision(planning_ops=ops,
                             cache_hits=prior.cache_hits,
                             cache_misses=prior.cache_misses,
                             cache_invalidations=prior.cache_invalidations)

    def _check_deadlock(self) -> None:
        if self._round_outstanding != 0 or self._engine.pending != 0:
            return
        if self._config.max_deferrals is not None:
            self._handle_stall()
            return
        raise SimulationError(
            f"deadlock: {len(self._queue)} events queued, nothing "
            f"running, and no event can be placed (first blocked: "
            f"{self._queue[0].event.event_id})")

    def _handle_stall(self) -> None:
        """Degrade gracefully when no queued event can ever be placed.

        Nothing is running and no future engine event can change the state
        (a post-failure partition is the canonical case), so waiting is
        useless. Every stalled event is charged one deferral; events past
        ``max_deferrals`` are dropped with accounting. Each pass strictly
        increases deferral counts, so the stall resolves within
        ``max_deferrals + 1`` passes instead of burning ``max_rounds`` —
        and without tripping the stall fallback, which already ran and
        found nothing feasible.
        """
        for queued in list(self._queue):
            self._defer(queued, requeue=False)
        if self._queue:
            self._engine.schedule_at(self._engine.now, self._maybe_round)

    # ------------------------------------------------------- defer and drop

    def _exec_failed(self, admission: Admission, exc: Exception) -> None:
        """An admitted plan's execution failed terminally; requeue it.

        The executor has already rolled the network back to its
        pre-attempt state, so the queued event (whose ``remaining`` flows
        were never trimmed — that happens only after a successful execute)
        simply goes back through :meth:`_defer`.
        """
        event_id = admission.queued.event.event_id
        attempts = getattr(exc, "attempts", 1)
        if attempts > 1:
            self._metrics.on_retries(attempts - 1)
        if self._listener is not None:
            self._listener.on_exec_failure(self._engine.now, event_id,
                                           attempts, str(exc))
        self._defer(admission.queued)

    def _defer(self, queued: QueuedEvent, requeue: bool = True) -> None:
        """Charge ``queued`` one deferral; requeue or drop it.

        ``requeue`` moves the event to the back of the queue with a fresh
        sequence number, so FIFO treats it as newly arrived — a failed
        event must not wedge the queue head. Stall passes keep the order
        (``requeue=False``): every stalled event is charged together and
        relative order carries no information.
        """
        event_id = queued.event.event_id
        count = self._deferral_counts.get(event_id, 0) + 1
        self._deferral_counts[event_id] = count
        self._metrics.on_deferral(event_id)
        if self._listener is not None:
            self._listener.on_deferral(self._engine.now, event_id, count)
        limit = self._config.max_deferrals
        if limit is not None and count > limit:
            self._drop_event(queued)
            return
        if requeue:
            self._queue.remove(queued)
            queued.seq = self._enqueue_seq
            self._enqueue_seq += 1
            self._queue.append(queued)

    def _drop_event(self, queued: QueuedEvent) -> None:
        """Evict an event that exhausted its requeue deferrals.

        Its never-placed flows' demand is accounted as stranded traffic;
        any cost it realized through earlier partial admissions stays in
        the metrics (that traffic really moved). The probe cache forgets
        the event's keys so they stop occupying slots.
        """
        event_id = queued.event.event_id
        self._queue.remove(queued)
        stranded = sum(flow.demand for flow in queued.remaining)
        self._metrics.on_drop(event_id, self._engine.now, stranded)
        self._events_remaining -= 1
        cache = getattr(self._scheduler, "cache", None)
        if cache is not None:
            cache.forget_event(event_id)
        if self._listener is not None:
            self._listener.on_drop(self._engine.now, event_id, stranded)

    # ---------------------------------------------------------------- faults

    def _fault_callback(self, spec: "LinkFault | SwitchFault"):
        def on_fault():
            if isinstance(spec, LinkFault):
                record = self._injector.fail_link(
                    spec.u, spec.v, both_directions=spec.both_directions)
            else:
                record = self._injector.fail_switch(spec.switch)
            self._metrics.on_fault()
            if self._listener is not None:
                self._listener.on_fault(self._engine.now, record.description,
                                        len(record.stranded),
                                        record.stranded_demand)
            if record.stranded:
                # Stranded flows (background traffic or mid-transmission
                # update flows) become a repair event competing in the
                # ordinary update queue, per the paper's framing of failure
                # recovery as just another update-event source. Permanent
                # background flows carry no finite duration of their own,
                # so replacements always get the configured one.
                repair = repair_event(
                    record, arrival_time=self._engine.now,
                    duration=self._config.repair_flow_duration)
                self._enqueue_internal(repair)
            if spec.heal_at is not None:
                self._engine.schedule_at(spec.heal_at,
                                         self._heal_callback(record))
            # Re-check the queue: capacity loss cannot unblock anything,
            # but if this fault was the last pending engine event the run
            # must fall through to stall handling instead of draining with
            # events still queued.
            self._engine.schedule_at(self._engine.now, self._maybe_round)
        return on_fault

    def _heal_callback(self, record):
        def on_heal():
            self._injector.heal(record)
            self._metrics.on_heal()
            if self._listener is not None:
                self._listener.on_heal(self._engine.now, record.description)
            # Restored capacity may make queued events feasible again.
            self._engine.schedule_at(self._engine.now, self._maybe_round)
        return on_heal

    def _enqueue_internal(self, event: UpdateEvent) -> None:
        """Enqueue a simulator-generated event (a failure repair) mid-run."""
        self._queue.append(QueuedEvent(event, seq=self._enqueue_seq))
        self._enqueue_seq += 1
        self._metrics.on_enqueue(event.event_id, self._engine.now,
                                 len(event.flows))
        self._events_remaining += 1
        self._engine.schedule_at(self._engine.now, self._maybe_round)

    def _execute_round(self, decision: RoundDecision,
                       plan_time: float) -> None:
        setup_barrier = self._config.round_barrier == "setup"
        exec_start = self._engine.now + plan_time
        admitted_ids = []
        total_cost = 0.0
        round_end = exec_start
        for admission in decision.admissions:
            event_id = admission.queued.event.event_id
            try:
                record = self._executor.execute(self._network, admission.plan,
                                                exec_start)
            except (ControlPlaneError, PlacementError) as exc:
                # Rule installs / migration drains exhausted their retries
                # (or the state no longer admits the plan). The executor
                # already rolled the network back; charge the wasted
                # simulated time to the round and requeue the event.
                round_end = max(round_end,
                                exec_start + getattr(exc, "elapsed", 0.0))
                self._exec_failed(admission, exc)
                continue
            if record.attempts > 1:
                self._metrics.on_retries(record.attempts - 1)
            admitted_ids.append(event_id)
            total_cost += admission.plan.cost
            round_end = max(round_end, record.finish_setup_time)
            self._metrics.on_exec_start(event_id, exec_start)
            self._metrics.on_admission(event_id, admission.plan.cost,
                                       admission.plan.migration_count)
            self._metrics.on_setup_done(event_id, record.finish_setup_time)
            if self._listener is not None:
                self._listener.on_admission(
                    exec_start, event_id, admission.plan.cost,
                    admission.plan.migration_count,
                    len(admission.plan.flow_plans))
            admitted_flow_ids = set()
            for flow_plan in admission.plan.flow_plans:
                flow = flow_plan.flow
                admitted_flow_ids.add(flow.flow_id)
                finish = record.finish_setup_time + flow.service_time
                if not setup_barrier:
                    self._round_outstanding += 1
                self._event_outstanding[event_id] = \
                    self._event_outstanding.get(event_id, 0) + 1
                self._engine.schedule_at(
                    finish, self._flow_finish_callback(flow, event_id))
            # Queue bookkeeping: drop admitted flows; drop drained events.
            admission.queued.remaining = [
                f for f in admission.queued.remaining
                if f.flow_id not in admitted_flow_ids]
            if admission.queued.done:
                self._queue.remove(admission.queued)
                self._event_done_queueing.add(event_id)
                if setup_barrier:
                    # Under the pipelined reading the event is "complete"
                    # once its update is fully applied; its flows keep
                    # transmitting as ordinary traffic.
                    self._metrics.on_completion(event_id,
                                                record.finish_setup_time)
                    self._events_remaining -= 1
                    if self._listener is not None:
                        self._listener.on_event_complete(
                            record.finish_setup_time, event_id)
        for queued in self._queue:
            self._metrics.on_wait(queued.event.event_id)
        self._rounds.append(RoundLog(
            index=self._round_index, start_time=self._engine.now,
            plan_time=plan_time, admitted_events=tuple(admitted_ids),
            planning_ops=decision.planning_ops, total_cost=total_cost,
            cache_hits=decision.cache_hits,
            cache_misses=decision.cache_misses,
            cache_invalidations=decision.cache_invalidations))
        if setup_barrier:
            self._engine.schedule_at(round_end, self._end_round)
        elif self._round_outstanding == 0:
            # Every admission failed and rolled back: no flow transmission
            # will end this round, so end it once the wasted retry time has
            # elapsed (the deferred events are already back in the queue).
            self._engine.schedule_at(round_end, self._end_round)
        if self._config.verify_invariants:
            self._network.check_invariants()

    def _end_round(self) -> None:
        self._round_active = False
        self._maybe_round()

    # ------------------------------------------------------------ completion

    def _flow_finish_callback(self, flow: Flow, event_id: str):
        setup_barrier = self._config.round_barrier == "setup"

        def on_finish():
            # A mid-round fault may have stranded (removed) this flow; its
            # replacement travels in a repair event, but the admission
            # barrier still releases here at the nominal finish time.
            if self._network.has_flow(flow.flow_id):
                self._network.remove(flow.flow_id)
            self._event_outstanding[event_id] -= 1
            if self._listener is not None:
                self._listener.on_flow_finish(self._engine.now,
                                              flow.flow_id, event_id)
            if setup_barrier:
                # Completion was recorded at setup time; flow drain only
                # frees bandwidth (and may unblock a waiting round).
                self._maybe_round()
                return
            if (self._event_outstanding[event_id] == 0
                    and event_id in self._event_done_queueing):
                self._metrics.on_completion(event_id, self._engine.now)
                self._events_remaining -= 1
                if self._listener is not None:
                    self._listener.on_event_complete(self._engine.now,
                                                     event_id)
            self._round_outstanding -= 1
            if self._round_outstanding == 0:
                self._round_active = False
                self._maybe_round()
        return on_finish

    # ----------------------------------------------------------------- churn

    def _setup_churn(self) -> None:
        for flow_id in list(self._network.flow_ids()):
            flow = self._network.placement(flow_id).flow
            if (flow.kind is FlowKind.BACKGROUND
                    and not math.isinf(flow.service_time)):
                self._engine.schedule_at(
                    self._engine.now + flow.service_time,
                    self._background_finish_callback(flow))

    def _background_finish_callback(self, flow: Flow):
        def on_finish():
            if self._network.has_flow(flow.flow_id):
                self._network.remove(flow.flow_id)
            # Churn exists to perturb queued events' costs; once every
            # event has completed, respawning would only keep the engine
            # alive forever.
            before = self._churn_deficit
            if (self._events_remaining > 0
                    and self._config.churn_respawn
                    and self._churn_trace is not None):
                self._respawn_background()
            if self._listener is not None:
                self._listener.on_churn(
                    self._engine.now, flow.flow_id,
                    respawned=max(0, before + 1 - self._churn_deficit))
            self._maybe_round()
        return on_finish

    def _respawn_background(self) -> None:
        """Replace a completed background flow, keeping utilization level.

        When the network is momentarily too hot to place a replacement, the
        shortfall is remembered (``_churn_deficit``) and repaid at later
        churn ticks, so long runs do not silently decay below the loaded
        utilization target.
        """
        self._churn_deficit += 1
        spawned = 0
        while self._churn_deficit > 0 and spawned < 8:
            replacement = self._churn_trace.sample_flow(
                kind=FlowKind.BACKGROUND, permanent=False)
            path = self._churn_loader.best_path(replacement)
            if path is None:
                break
            try:
                self._network.place(replacement, path)
            except InsufficientBandwidthError:
                break  # rule-limited networks can refuse; repay later
            self._engine.schedule_at(
                self._engine.now + replacement.service_time,
                self._background_finish_callback(replacement))
            self._churn_deficit -= 1
            spawned += 1
