"""Trace-driven network-update simulation (paper §V).

The simulator is now a thin driver around three collaborators:

* :class:`~repro.sim.pipeline.RoundPipeline` — the staged round machinery
  (collect → schedule → admit → execute → settle → account) and all queue
  / lifecycle state,
* :class:`~repro.sim.lifecycle.EventLifecycle` — the explicit event state
  machine, asserted on every move,
* :class:`~repro.sim.hooks.HookBus` — where every cross-cutting concern
  (metrics, trace log, fault injection, background churn, control-plane
  retry accounting) subscribes; the core imports none of them.

Timeline of one round::

    round start (t0)            exec start (t0+plan)        round end
    |-- plan: α+1 cost probes --|-- migrate ---|-- install --|-- flows
    |                           |   (drain ∝ Cost(U))        |  transmit --|

Every admitted flow's completion is an engine event; the round ends when
the last admitted flow completes (paper Fig. 3), and an event completes
when all its flows have (for the flow-level baseline that spans many
rounds). ``SimulationConfig`` and ``RoundLog`` are re-exported here for
backward compatibility; they live in :mod:`repro.sim.config` and
:mod:`repro.sim.pipeline`.
"""

from __future__ import annotations

import math
import os
import random

from repro.core.compile import PlanCompilerConfig
from repro.core.event import UpdateEvent
from repro.core.exceptions import SimulationError
from repro.core.executor import PlanExecutor, RetryPolicy
from repro.core.planner import EventPlanner
from repro.network.network import Network
from repro.network.routing.provider import PathProvider
from repro.sched.base import RoundDecision, Scheduler, SchedulingContext
from repro.sim.audit import LifecycleAuditor
from repro.sim.churn import ChurnDriver
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.hooks import HookBus, RunStarted
from repro.sim.lifecycle import EventLifecycle
from repro.sim.metrics import MetricsCollector, MetricsSubscriber, RunMetrics
from repro.sim.pipeline import RoundLog, RoundPipeline
from repro.sim.timing import TimingModel
from repro.sim.tracelog import ListenerSubscriber, SimulationListener
from repro.traces.base import TraceGenerator

__all__ = ["RoundLog", "SimulationConfig", "UpdateSimulator"]


class UpdateSimulator:
    """Runs a queue of update events through a scheduler on a live network.

    Args:
        network: the live network, typically preloaded with background
            traffic (see :class:`~repro.traces.background.BackgroundLoader`).
        provider: candidate-path lookup for the network's topology.
        scheduler: inter-event scheduling policy.
        planner: event planner; a default one is built from ``provider``.
        timing: timing model; defaults to :class:`TimingModel`.
        config: simulator knobs.
        churn_trace: generator for respawned background flows (required when
            ``config.background_churn and config.churn_respawn``).
        listener: optional :class:`~repro.sim.tracelog.SimulationListener`
            notified of rounds, admissions, completions and churn — pass a
            :class:`~repro.sim.tracelog.TraceLog` to capture a structured
            run log.
        control_plane: optional control-plane model (an object exposing
            ``reliable`` / ``migration_ok()`` / ``install_ok()`` /
            ``attempt_jitter_s()``, see :mod:`repro.sim.controlplane`)
            under which rule installs and migration drains can fail or
            jitter; executions then retry with backoff (``config.exec_*``)
            and requeue on exhaustion. ``None`` keeps the infallible
            legacy model.
        faults: optional fault source — any plugin exposing
            ``attach(sim)``, e.g. a :class:`~repro.sim.faults.FaultSchedule`
            or seeded :class:`~repro.sim.faults.FaultProcess` — whose
            link/switch failures fire as engine events *during* the run.
            Stranded flows are auto-packaged into repair events and
            enqueued at the failure's simulated time.
        audit: attach a :class:`~repro.sim.audit.LifecycleAuditor` that
            cross-checks lifecycle / pipeline / metrics / engine
            bookkeeping at every settled round, raising
            :class:`~repro.sim.audit.AuditError` on drift. Also enabled
            globally by setting the ``REPRO_AUDIT`` environment variable
            to anything but ``0`` / empty (how CI re-runs the schedule
            pins audited). The auditor only reads state, so enabling it
            never changes the schedule.
    """

    def __init__(self, network: Network, provider: PathProvider,
                 scheduler: Scheduler, planner: EventPlanner | None = None,
                 timing: TimingModel | None = None,
                 config: SimulationConfig | None = None,
                 churn_trace: TraceGenerator | None = None,
                 listener: "SimulationListener | None" = None,
                 control_plane=None, faults=None,
                 audit: bool | None = None):
        self._network = network
        self._provider = provider
        self._scheduler = scheduler
        self._planner = planner or EventPlanner(provider)
        self._timing = timing or TimingModel()
        self._config = config or SimulationConfig()
        self._hooks = HookBus()
        self._lifecycle = EventLifecycle()
        compiler = None
        if self._config.compile_mode != "atomic":
            compiler = PlanCompilerConfig(
                mode=self._config.compile_mode,
                epsilon=self._config.compile_epsilon)
        self._executor = PlanExecutor(
            self._timing, control_plane=control_plane,
            retry=RetryPolicy(max_retries=self._config.exec_max_retries,
                              backoff_s=self._config.exec_backoff_s,
                              deadline_s=self._config.exec_deadline_s),
            hooks=self._hooks, compiler=compiler)
        if (self._config.background_churn and self._config.churn_respawn
                and churn_trace is None):
            raise ValueError("background_churn with churn_respawn requires "
                             "a churn_trace generator")
        self._rng = random.Random(self._config.seed)
        self._engine = SimulationEngine()
        self._metrics = MetricsCollector(scheduler.name)
        self._pipeline = RoundPipeline(
            engine=self._engine, scheduler=scheduler, planner=self._planner,
            timing=self._timing, executor=self._executor, network=network,
            config=self._config, rng=self._rng, hooks=self._hooks,
            lifecycle=self._lifecycle)
        # Subscription order is the observable record order: metrics first,
        # listener second (matching the monolith's call order), plugins
        # last (they only consume RunStarted).
        MetricsSubscriber(self._metrics, self._hooks)
        if listener is not None:
            ListenerSubscriber(listener, self._hooks)
        if faults is not None:
            self.attach(faults)
        self._churn: "ChurnDriver | None" = None
        if churn_trace is not None or self._config.background_churn:
            # Respawned flows obey the same host-link cap as initial
            # loading; the driver's RNG is independent of the planner's.
            self._churn = ChurnDriver(
                network, provider, churn_trace,
                random.Random(self._config.seed + 1))
            self.attach(self._churn)
        self._auditor: "LifecycleAuditor | None" = None
        if audit is None:
            audit = os.environ.get("REPRO_AUDIT", "0") not in ("", "0")
        if audit:
            # Attached last: the auditor must observe PostRound *after*
            # the metrics subscriber charged its waits and rounds.
            self._auditor = LifecycleAuditor()
            self.attach(self._auditor)
        self._submitted: list[UpdateEvent] = []
        self._ran = False

    # ------------------------------------------------------------ public API

    @property
    def network(self) -> Network:
        return self._network

    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def churn(self) -> "ChurnDriver | None":
        """The attached background-churn driver, if any."""
        return self._churn

    @property
    def rng(self) -> random.Random:
        """The planner RNG (checkpointed for crash recovery)."""
        return self._rng

    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def hooks(self) -> HookBus:
        """The bus every cross-cutting concern subscribes on."""
        return self._hooks

    @property
    def lifecycle(self) -> EventLifecycle:
        """The event-lifecycle registry (asserted on every move)."""
        return self._lifecycle

    @property
    def pipeline(self) -> RoundPipeline:
        return self._pipeline

    @property
    def metrics_collector(self) -> MetricsCollector:
        """The live metrics ledger (the auditor cross-checks it)."""
        return self._metrics

    @property
    def auditor(self) -> "LifecycleAuditor | None":
        """The attached lifecycle auditor, if auditing is enabled."""
        return self._auditor

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def rounds(self) -> list[RoundLog]:
        """Diagnostic per-round log (available after :meth:`run`)."""
        return self._pipeline.rounds

    @property
    def events_remaining(self) -> int:
        """Events enqueued but not yet completed or dropped."""
        return self._pipeline.events_remaining

    def attach(self, plugin) -> None:
        """Attach a hook-bus plugin — anything exposing ``attach(sim)``."""
        plugin.attach(self)

    def enqueue(self, event: UpdateEvent, origin: str = "submitted") -> None:
        """Enqueue a mid-run event (plugins use this for repair events)."""
        self._pipeline.enqueue(event, origin)

    def schedule_round(self) -> None:
        """Schedule a round check at the current simulated time."""
        self._pipeline.schedule_round()

    def maybe_round(self) -> None:
        """Run a round check immediately."""
        self._pipeline.maybe_round()

    def submit(self, events: list[UpdateEvent]) -> None:
        """Queue update events for the run (callable multiple times)."""
        if self._ran:
            raise SimulationError("simulator already ran; build a new one")
        for event in events:
            for flow in event.flows:
                if math.isinf(flow.service_time):
                    raise SimulationError(
                        f"event {event.event_id} flow {flow.flow_id} has "
                        f"infinite service time; event flows need a size or "
                        f"duration")
            self._submitted.append(event)

    def start(self) -> None:
        """Begin a *streaming* run (service mode).

        Marks the simulator as running, resets the scheduler and emits
        ``RunStarted`` — exactly the preamble :meth:`run` performs — but
        schedules no arrivals and does not drive the engine: the caller
        (:class:`~repro.sim.service.SimulationService`) injects events via
        :meth:`enqueue` and steps the engine itself. :meth:`run` and
        :meth:`start` are mutually exclusive on one simulator instance.
        """
        if self._ran:
            raise SimulationError("simulator already ran; build a new one")
        if self._submitted:
            raise SimulationError(
                "submit()ed events belong to run(); a streaming run "
                "ingests via enqueue()")
        self._ran = True
        self._scheduler.reset()
        self._hooks.emit(RunStarted(self))

    def mark_restored(self) -> None:
        """Mark a checkpoint-restored streaming run as started.

        Unlike :meth:`start`, this neither resets the scheduler (its
        RNG/model state was just restored and a reset would wipe it) nor
        emits ``RunStarted`` (plugins such as the churn driver schedule
        their initial engine events on that hook — replaying them would
        duplicate entries the restored engine heap already carries).
        """
        if self._ran:
            raise SimulationError("simulator already ran; build a new one")
        self._ran = True

    def run(self) -> RunMetrics:
        """Execute the simulation to completion and return run metrics.

        Raises:
            SimulationError: the run deadlocked (some event can never be
                placed) or exceeded ``max_rounds``.
        """
        if self._ran:
            raise SimulationError("simulator already ran; build a new one")
        if not self._submitted:
            raise SimulationError("no events submitted")
        self._ran = True
        self._scheduler.reset()
        for event in sorted(self._submitted, key=lambda e: e.arrival_time):
            self._engine.schedule_callback(
                event.arrival_time,
                lambda e=event: self._pipeline.enqueue(e),
                tag=f"arrival:{event.event_id}")
        self._hooks.emit(RunStarted(self))
        self._engine.run()
        incomplete = self._metrics.incomplete_events()
        if incomplete:
            raise SimulationError(
                f"simulation drained with {len(incomplete)} events "
                f"incomplete: {incomplete[:5]}")
        if self._config.verify_invariants:
            self._network.check_invariants()
        return self._metrics.finalize()

    # --------------------------------------------------- compatibility shims
    # Tests (and downstream notebooks) poke these pre-refactor private
    # names; they delegate to the pipeline, which owns the round state.

    @property
    def _round_outstanding(self) -> int:
        return self._pipeline.round_outstanding

    @_round_outstanding.setter
    def _round_outstanding(self, value: int) -> None:
        self._pipeline.round_outstanding = value

    def _should_fallback(self) -> bool:
        return self._pipeline.should_fallback()

    def _fallback_decision(self, ctx: SchedulingContext,
                           prior: RoundDecision) -> RoundDecision:
        return self._pipeline.fallback_decision(ctx, prior)

    def _maybe_round(self) -> None:
        self._pipeline.maybe_round()
