"""Subpackage of repro."""
