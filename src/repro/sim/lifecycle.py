"""The explicit event-lifecycle state machine (paper §III, event level).

Every update event moving through the simulator follows one lifecycle::

                      ┌──────────────────────────────┐
                      ▼                              │
    (register) → QUEUED → PROBED → ADMITTED → EXECUTING → COMPLETED
                      │  ▲   │                   │
                      │  └───┘ (not selected)    │ (exec failed /
                      ▼                          ▼  partial admission)
                  DEFERRED ◄─────────────────────┘
                      │   └────────► QUEUED (requeued)
                      ▼
                   DROPPED

* ``QUEUED`` — waiting in the scheduler queue.
* ``PROBED`` — offered to the scheduler in the current round (its cost may
  be probed); returns to ``QUEUED`` if not selected.
* ``ADMITTED`` — selected by a round decision; its plan is about to be
  applied.
* ``EXECUTING`` — its update is being applied / its flows transmit. A
  partial admission (flow-level baseline) returns to ``QUEUED`` with the
  remaining flows.
* ``COMPLETED`` — terminal success.
* ``DEFERRED`` — charged one deferral (execution failure or placement
  stall); immediately requeued or dropped.
* ``DROPPED`` — terminal eviction after exhausting the deferral budget.

Repair events generated for failure-stranded traffic are *new* events and
get their own lifecycle (``origin="repair"``); the stranded traffic's
recovery is represented by the repair event reaching ``COMPLETED``.

The registry (:class:`EventLifecycle`) asserts legality on every move —
an illegal transition raises :class:`IllegalTransitionError` immediately,
turning silent bookkeeping bugs into loud ones — and keeps a bounded
per-event transition history for diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.exceptions import SimulationError


class EventState(enum.Enum):
    """States an update event can occupy inside the simulator."""

    QUEUED = "queued"
    PROBED = "probed"
    ADMITTED = "admitted"
    EXECUTING = "executing"
    COMPLETED = "completed"
    DEFERRED = "deferred"
    DROPPED = "dropped"

    def __repr__(self) -> str:
        return f"EventState.{self.name}"


#: Every legal move of the state machine. Anything not listed raises.
LEGAL_TRANSITIONS: dict[EventState, frozenset[EventState]] = {
    EventState.QUEUED: frozenset(
        {EventState.PROBED, EventState.DEFERRED}),
    EventState.PROBED: frozenset(
        {EventState.ADMITTED, EventState.QUEUED}),
    EventState.ADMITTED: frozenset(
        {EventState.EXECUTING}),
    EventState.EXECUTING: frozenset(
        {EventState.COMPLETED, EventState.DEFERRED, EventState.QUEUED}),
    EventState.DEFERRED: frozenset(
        {EventState.QUEUED, EventState.DROPPED}),
    EventState.COMPLETED: frozenset(),
    EventState.DROPPED: frozenset(),
}

#: Terminal states: no transition may leave them.
TERMINAL_STATES: frozenset[EventState] = frozenset(
    state for state, successors in LEGAL_TRANSITIONS.items()
    if not successors)


class IllegalTransitionError(SimulationError):
    """An event attempted a move the lifecycle does not allow."""


@dataclass(frozen=True)
class TransitionRecord:
    """One applied lifecycle move, timestamped in simulated seconds.

    ``frm`` is ``None`` for the registration move into ``QUEUED``.
    """

    event_id: str
    frm: EventState | None
    to: EventState
    at: float

    def __str__(self) -> str:
        frm = self.frm.value if self.frm is not None else "∅"
        return f"{self.event_id}: {frm}→{self.to.value} @t={self.at:.6f}"


class EventLifecycle:
    """Per-event state registry enforcing the lifecycle state machine.

    Args:
        history_limit: transition records kept per event (oldest evicted
            first). Probe/requeue churn is bounded per round, so a small
            window is enough to reconstruct how an event reached a state.
    """

    def __init__(self, history_limit: int = 32):
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self._states: dict[str, EventState] = {}
        self._origins: dict[str, str] = {}
        self._history: dict[str, list[TransitionRecord]] = {}
        self._history_limit = history_limit
        self._transitions = 0
        # State populations maintained incrementally so counts() stays O(1)
        # in the number of registered events — the lifecycle auditor reads
        # it on every round of an unbounded service run.
        self._counts: dict[EventState, int] = {s: 0 for s in EventState}

    # ------------------------------------------------------------- mutation

    def register(self, event_id: str, at: float,
                 origin: str = "submitted") -> TransitionRecord:
        """Enter a new event into the lifecycle in ``QUEUED``.

        Args:
            event_id: the event's unique id.
            at: simulated registration time.
            origin: provenance label (``"submitted"`` for user events,
                ``"repair"`` for failure-generated repair events).

        Raises:
            IllegalTransitionError: the id is already registered.
        """
        if event_id in self._states:
            raise IllegalTransitionError(
                f"event {event_id} registered twice (currently "
                f"{self._states[event_id].value})")
        self._origins[event_id] = origin
        return self._apply(event_id, None, EventState.QUEUED, at)

    def advance(self, event_id: str, to: EventState,
                at: float) -> TransitionRecord:
        """Move ``event_id`` to state ``to``, asserting legality.

        Raises:
            IllegalTransitionError: the event is unknown, the target state
                is not reachable from its current state, or the event is
                already in a terminal state.
        """
        try:
            current = self._states[event_id]
        except KeyError:
            raise IllegalTransitionError(
                f"unknown event {event_id}; register() it first") from None
        if to not in LEGAL_TRANSITIONS[current]:
            raise IllegalTransitionError(
                f"illegal transition for event {event_id}: "
                f"{current.value} → {to.value} (legal: "
                f"{sorted(s.value for s in LEGAL_TRANSITIONS[current])})")
        return self._apply(event_id, current, to, at)

    def _apply(self, event_id: str, frm: EventState | None,
               to: EventState, at: float) -> TransitionRecord:
        record = TransitionRecord(event_id=event_id, frm=frm, to=to, at=at)
        if frm is not None:
            self._counts[frm] -= 1
        self._counts[to] += 1
        self._states[event_id] = to
        history = self._history.setdefault(event_id, [])
        history.append(record)
        if len(history) > self._history_limit:
            del history[0]
        self._transitions += 1
        return record

    # -------------------------------------------------------- checkpointing

    def export_state(self) -> dict[str, Any]:
        """JSON-ready encoding of the registry for a checkpoint.

        Per-event transition histories are exported only for events still
        in a non-terminal state: histories are bounded diagnostics, and
        carrying them for every terminal event ever seen would grow the
        checkpoint without bound on a long-running service.
        """
        histories: dict[str, list[dict[str, Any]]] = {}
        for event_id, state in self._states.items():
            if state in TERMINAL_STATES:
                continue
            histories[event_id] = [
                {"frm": r.frm.value if r.frm is not None else None,
                 "to": r.to.value, "at": r.at}
                for r in self._history.get(event_id, ())]
        return {
            "states": {eid: s.value for eid, s in self._states.items()},
            "origins": dict(self._origins),
            "transitions": self._transitions,
            "histories": histories,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite this registry from :meth:`export_state` output."""
        if self._states:
            raise IllegalTransitionError(
                "restore_state requires an empty lifecycle registry")
        self._states = {eid: EventState(v)
                        for eid, v in state["states"].items()}
        self._origins = dict(state["origins"])
        self._transitions = int(state["transitions"])
        self._counts = {s: 0 for s in EventState}
        for value in self._states.values():
            self._counts[value] += 1
        self._history = {
            eid: [TransitionRecord(
                event_id=eid,
                frm=EventState(r["frm"]) if r["frm"] is not None else None,
                to=EventState(r["to"]), at=r["at"])
                for r in records]
            for eid, records in state["histories"].items()}

    # -------------------------------------------------------------- queries

    def state(self, event_id: str) -> EventState:
        """Current state of ``event_id`` (raises ``KeyError`` if unknown)."""
        return self._states[event_id]

    def knows(self, event_id: str) -> bool:
        return event_id in self._states

    def origin(self, event_id: str) -> str:
        """Provenance label given at registration."""
        return self._origins[event_id]

    def history(self, event_id: str) -> tuple[TransitionRecord, ...]:
        """Recent transition records of one event, oldest first."""
        return tuple(self._history.get(event_id, ()))

    def in_state(self, state: EventState) -> tuple[str, ...]:
        """Ids of all events currently in ``state``, registration order."""
        return tuple(eid for eid, s in self._states.items() if s is state)

    @property
    def transition_count(self) -> int:
        """Total transitions applied (registrations included)."""
        return self._transitions

    def counts(self) -> dict[EventState, int]:
        """Current population of every state (zero entries included)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        alive = {state.value: count for state, count in self.counts().items()
                 if count}
        return f"<EventLifecycle {len(self)} events {alive}>"
