"""A minimal deterministic discrete-event simulation engine.

The update simulator needs exact, reproducible time ordering for flow
completions, background churn and scheduling rounds. This engine is a
classic calendar queue: a heap of timestamped callbacks with a monotone
clock, FIFO tie-breaking via a sequence number, and O(log n) cancellation
through tombstones.

Tombstones are bounded: the engine counts them, answers :attr:`pending`
from the count in O(1) instead of rescanning the heap, and compacts the
heap (dropping every tombstone in one pass) whenever cancelled entries
outnumber live ones. Compaction preserves the pop order exactly — entries
are totally ordered by ``(time, seq)`` — so cancel/respawn churn cannot
change simulation results, only keep the heap small.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.exceptions import SimulationError

#: Never bother compacting heaps smaller than this; the rescan is free.
_COMPACT_MIN_SIZE = 64


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set once the entry has been popped off the heap (executed or
    #: discarded as a tombstone). A handle kept past that point must not
    #: be able to touch the engine's tombstone accounting.
    popped: bool = field(default=False, compare=False)


class TaggedCallback:
    """Callable wrapper giving scheduled work a diagnosable repr.

    Bare lambdas and bound methods render as ``<function <lambda> at 0x…>``
    in stall/deadlock diagnostics; tagging every scheduled callback (e.g.
    ``arrival:U3``, ``flow-finish:U3/f1``, ``heal:link s0<->s1``) makes the
    pending-event listing readable.
    """

    __slots__ = ("fn", "tag")

    def __init__(self, fn: Callable[[], None], tag: str) -> None:
        self.fn = fn
        self.tag = tag

    def __call__(self) -> None:
        self.fn()

    def __repr__(self) -> str:
        return f"<callback {self.tag}>"


class EventHandle:
    """Opaque handle returned by :meth:`SimulationEngine.schedule`."""

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: _ScheduledEvent,
                 engine: "SimulationEngine") -> None:
        self._entry = entry
        self._engine = engine

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def executed(self) -> bool:
        """True once the entry already ran (cancelling is then a no-op)."""
        return self._entry.popped and not self._entry.cancelled

    def cancel(self) -> None:
        """Mark the event so it will be skipped when popped (idempotent).

        Cancelling a handle whose entry was already popped — executed by
        :meth:`SimulationEngine.step` or discarded as a tombstone — is a
        no-op: the entry is no longer on the heap, so counting it as a
        tombstone would make :attr:`SimulationEngine.pending` undercount
        (even go negative) and mis-trigger stall/deadlock logic downstream.
        """
        if not self._entry.cancelled and not self._entry.popped:
            self._entry.cancelled = True
            self._engine._note_cancelled()


class SimulationEngine:
    """Priority-queue event loop with a monotone simulated clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: list[_ScheduledEvent] = []
        # Plain int rather than itertools.count: the next value must be
        # exportable for checkpoint/restore, and (time, seq) order *is* the
        # schedule, so a restored engine has to keep allocating from the
        # exact point the original stopped at.
        self._next_seq = 0
        self._processed = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) future events."""
        return len(self._heap) - self._cancelled

    @property
    def processed(self) -> int:
        """How many events have executed so far."""
        return self._processed

    def live_pending(self) -> int:
        """Recount pending events by scanning the heap (O(n)).

        Ground truth for the O(1) :attr:`pending` counter; the lifecycle
        auditor cross-checks the two every round to turn tombstone-count
        drift into an immediate failure instead of a misfired
        stall-fallback or deadlock diagnosis.
        """
        return sum(1 for entry in self._heap if not entry.cancelled)

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises:
            SimulationError: the time lies in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, clock is at "
                f"t={self._now:.6f}")
        entry = _ScheduledEvent(time=time, seq=self._next_seq,
                                callback=callback)
        self._next_seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def schedule_after(self, delay: float,
                       callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_callback(self, when: float, fn: Callable[[], None],
                          tag: str) -> EventHandle:
        """Schedule ``fn`` at ``when``, wrapped with a diagnosable ``tag``.

        Identical scheduling semantics to :meth:`schedule_at` (same clock
        check, same FIFO sequence numbering); the only difference is that
        the pending entry reprs as ``<callback tag>`` and surfaces in
        :meth:`pending_tags`.
        """
        return self.schedule_at(when, TaggedCallback(fn, tag))

    def pending_tags(self) -> list[str]:
        """Tags of live pending callbacks in ``(time, seq)`` pop order.

        Untagged callbacks report as ``?<typename>``. Intended for stall
        and deadlock diagnostics, not for control flow.
        """
        live = sorted((e.time, e.seq, e.callback) for e in self._heap
                      if not e.cancelled)
        return [cb.tag if isinstance(cb, TaggedCallback)
                else f"?{type(cb).__name__}" for _, _, cb in live]

    def step(self) -> bool:
        """Execute the earliest pending event; False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            entry.popped = True
            if entry.cancelled:
                self._cancelled -= 1
                continue
            self._now = entry.time
            self._processed += 1
            entry.callback()
            return True
        return False

    def run(self, max_events: int = 10_000_000,
            until: float | None = None) -> None:
        """Drain the event queue.

        Args:
            max_events: safety valve against runaway simulations.
            until: stop once the clock would pass this time (events at
                exactly ``until`` still run).

        Raises:
            SimulationError: ``max_events`` was exhausted (almost always a
                scheduling livelock in the caller's logic).
        """
        executed = 0
        while self._heap:
            if until is not None:
                head = self._peek()
                if head is None or head.time > until:
                    return
            if not self.step():
                return
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"engine executed {executed} events without draining; "
                    f"likely a scheduling livelock")

    # ------------------------------------------------------ checkpointing

    def export_state(self) -> dict[str, Any]:
        """Serializable engine state for a checkpoint.

        Live heap entries export as ``(time, seq, tag)`` triples — the
        callback itself is reconstructed at restore time from the tag, so
        every pending callback must be a :class:`TaggedCallback`. Tombstones
        are dropped: they cannot affect pop order, only heap size.

        Raises:
            SimulationError: a live pending callback is untagged and
                therefore not reconstructible.
        """
        entries: list[dict[str, Any]] = []
        for event in sorted(self._heap, key=lambda e: (e.time, e.seq)):
            if event.cancelled:
                continue
            callback = event.callback
            if not isinstance(callback, TaggedCallback):
                raise SimulationError(
                    f"cannot export untagged pending callback {callback!r}; "
                    f"checkpointable runs must schedule via "
                    f"schedule_callback()")
            entries.append({"time": event.time, "seq": event.seq,
                            "tag": callback.tag})
        return {"now": self._now, "next_seq": self._next_seq,
                "processed": self._processed, "entries": entries}

    def restore_state(self, state: dict[str, Any],
                      resolver: Callable[[str], Callable[[], None]],
                      ) -> dict[str, EventHandle]:
        """Rebuild clock, seq counter, and pending heap from a checkpoint.

        ``resolver`` maps a callback tag back to the callable to run —
        closures cannot be serialized, so the owning components re-bind
        them from the tag's embedded identifiers. Entries keep their
        original ``(time, seq)`` so pop order is byte-identical to the
        run that wrote the checkpoint.

        Returns a tag → :class:`EventHandle` map so owners that kept a
        cancellable handle (the service's pending arrival and snapshot
        timer) can re-acquire it. Duplicate tags keep the last handle —
        none of the handle-holding tags can legally repeat.
        """
        if self._heap or self._processed or self._next_seq:
            raise SimulationError("restore_state requires a fresh engine")
        self._now = float(state["now"])
        self._next_seq = int(state["next_seq"])
        self._processed = int(state["processed"])
        self._cancelled = 0
        handles: dict[str, EventHandle] = {}
        for entry in state["entries"]:
            tag = str(entry["tag"])
            scheduled = _ScheduledEvent(
                time=float(entry["time"]), seq=int(entry["seq"]),
                callback=TaggedCallback(resolver(tag), tag))
            heapq.heappush(self._heap, scheduled)
            handles[tag] = EventHandle(scheduled, self)
        return handles

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (len(self._heap) >= _COMPACT_MIN_SIZE
                and self._cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone in one pass and restore the heap invariant.

        ``(time, seq)`` totally orders entries, so re-heapifying the live
        subset pops in exactly the order the tombstoned heap would have.
        """
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def _peek(self) -> _ScheduledEvent | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).popped = True
            self._cancelled -= 1
        return self._heap[0] if self._heap else None
