"""Restorable full-state checkpoints for the crash-tolerant service.

A checkpoint is one JSON document capturing *everything* the service-mode
simulator needs to continue bit-for-bit: the engine's pending heap (as
``(time, seq, tag)`` triples), the round pipeline's queue and round state,
the lifecycle registry, the metrics ledger, the network's placement table
and residual columns (verbatim floats — addition-order history defines the
exact bits), every decision-affecting RNG, the scheduler's mutable state
(sampling RNG, online model, EWMAs), and the service's own ingest
bookkeeping. The document is versioned, fingerprinted, and written with
:func:`repro.core.ioutil.atomic_write_text` so a crash mid-write leaves
the previous checkpoint intact.

Restore = rebuild the identical simulator from its spec, apply the
checkpoint, skip the arrival stream's consumed prefix, then re-drive the
engine while cross-checking every re-produced journal record against the
journal suffix (:mod:`repro.sim.journal`). Because the simulator is
deterministic, re-execution past the checkpoint reproduces the original
schedule exactly; the journal turns that assumption into a per-record
assertion.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.exceptions import SimulationError
from repro.core.ioutil import payload_fingerprint, rng_state_payload

if TYPE_CHECKING:
    from repro.sim.service import SimulationService

__all__ = [
    "CHECKPOINT_FILE",
    "CHECKPOINT_VERSION",
    "HEARTBEAT_FILE",
    "JOURNAL_FILE",
    "RecoveryError",
    "build_checkpoint",
    "discard_state",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1

#: Fixed state-dir layout. ``snapshots.jsonl``/``latest.json``/
#: ``metrics.prom`` (the observability artifacts) may share the directory.
CHECKPOINT_FILE = "checkpoint.json"
JOURNAL_FILE = "journal.wal"
HEARTBEAT_FILE = "heartbeat.json"


class RecoveryError(SimulationError):
    """A resume attempt cannot proceed (missing, stale, or inconsistent
    state). The message always says what to do about it."""


def build_checkpoint(service: "SimulationService", origin: str,
                     journal_offset: int,
                     journal_records: int) -> dict[str, Any]:
    """Assemble the full checkpoint payload for ``service`` right now.

    Args:
        service: the running service (must be at an engine-callback
            boundary — mid-stage scheduler state is not serializable).
        origin: why the checkpoint was taken — ``"snapshot-tick"`` (the
            periodic timer, *before* the post-snapshot continuation ran),
            ``"stop"`` (a drain-triggering signal), or ``"final"`` (the
            end-of-serve write). Restore uses it to decide whether the
            post-snapshot continuation still has to run.
        journal_offset: byte size of the valid journal at this instant.
        journal_records: records in the journal at this instant.
    """
    from repro.core.event import event_id_state
    from repro.core.flow import flow_id_state

    sim = service._sim
    churn = sim.churn
    payload: dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "origin": origin,
        "scheduler": sim.scheduler.name,
        "compile": {"mode": sim.config.compile_mode,
                    "epsilon": sim.config.compile_epsilon},
        "engine": sim.engine.export_state(),
        "pipeline": sim.pipeline.export_state(),
        "lifecycle": sim.lifecycle.export_state(),
        "metrics": sim.metrics_collector.export_state(),
        "network": sim.network.export_state(),
        "churn": churn.export_state() if churn is not None else None,
        "sched": sim.scheduler.export_state(),
        "sim_rng": rng_state_payload(sim.rng),
        "counters": service._exporter.export_state(),
        "ids": {"flow": flow_id_state(), "event": event_id_state()},
        "journal": {"offset": journal_offset, "records": journal_records},
        "service": service._service_state(),
    }
    payload["fingerprint"] = payload_fingerprint(
        {k: v for k, v in payload.items() if k != "fingerprint"})
    return payload


def discard_state(state_dir: str | Path) -> list[str]:
    """Remove a previous run's recovery files (the ``--fresh`` flag).

    Deletes only the three files the service owns — checkpoint, journal,
    heartbeat — never the directory or any observability artifacts that
    share it. Returns the names actually removed.
    """
    directory = Path(state_dir)
    removed: list[str] = []
    for name in (CHECKPOINT_FILE, JOURNAL_FILE, HEARTBEAT_FILE):
        target = directory / name
        if target.exists():
            target.unlink()
            removed.append(name)
    return removed


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a checkpoint file.

    Raises:
        RecoveryError: the file is missing, unparseable, of an unknown
            version, or its fingerprint does not match its content (stale
            or tampered).
    """
    target = Path(path)
    if not target.exists():
        raise RecoveryError(
            f"no checkpoint at {target}; nothing to resume — start fresh "
            f"(or pass the state dir of the run you meant to continue)")
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(
            f"checkpoint at {target} is unreadable ({exc}); restore from "
            f"a backup or start fresh with --fresh") from exc
    if not isinstance(payload, dict):
        raise RecoveryError(
            f"checkpoint at {target} is not a JSON object; start fresh "
            f"with --fresh")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise RecoveryError(
            f"checkpoint at {target} has version {version!r}, this build "
            f"reads version {CHECKPOINT_VERSION}; resume with the build "
            f"that wrote it or start fresh with --fresh")
    recorded = payload.get("fingerprint")
    expected = payload_fingerprint(
        {k: v for k, v in payload.items() if k != "fingerprint"})
    if recorded != expected:
        raise RecoveryError(
            f"checkpoint at {target} fails its fingerprint check "
            f"(recorded {recorded!r}, content hashes to {expected!r}); "
            f"the file is stale or tampered — restore from a backup or "
            f"start fresh with --fresh")
    return payload
