"""Simulation observability: listeners and a structured trace log.

A :class:`SimulationListener` receives a callback for every significant
simulator transition (round decided, event admitted, flow finished,
background churned). :class:`TraceLog` is the bundled implementation — it
accumulates structured records and can dump them as JSON Lines, which makes
scheduler behaviour diffable across runs ("why did LMTF defer U7 in round
3?") without attaching a debugger to a discrete-event simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


class SimulationListener:
    """Callback interface the simulator notifies; all hooks default to
    no-ops so implementations override only what they need."""

    def on_round(self, time: float, round_index: int, admitted: list[str],
                 planning_ops: int, plan_time: float,
                 queue_depth: int) -> None:
        """A scheduling round was decided (possibly admitting nothing)."""

    def on_admission(self, time: float, event_id: str, cost: float,
                     migrations: int, flows: int) -> None:
        """One event (or event fragment) was admitted for execution."""

    def on_event_complete(self, time: float, event_id: str) -> None:
        """An update event finished."""

    def on_flow_finish(self, time: float, flow_id: str,
                       event_id: str | None) -> None:
        """A flow completed its transmission and left the network."""

    def on_churn(self, time: float, finished_flow_id: str,
                 respawned: int) -> None:
        """A background flow completed (and may have been replaced)."""

    def on_fault(self, time: float, description: str, stranded_flows: int,
                 stranded_demand: float) -> None:
        """A mid-run failure was injected, stranding the given traffic."""

    def on_heal(self, time: float, description: str) -> None:
        """A previously injected failure healed (capacity restored)."""

    def on_exec_failure(self, time: float, event_id: str, attempts: int,
                        reason: str) -> None:
        """An admitted event's execution failed (after ``attempts`` tries)
        and its state changes were rolled back."""

    def on_deferral(self, time: float, event_id: str, count: int) -> None:
        """An event was requeued; ``count`` is its total deferrals so far."""

    def on_drop(self, time: float, event_id: str,
                stranded_demand: float) -> None:
        """An event was dropped after exhausting its requeue deferrals."""


@dataclass
class TraceRecord:
    """One structured log record."""

    time: float
    kind: str
    data: dict[str, Any]

    def to_json(self) -> str:
        return json.dumps({"t": round(self.time, 6), "kind": self.kind,
                           **self.data})


@dataclass
class TraceLog(SimulationListener):
    """Accumulates simulator transitions as structured records.

    Args:
        capture_flows: record per-flow completions too (high volume —
            thousands of records on churny runs; off by default).
    """

    capture_flows: bool = False
    records: list[TraceRecord] = field(default_factory=list)

    def _add(self, time: float, kind: str, **data: Any) -> None:
        self.records.append(TraceRecord(time=time, kind=kind, data=data))

    # ------------------------------------------------------------- listener

    def on_round(self, time, round_index, admitted, planning_ops,
                 plan_time, queue_depth):
        self._add(time, "round", index=round_index, admitted=admitted,
                  ops=planning_ops, plan_time=round(plan_time, 6),
                  queue=queue_depth)

    def on_admission(self, time, event_id, cost, migrations, flows):
        self._add(time, "admission", event=event_id, cost=round(cost, 3),
                  migrations=migrations, flows=flows)

    def on_event_complete(self, time, event_id):
        self._add(time, "complete", event=event_id)

    def on_flow_finish(self, time, flow_id, event_id):
        if self.capture_flows:
            self._add(time, "flow_finish", flow=flow_id, event=event_id)

    def on_churn(self, time, finished_flow_id, respawned):
        if self.capture_flows:
            self._add(time, "churn", flow=finished_flow_id,
                      respawned=respawned)

    def on_fault(self, time, description, stranded_flows, stranded_demand):
        self._add(time, "fault", what=description,
                  stranded_flows=stranded_flows,
                  stranded_demand=round(stranded_demand, 3))

    def on_heal(self, time, description):
        self._add(time, "heal", what=description)

    def on_exec_failure(self, time, event_id, attempts, reason):
        self._add(time, "exec_failure", event=event_id, attempts=attempts,
                  reason=reason)

    def on_deferral(self, time, event_id, count):
        self._add(time, "deferral", event=event_id, count=count)

    def on_drop(self, time, event_id, stranded_demand):
        self._add(time, "drop", event=event_id,
                  stranded_demand=round(stranded_demand, 3))

    # --------------------------------------------------------------- export

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def to_jsonl(self) -> str:
        """The whole log as JSON Lines."""
        return "\n".join(record.to_json() for record in self.records)

    def save(self, path: str | Path) -> None:
        """Write the log as JSON Lines, atomically.

        An interrupt mid-save leaves the previous file intact instead of a
        truncated JSONL that downstream tooling would trust.
        """
        from repro.core.ioutil import atomic_write_text
        atomic_write_text(path, self.to_jsonl() + "\n")

    def __len__(self) -> int:
        return len(self.records)
