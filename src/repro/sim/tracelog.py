"""Simulation observability: listeners and a structured trace log.

A :class:`SimulationListener` receives a callback for every significant
simulator transition (round decided, event admitted, flow finished,
background churned). :class:`TraceLog` is the bundled implementation — it
accumulates structured records and can dump them as JSON Lines, which makes
scheduler behaviour diffable across runs ("why did LMTF defer U7 in round
3?") without attaching a debugger to a discrete-event simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.sim import hooks as _hooks


class SimulationListener:
    """Callback interface the simulator notifies; all hooks default to
    no-ops so implementations override only what they need."""

    def on_round(self, time: float, round_index: int, admitted: list[str],
                 planning_ops: int, plan_time: float,
                 queue_depth: int) -> None:
        """A scheduling round was decided (possibly admitting nothing)."""

    def on_admission(self, time: float, event_id: str, cost: float,
                     migrations: int, flows: int) -> None:
        """One event (or event fragment) was admitted for execution."""

    def on_event_complete(self, time: float, event_id: str) -> None:
        """An update event finished."""

    def on_flow_finish(self, time: float, flow_id: str,
                       event_id: str | None) -> None:
        """A flow completed its transmission and left the network."""

    def on_churn(self, time: float, finished_flow_id: str,
                 respawned: int) -> None:
        """A background flow completed (and may have been replaced)."""

    def on_fault(self, time: float, description: str, stranded_flows: int,
                 stranded_demand: float) -> None:
        """A mid-run failure was injected, stranding the given traffic."""

    def on_heal(self, time: float, description: str) -> None:
        """A previously injected failure healed (capacity restored)."""

    def on_exec_failure(self, time: float, event_id: str, attempts: int,
                        reason: str) -> None:
        """An admitted event's execution failed (after ``attempts`` tries)
        and its state changes were rolled back."""

    def on_deferral(self, time: float, event_id: str, count: int) -> None:
        """An event was requeued; ``count`` is its total deferrals so far."""

    def on_drop(self, time: float, event_id: str,
                stranded_demand: float) -> None:
        """An event was dropped after exhausting its requeue deferrals."""


@dataclass
class TraceRecord:
    """One structured log record."""

    time: float
    kind: str
    data: dict[str, Any]

    def to_json(self) -> str:
        return json.dumps({"t": round(self.time, 6), "kind": self.kind,
                           **self.data})


@dataclass
class TraceLog(SimulationListener):
    """Accumulates simulator transitions as structured records.

    Args:
        capture_flows: record per-flow completions too (high volume —
            thousands of records on churny runs; off by default).
    """

    capture_flows: bool = False
    records: list[TraceRecord] = field(default_factory=list)

    def _add(self, time: float, kind: str, **data: Any) -> None:
        self.records.append(TraceRecord(time=time, kind=kind, data=data))

    # ------------------------------------------------------------- listener

    def on_round(self, time, round_index, admitted, planning_ops,
                 plan_time, queue_depth):
        self._add(time, "round", index=round_index, admitted=admitted,
                  ops=planning_ops, plan_time=round(plan_time, 6),
                  queue=queue_depth)

    def on_admission(self, time, event_id, cost, migrations, flows):
        self._add(time, "admission", event=event_id, cost=round(cost, 3),
                  migrations=migrations, flows=flows)

    def on_event_complete(self, time, event_id):
        self._add(time, "complete", event=event_id)

    def on_flow_finish(self, time, flow_id, event_id):
        if self.capture_flows:
            self._add(time, "flow_finish", flow=flow_id, event=event_id)

    def on_churn(self, time, finished_flow_id, respawned):
        if self.capture_flows:
            self._add(time, "churn", flow=finished_flow_id,
                      respawned=respawned)

    def on_fault(self, time, description, stranded_flows, stranded_demand):
        self._add(time, "fault", what=description,
                  stranded_flows=stranded_flows,
                  stranded_demand=round(stranded_demand, 3))

    def on_heal(self, time, description):
        self._add(time, "heal", what=description)

    def on_exec_failure(self, time, event_id, attempts, reason):
        self._add(time, "exec_failure", event=event_id, attempts=attempts,
                  reason=reason)

    def on_deferral(self, time, event_id, count):
        self._add(time, "deferral", event=event_id, count=count)

    def on_drop(self, time, event_id, stranded_demand):
        self._add(time, "drop", event=event_id,
                  stranded_demand=round(stranded_demand, 3))

    # --------------------------------------------------------------- export

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def to_jsonl(self) -> str:
        """The whole log as JSON Lines."""
        return "\n".join(record.to_json() for record in self.records)

    def save(self, path: str | Path) -> None:
        """Write the log as JSON Lines, atomically.

        An interrupt mid-save leaves the previous file intact instead of a
        truncated JSONL that downstream tooling would trust.
        """
        from repro.core.ioutil import atomic_write_text
        atomic_write_text(path, self.to_jsonl() + "\n")

    def __len__(self) -> int:
        return len(self.records)


class ListenerSubscriber:
    """Feeds a :class:`SimulationListener` from hook-bus emissions.

    The simulator subscribes this adapter *after* the metrics adapter, so
    the listener observes each transition exactly where the pre-refactor
    monolith called it — trace-record order is byte-identical.
    """

    def __init__(self, listener: SimulationListener, bus: "_hooks.HookBus"):
        self._listener = listener
        bus.subscribe(_hooks.PreRound, self._on_pre_round)
        bus.subscribe(_hooks.EventAdmitted, self._on_admitted)
        bus.subscribe(_hooks.EventCompleted, self._on_completed)
        bus.subscribe(_hooks.FlowFinished, self._on_flow_finished)
        bus.subscribe(_hooks.ChurnTick, self._on_churn)
        bus.subscribe(_hooks.FaultInjected, self._on_fault)
        bus.subscribe(_hooks.FaultHealed, self._on_heal)
        bus.subscribe(_hooks.ExecutionFailed, self._on_exec_failed)
        bus.subscribe(_hooks.EventDeferred, self._on_deferred)
        bus.subscribe(_hooks.EventDropped, self._on_dropped)

    def _on_pre_round(self, hook: "_hooks.PreRound") -> None:
        self._listener.on_round(hook.now, hook.index, list(hook.admitted),
                                hook.planning_ops, hook.plan_time,
                                hook.queue_depth)

    def _on_admitted(self, hook: "_hooks.EventAdmitted") -> None:
        self._listener.on_admission(hook.exec_start, hook.event_id,
                                    hook.cost, hook.migrations, hook.flows)

    def _on_completed(self, hook: "_hooks.EventCompleted") -> None:
        self._listener.on_event_complete(hook.now, hook.event_id)

    def _on_flow_finished(self, hook: "_hooks.FlowFinished") -> None:
        self._listener.on_flow_finish(hook.now, hook.flow_id, hook.event_id)

    def _on_churn(self, hook: "_hooks.ChurnTick") -> None:
        self._listener.on_churn(hook.now, hook.flow_id, hook.respawned)

    def _on_fault(self, hook: "_hooks.FaultInjected") -> None:
        self._listener.on_fault(hook.now, hook.description,
                                hook.stranded_flows, hook.stranded_demand)

    def _on_heal(self, hook: "_hooks.FaultHealed") -> None:
        self._listener.on_heal(hook.now, hook.description)

    def _on_exec_failed(self, hook: "_hooks.ExecutionFailed") -> None:
        self._listener.on_exec_failure(hook.now, hook.event_id,
                                       hook.attempts, hook.reason)

    def _on_deferred(self, hook: "_hooks.EventDeferred") -> None:
        self._listener.on_deferral(hook.now, hook.event_id, hook.count)

    def _on_dropped(self, hook: "_hooks.EventDropped") -> None:
        self._listener.on_drop(hook.now, hook.event_id,
                               hook.stranded_demand)
