"""Supervised restart for the crash-tolerant service.

The service itself (:mod:`repro.sim.service`) makes a single process
exactly resumable; the supervisor closes the loop by actually restarting
it. It launches the serve command as a child process, watches the
heartbeat file the service refreshes every settled round, and:

* restarts a **crashed** child (non-zero exit / signal death) with
  bounded exponential backoff,
* kills and restarts a **stalled** child — one whose heartbeat shows no
  round progress for ``stall_timeout_s`` wall seconds (a livelocked or
  wedged service still *has* a live pid; only the heartbeat exposes it),
* gives up after ``max_restarts`` restarts, propagating the last exit
  code.

Every restart re-execs the original command line plus ``--resume``, so
the child restores the latest checkpoint and re-verifies its journal
suffix. The crash-injection environment (``REPRO_CRASH_AT`` /
``REPRO_CRASH_MODE``) is stripped from restarted children: a fresh
process restarts the crash-point hit counters from zero, so inheriting
the armament would kill every restart at the same point forever — the
chaos harness arms the *first* child only and expects the restart to
finish the run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.sim.crashpoint import ENV_VAR as _CRASH_ENV
from repro.sim.crashpoint import MODE_VAR as _CRASH_MODE_ENV
from repro.sim.snapshot import CHECKPOINT_FILE, HEARTBEAT_FILE, JOURNAL_FILE

__all__ = ["SupervisorConfig", "Supervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart policy of one supervised run.

    Attributes:
        max_restarts: give up after this many restarts (0 = never restart,
            just report the child's exit).
        backoff_initial_s: wall delay before the first restart.
        backoff_factor: multiplier applied per consecutive restart.
        backoff_max_s: ceiling on the restart delay.
        stall_timeout_s: kill the child once its heartbeat shows no round
            progress for this many wall seconds (0 disables the watchdog).
        poll_interval_s: how often the watchdog samples child liveness and
            the heartbeat.
    """

    max_restarts: int = 3
    backoff_initial_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    stall_timeout_s: float = 120.0
    poll_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_initial_s < 0:
            raise ValueError("backoff_initial_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError("backoff_max_s must be >= backoff_initial_s")
        if self.stall_timeout_s < 0:
            raise ValueError("stall_timeout_s must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0")


class Supervisor:
    """Launches, watches, and restarts one serve child process.

    Args:
        argv: the full child command line for the *first* attempt (e.g.
            ``[sys.executable, "-m", "repro.cli", "serve", ...]``).
            Restarts append ``--resume`` unless it is already present.
        state_dir: the service's ``--state-dir`` (heartbeat lives here).
        config: restart policy.
        sink: where progress lines go (default: print to stderr).
    """

    def __init__(self, argv: list[str], state_dir: str | Path,
                 config: SupervisorConfig | None = None,
                 sink: Any = None) -> None:
        if not argv:
            raise ValueError("argv must not be empty")
        self._argv = list(argv)
        self._state_dir = Path(state_dir)
        self._config = config or SupervisorConfig()
        self._sink = sink if sink is not None else (
            lambda line: print(line, file=sys.stderr, flush=True))
        self.restarts = 0

    # -------------------------------------------------------------- helpers

    def _log(self, message: str) -> None:
        self._sink(f"[supervisor] {message}")

    def _child_argv(self, attempt: int) -> list[str]:
        if (attempt == 0 or "--resume" in self._argv
                or not self._resumable()):
            # A child that died before writing any recoverable state (or
            # one already resuming) restarts with its original argv — a
            # blind --resume would be refused as having nothing to resume.
            return list(self._argv)
        return [*self._argv, "--resume"]

    def _child_env(self, attempt: int) -> dict[str, str]:
        env = dict(os.environ)
        if attempt > 0:
            # Fresh processes restart crash-point counters from zero; an
            # inherited armament would re-kill every restart at the same
            # point. Only the first child gets to be the chaos victim.
            env.pop(_CRASH_ENV, None)
            env.pop(_CRASH_MODE_ENV, None)
        return env

    def _read_heartbeat(self) -> dict[str, Any] | None:
        try:
            raw = (self._state_dir / HEARTBEAT_FILE).read_text(
                encoding="utf-8")
            payload = json.loads(raw)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _wait_watched(self, child: subprocess.Popen) -> int:
        """Wait for the child; kill it if the heartbeat stops progressing.

        Returns the exit code (negative = died by signal, POSIX style).
        """
        config = self._config
        last_round: Any = None
        last_progress = time.monotonic()
        while True:
            try:
                return child.wait(timeout=config.poll_interval_s)
            except subprocess.TimeoutExpired:
                pass
            if config.stall_timeout_s == 0:
                continue
            beat = self._read_heartbeat()
            if beat is not None and beat.get("round") != last_round:
                last_round = beat.get("round")
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > config.stall_timeout_s:
                self._log(
                    f"no heartbeat progress for "
                    f"{config.stall_timeout_s:.0f}s (stuck at round "
                    f"{last_round}); killing pid {child.pid}")
                child.send_signal(signal.SIGKILL)
                child.wait()
                return -signal.SIGKILL

    def _resumable(self) -> bool:
        """Mirror the service's own has-a-run test: a checkpoint, or a
        journal with at least one byte (a 0-byte journal is a run that
        died before committing anything — restart it fresh)."""
        journal = self._state_dir / JOURNAL_FILE
        return ((self._state_dir / CHECKPOINT_FILE).exists()
                or (journal.exists() and journal.stat().st_size > 0))

    # ------------------------------------------------------------------ run

    def run(self) -> int:
        """Supervise until the child exits cleanly or restarts run out.

        Returns the final child's exit code (0 on eventual success).
        """
        config = self._config
        delay = config.backoff_initial_s
        attempt = 0
        while True:
            argv = self._child_argv(attempt)
            self._log(f"starting attempt {attempt + 1}: "
                      f"{' '.join(argv[-6:])}")
            child = subprocess.Popen(argv, env=self._child_env(attempt))
            code = self._wait_watched(child)
            if code == 0:
                self._log(f"child exited cleanly after "
                          f"{self.restarts} restart(s)")
                return 0
            reason = (f"signal {-code}" if code < 0
                      else f"exit code {code}")
            if self.restarts >= config.max_restarts:
                self._log(f"child died ({reason}) and the restart budget "
                          f"({config.max_restarts}) is spent; giving up")
                return code if code > 0 else 1
            self.restarts += 1
            attempt += 1
            self._log(f"child died ({reason}); restart "
                      f"{self.restarts}/{config.max_restarts} in "
                      f"{delay:.2f}s")
            time.sleep(delay)
            delay = min(delay * config.backoff_factor, config.backoff_max_s)

    def __repr__(self) -> str:
        return (f"<Supervisor state_dir={self._state_dir} "
                f"restarts={self.restarts}/{self._config.max_restarts}>")
