"""Background-churn plugin: finite background flows finish and respawn.

Extracted from the simulator monolith into a hook-bus plugin: the driver
subscribes to :class:`~repro.sim.hooks.RunStarted`, schedules an engine
finish for every finite-duration background flow the network was loaded
with, and — when respawn is enabled — replaces completed flows with fresh
trace flows so utilization stays roughly level (paper §IV-A's changing
network state). The simulator core never references churn; it only emits
``RunStarted`` and exposes the :class:`~repro.sim.hooks.SimulatorPort`
surface the driver programs against.

Determinism contract: the driver draws path tiebreaks from its own
``random.Random(config.seed + 1)`` (built by the simulator), and its
engine scheduling order is identical to the old monolith's — initial
finishes in network flow-id order at run start, respawn finishes at
placement time.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING

from repro.core.exceptions import InsufficientBandwidthError, SimulationError
from repro.core.flow import Flow, FlowKind
from repro.sim.hooks import ChurnTick, RunStarted, SimulatorPort
from repro.traces.background import BackgroundLoader

if TYPE_CHECKING:
    from repro.network.network import Network
    from repro.network.routing.provider import PathProvider
    from repro.traces.base import TraceGenerator


class ChurnDriver:
    """Schedules background-flow completions and respawns over a run.

    Args:
        network: the live network (the same object the simulator runs on).
        provider: candidate-path lookup for respawned-flow placement.
        trace: generator for replacement flows; ``None`` disables respawn
            (flows then finish without replacement).
        rng: path-tiebreak randomness for respawn placement (independent
            of the trace's own RNG).
    """

    #: Deficit repayments attempted per churn tick; bounds the work one
    #: engine event can do when the network has been too hot to respawn.
    MAX_SPAWNS_PER_TICK = 8

    def __init__(self, network: Network, provider: PathProvider,
                 trace: TraceGenerator | None, rng: random.Random):
        self._trace = trace
        self._loader = (BackgroundLoader(network, provider, trace, rng)
                        if trace is not None else None)
        self._deficit = 0
        self._sim: SimulatorPort | None = None

    def attach(self, sim: SimulatorPort) -> None:
        """Subscribe to the simulator's hook bus (called by the simulator)."""
        self._sim = sim
        sim.hooks.subscribe(RunStarted, self._on_run_started)

    @property
    def deficit(self) -> int:
        """Respawns owed but not yet placed (the network was too hot)."""
        return self._deficit

    # ------------------------------------------------------------ internals

    def _require_sim(self) -> SimulatorPort:
        if self._sim is None:
            raise SimulationError("ChurnDriver used before attach()")
        return self._sim

    def _on_run_started(self, hook: RunStarted) -> None:
        sim = hook.sim
        if not sim.config.background_churn:
            return
        network = sim.network
        for flow_id in list(network.flow_ids()):
            flow = network.placement(flow_id).flow
            if (flow.kind is FlowKind.BACKGROUND
                    and not math.isinf(flow.service_time)):
                self._schedule_finish(sim, flow)

    def _schedule_finish(self, sim: SimulatorPort, flow: Flow) -> None:
        sim.engine.schedule_callback(
            sim.now + flow.service_time,
            lambda f=flow.flow_id: self._on_background_finish(f),
            tag=f"churn:{flow.flow_id}")

    def _on_background_finish(self, flow_id: str) -> None:
        """A background flow's transmission ended (engine callback).

        Keyed by ``flow_id`` alone so the pending callback is fully
        described by its ``churn:<flow_id>`` engine tag — checkpoint
        restore rebuilds the heap entry from the tag without having to
        serialize the Flow object it closed over.
        """
        sim = self._require_sim()
        if sim.network.has_flow(flow_id):
            sim.network.remove(flow_id)
        # Churn exists to perturb queued events' costs; once every event
        # has completed, respawning would only keep the engine alive
        # forever.
        before = self._deficit
        if (sim.events_remaining > 0
                and sim.config.churn_respawn
                and self._trace is not None):
            self._respawn_background(sim)
        sim.hooks.emit(ChurnTick(
            now=sim.now, flow_id=flow_id,
            respawned=max(0, before + 1 - self._deficit)))
        sim.maybe_round()

    # -------------------------------------------------------- checkpointing

    def export_state(self) -> dict:
        """JSON-ready encoding of the driver's mutable state.

        Covers the respawn deficit plus the two RNG streams respawns draw
        from: the trace generator's own RNG (flow shapes/endpoints) and
        the loader's path-tiebreak RNG. Pending ``churn:<flow_id>`` engine
        entries are *not* exported here — they live in the engine heap
        export and are re-bound via :meth:`resolve_tag`.
        """
        from repro.core.ioutil import rng_state_payload
        state: dict = {"deficit": self._deficit}
        if self._trace is not None:
            state["trace_rng"] = rng_state_payload(self._trace.rng)
            state["trace_serial"] = self._trace._serial
        if self._loader is not None:
            state["loader_rng"] = rng_state_payload(self._loader.rng)
        return state

    def restore_state(self, state: dict) -> None:
        """Overwrite the driver's state from :meth:`export_state` output."""
        from repro.core.ioutil import set_rng_state
        self._deficit = int(state["deficit"])
        if self._trace is not None and "trace_rng" in state:
            set_rng_state(self._trace.rng, state["trace_rng"])
            self._trace._serial = int(state["trace_serial"])
        if self._loader is not None and "loader_rng" in state:
            set_rng_state(self._loader.rng, state["loader_rng"])

    def resolve_tag(self, tag: str):
        """Rebuild the engine callback a ``churn:<flow_id>`` tag denotes,
        or None for tags the driver does not own."""
        if not tag.startswith("churn:"):
            return None
        flow_id = tag[len("churn:"):]
        if not flow_id:
            raise SimulationError(f"malformed churn tag {tag!r}")
        return lambda f=flow_id: self._on_background_finish(f)

    def _respawn_background(self, sim: SimulatorPort) -> None:
        """Replace a completed background flow, keeping utilization level.

        When the network is momentarily too hot to place a replacement, the
        shortfall is remembered (``deficit``) and repaid at later churn
        ticks, so long runs do not silently decay below the loaded
        utilization target.
        """
        assert self._trace is not None and self._loader is not None
        self._deficit += 1
        spawned = 0
        while self._deficit > 0 and spawned < self.MAX_SPAWNS_PER_TICK:
            replacement = self._trace.sample_flow(
                kind=FlowKind.BACKGROUND, permanent=False)
            path = self._loader.best_path(replacement)
            if path is None:
                break
            try:
                sim.network.place(replacement, path)
            except InsufficientBandwidthError:
                break  # rule-limited networks can refuse; repay later
            self._schedule_finish(sim, replacement)
            self._deficit -= 1
            spawned += 1
