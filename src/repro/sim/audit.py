"""Lifecycle-invariant auditor: turns silent bookkeeping drift into a crash.

The simulator keeps the same population in four independent ledgers — the
:class:`~repro.sim.lifecycle.EventLifecycle` state machine, the
:class:`~repro.sim.pipeline.RoundPipeline` queue and ``events_remaining``
counter, the :class:`~repro.sim.metrics.MetricsCollector` records, and the
engine's pending-event counter. Each is updated on its own code path, so a
missed emit or a double decrement desynchronizes them *silently*: the run
still drains and produces numbers, just subtly wrong ones (this is exactly
how the tombstone-cancel and empty-round bugs survived several releases).

:class:`LifecycleAuditor` is a plain hook-bus subscriber that cross-checks
all four ledgers at every settled round boundary — the one instant where no
event may legitimately sit in a mid-round state — and raises
:class:`AuditError` carrying a machine-readable diff on the first mismatch.
Every check is O(queue depth), not O(total events), so the auditor is cheap
enough to leave enabled on unbounded service runs.

Enable it per-simulator (``UpdateSimulator(..., audit=True)``), globally via
the ``REPRO_AUDIT=1`` environment variable (how the schedule-pin tests
re-run byte-identity checks audited), or attach one explicitly::

    auditor = LifecycleAuditor()
    sim.attach(auditor)
    sim.run()
    auditor.assert_drained()   # terminal-state check after the run

The auditor only *reads* simulator state and subscribes only ``PostRound``,
so attaching it cannot perturb record order — the schedule pins stay
byte-identical with auditing on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.exceptions import SimulationError
from repro.sim.hooks import PostRound
from repro.sim.lifecycle import EventState

if TYPE_CHECKING:
    from repro.sim.hooks import SimulatorPort

__all__ = ["AuditError", "LifecycleAuditor"]


class AuditError(SimulationError):
    """Two bookkeeping surfaces disagree about the simulation's state.

    ``diff`` maps each failed invariant's name to an ``(observed,
    expected)`` pair; the message renders the same information for humans.
    """

    def __init__(self, message: str,
                 diff: dict[str, tuple[Any, Any]]) -> None:
        super().__init__(message)
        self.diff = diff


class LifecycleAuditor:
    """Hook-bus subscriber cross-checking the simulator's ledgers.

    At every ``PostRound`` (the settled round boundary) the auditor asserts:

    * no event occupies a mid-round state (``PROBED``/``ADMITTED``/
      ``DEFERRED`` populations are zero),
    * the pipeline queue mirrors the lifecycle's ``QUEUED`` population and
      the hook's ``waiting`` snapshot,
    * ``events_remaining`` equals the live lifecycle population
      (``QUEUED`` + ``EXECUTING``),
    * the metrics collector has a record per registered event and its
      completed/dropped/round counters match the lifecycle and round log,
    * the engine's O(1) ``pending`` counter matches an O(n) heap recount
      (the tombstone-drift detector) and is non-negative.

    Args:
        every: audit every ``every``-th round (1 audits all of them);
            service deployments may dilute the ``live_pending`` heap scan.
        check_engine: include the engine heap recount (the only check that
            is O(pending events) rather than O(queue depth)).
    """

    def __init__(self, every: int = 1, check_engine: bool = True) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._every = every
        self._check_engine = check_engine
        self._sim: SimulatorPort | None = None
        self._audits = 0

    # -------------------------------------------------------------- plugin

    def attach(self, sim: SimulatorPort) -> None:
        """Subscribe to ``sim``'s ``PostRound`` hook (the plugin protocol)."""
        self._sim = sim
        sim.hooks.subscribe(PostRound, self._on_post_round)

    @property
    def audits(self) -> int:
        """Rounds audited so far (each one passed, or we raised)."""
        return self._audits

    def _on_post_round(self, hook: PostRound) -> None:
        if hook.index % self._every == 0:
            self.audit(round_index=hook.index, waiting=hook.waiting)

    # -------------------------------------------------------------- checks

    def audit(self, round_index: int | None = None,
              waiting: tuple[str, ...] | None = None) -> None:
        """Run every cross-check now; raise :class:`AuditError` on drift.

        Args:
            round_index: the settled round's 1-based index, when invoked
                from ``PostRound`` (enables the round-counting checks).
            waiting: the hook's queue snapshot, when available.
        """
        sim = self._require_sim()
        counts = sim.lifecycle.counts()
        pipeline = sim.pipeline
        collector = sim.metrics_collector
        live = counts[EventState.QUEUED] + counts[EventState.EXECUTING]

        # name -> (observed, expected); insertion order is report order.
        checks: dict[str, tuple[Any, Any]] = {
            "mid_round_states": (
                {s.value: counts[s] for s in (EventState.PROBED,
                                              EventState.ADMITTED,
                                              EventState.DEFERRED)
                 if counts[s]},
                {}),
            "queue_depth_vs_lifecycle_queued": (
                pipeline.queue_depth, counts[EventState.QUEUED]),
            "events_remaining_vs_lifecycle_live": (
                pipeline.events_remaining, live),
            "metrics_records_vs_lifecycle_registered": (
                collector.record_count, len(sim.lifecycle)),
            "metrics_completed_vs_lifecycle": (
                collector.completed_count, counts[EventState.COMPLETED]),
            "metrics_dropped_vs_lifecycle": (
                collector.dropped_count, counts[EventState.DROPPED]),
        }
        if waiting is not None:
            checks["hook_waiting_vs_queue"] = (
                sorted(waiting), sorted(pipeline.queued_event_ids()))
        if round_index is not None:
            checks["metrics_rounds_vs_round_index"] = (
                collector.round_count, round_index)
            checks["round_log_vs_round_index"] = (
                pipeline.round_count, round_index)
        if self._check_engine:
            engine = sim.engine
            checks["engine_pending_nonnegative"] = (
                engine.pending >= 0, True)
            checks["engine_pending_vs_heap_recount"] = (
                engine.pending, engine.live_pending())

        failed = {name: pair for name, pair in checks.items()
                  if pair[0] != pair[1]}
        if failed:
            where = (f"round {round_index}" if round_index is not None
                     else "ad-hoc audit")
            detail = "; ".join(f"{name}: observed {obs!r}, expected {exp!r}"
                               for name, (obs, exp) in failed.items())
            raise AuditError(
                f"lifecycle audit failed at {where} (t={sim.now:.6f}): "
                f"{detail}", diff=failed)
        self._audits += 1

    def assert_drained(self) -> None:
        """Assert the post-run terminal picture: everything completed or
        dropped, nothing queued, nothing pending in the engine.

        Call after ``run()`` returns (or after a service drain); raises
        :class:`AuditError` if any event is still live.
        """
        sim = self._require_sim()
        counts = sim.lifecycle.counts()
        terminal = counts[EventState.COMPLETED] + counts[EventState.DROPPED]
        checks: dict[str, tuple[Any, Any]] = {
            "terminal_events_vs_registered": (terminal, len(sim.lifecycle)),
            "queue_empty": (sim.pipeline.queue_depth, 0),
            "events_remaining_zero": (sim.pipeline.events_remaining, 0),
            "engine_drained": (sim.engine.pending, 0),
        }
        failed = {name: pair for name, pair in checks.items()
                  if pair[0] != pair[1]}
        if failed:
            detail = "; ".join(f"{name}: observed {obs!r}, expected {exp!r}"
                               for name, (obs, exp) in failed.items())
            raise AuditError(
                f"drain audit failed (t={sim.now:.6f}): {detail}",
                diff=failed)

    def assert_restored(self, journal_records: list[dict]) -> None:
        """Cross-check a checkpoint-restored simulator against the journal.

        ``journal_records`` must be the journal *prefix* the checkpoint
        covers (every record appended up to the checkpoint's recorded
        offset). The journal and the checkpoint were written by
        independent code paths — the journal per-record at commit time,
        the checkpoint wholesale at the tick — so agreement here means a
        torn/stale/mixed state dir could not have slipped through:

        * ``ingest`` records match the restored lifecycle's registered
          population (every journaled arrival is known, none invented),
        * ``complete``/``drop`` records match both the lifecycle's
          terminal counts and the metrics collector's counters,
        * the standard ad-hoc ledger audit passes on the restored state.

        Raises :class:`AuditError` with the usual machine-readable diff.
        """
        sim = self._require_sim()
        counts = sim.lifecycle.counts()
        collector = sim.metrics_collector
        by_kind: dict[str, int] = {}
        for record in journal_records:
            kind = str(record.get("kind"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        checks: dict[str, tuple[Any, Any]] = {
            "journal_ingests_vs_lifecycle_registered": (
                by_kind.get("ingest", 0), len(sim.lifecycle)),
            "journal_completes_vs_lifecycle": (
                by_kind.get("complete", 0), counts[EventState.COMPLETED]),
            "journal_completes_vs_metrics": (
                by_kind.get("complete", 0), collector.completed_count),
            "journal_drops_vs_lifecycle": (
                by_kind.get("drop", 0), counts[EventState.DROPPED]),
            "journal_drops_vs_metrics": (
                by_kind.get("drop", 0), collector.dropped_count),
        }
        failed = {name: pair for name, pair in checks.items()
                  if pair[0] != pair[1]}
        if failed:
            detail = "; ".join(f"{name}: observed {obs!r}, expected {exp!r}"
                               for name, (obs, exp) in failed.items())
            raise AuditError(
                f"restore audit failed (t={sim.now:.6f}): {detail}",
                diff=failed)
        self.audit()

    def _require_sim(self) -> SimulatorPort:
        if self._sim is None:
            raise SimulationError("auditor not attached to a simulator")
        return self._sim

    def __repr__(self) -> str:
        target = "detached" if self._sim is None else "attached"
        return (f"<LifecycleAuditor {target}, every={self._every}, "
                f"{self._audits} audits passed>")
