"""Deterministic crash-point injection for the chaos harness.

The crash-recovery tests need the service to die at *exact, repeatable*
points — mid-round, mid-snapshot, halfway through a journal append — not at
whatever instant an external ``kill`` happens to land. Production code marks
those points with :func:`crash_point`, which is a no-op unless the
``REPRO_CRASH_AT`` environment variable arms it:

    REPRO_CRASH_AT=<label>:<n>

means "die the ``n``-th time the crash point ``label`` is reached" (1-based).
Armed crashes default to ``SIGKILL`` against the calling process — the
harshest possible failure, no atexit handlers, no flushes. Setting
``REPRO_CRASH_MODE=raise`` substitutes a :class:`CrashInjected` exception so
in-process unit tests can exercise the same sites without forking.

The hit counter is process-local, so a supervised restart of the same
command line (which inherits the environment) does not re-crash: the restart
reaches the label with a fresh count and typically stops short of ``n`` —
harness runs that *do* want repeat crashes lower ``n`` or re-exec with a new
value.
"""

from __future__ import annotations

import os
import signal

__all__ = ["CrashInjected", "crash_point", "reset_counts"]

ENV_VAR = "REPRO_CRASH_AT"
MODE_VAR = "REPRO_CRASH_MODE"

#: label -> times reached in this process.
_counts: dict[str, int] = {}


class CrashInjected(RuntimeError):
    """Raised instead of SIGKILL when ``REPRO_CRASH_MODE=raise``."""


def reset_counts() -> None:
    """Forget all hit counts (test isolation)."""
    _counts.clear()


def _armed() -> tuple[str, int] | None:
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    label, sep, count = spec.rpartition(":")
    if not sep or not label:
        raise ValueError(
            f"malformed {ENV_VAR}={spec!r}; expected '<label>:<n>'")
    try:
        n = int(count)
    except ValueError as exc:
        raise ValueError(
            f"malformed {ENV_VAR}={spec!r}; count must be an integer") from exc
    if n < 1:
        raise ValueError(f"{ENV_VAR} count must be >= 1, got {n}")
    return label, n


def crash_point(label: str) -> bool:
    """Mark a crash-injection site; returns True when the crash is armed
    for this site *and this is the fatal visit*.

    In the (default) SIGKILL mode this function does not return on the
    fatal visit. In ``raise`` mode it raises :class:`CrashInjected`. The
    boolean return value exists for call sites that want to tear state
    *before* dying (e.g. write half a journal frame) — they check the
    armed-and-counting state via :func:`crash_imminent` instead.
    """
    armed = _armed()
    if armed is None:
        return False
    target_label, target_n = armed
    if label != target_label:
        return False
    _counts[label] = _counts.get(label, 0) + 1
    if _counts[label] != target_n:
        return False
    _die(label)
    return True  # only reachable in 'raise' mode after the exception is eaten


def crash_imminent(label: str) -> bool:
    """True when the *next* :func:`crash_point` call for ``label`` is the
    fatal one. Lets a call site stage a realistic torn state first.
    """
    armed = _armed()
    if armed is None:
        return False
    target_label, target_n = armed
    return label == target_label and _counts.get(label, 0) + 1 == target_n


def _die(label: str) -> None:
    if os.environ.get(MODE_VAR, "").strip() == "raise":
        raise CrashInjected(f"injected crash at {label!r}")
    os.kill(os.getpid(), signal.SIGKILL)
