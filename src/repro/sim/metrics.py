"""Metric collection: the paper's five evaluation metrics (§V-A).

Per update event we record arrival, execution start, setup completion and
completion times plus the realized ``Cost(U)``; the aggregates derived from
them are exactly what the paper plots:

* **total update cost** — sum of migrated traffic over all events,
* **average ECT** — mean of (completion − arrival),
* **tail ECT** — the slowest event's ECT (p95/p99 also reported),
* **total plan time** — simulated seconds the controller spent planning,
* **event queuing delay** — execution start − arrival, average and worst.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim import hooks as _hooks


@dataclass
class EventRecord:
    """Lifecycle timestamps and realized cost of one update event.

    ``stage_count`` sums the compiled schedule lengths of the event's
    admissions (one admission, hence the plan's stage count, for
    event-level schedulers); ``max_transient_overload`` is the worst
    fractional capacity overshoot any of its stages caused.
    """

    event_id: str
    arrival_time: float
    flow_count: int
    exec_start_time: float | None = None
    setup_done_time: float | None = None
    completion_time: float | None = None
    cost: float = 0.0
    migrations: int = 0
    rounds_waited: int = 0
    deferrals: int = 0
    dropped: bool = False
    stage_count: int = 0
    max_transient_overload: float = 0.0

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def ect(self) -> float:
        """Event completion time (paper's ECT)."""
        if self.completion_time is None:
            raise ValueError(f"event {self.event_id} has not completed")
        return self.completion_time - self.arrival_time

    @property
    def queuing_delay(self) -> float:
        """Time spent queued before execution began."""
        if self.exec_start_time is None:
            raise ValueError(f"event {self.event_id} never started")
        return self.exec_start_time - self.arrival_time


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate metrics of one simulation run."""

    scheduler: str
    event_count: int
    total_cost: float
    total_migrations: int
    average_ect: float
    tail_ect: float
    p95_ect: float
    p99_ect: float
    average_queuing_delay: float
    worst_queuing_delay: float
    total_plan_time: float
    makespan: float
    rounds: int
    per_event_ect: tuple[float, ...]
    per_event_delay: tuple[float, ...]
    per_event_cost: tuple[float, ...]
    # Probe-cache counters (zero for schedulers without a cache). These
    # describe the scheduler's wall-clock behavior only; simulated plan time
    # is charged identically with or without the cache.
    probe_cache_hits: int = 0
    probe_cache_misses: int = 0
    probe_cache_invalidations: int = 0
    # Robustness counters (all zero on fault-free, reliable runs).
    # ``event_count`` and the per-event aggregates cover *completed* events;
    # ``dropped_events`` counts events evicted after exhausting their
    # requeue deferrals, and ``stranded_traffic`` is the aggregate bandwidth
    # demand of update flows that were never re-homed — dropped events'
    # unplaced flows. It is a *rate* in Mbit/s (a sum of per-flow demands,
    # the unit convention of :mod:`repro.core.flow`), not a volume like
    # ``total_cost`` (Mbit). ``total_cost`` still includes migrations a
    # later-dropped event realized before it stalled: that traffic really
    # moved. ``retries`` counts failed execution attempts (control plane);
    # ``deferrals`` counts requeues (execution failure or stall).
    retries: int = 0
    deferrals: int = 0
    dropped_events: int = 0
    stranded_traffic: float = 0.0
    faults_injected: int = 0
    faults_healed: int = 0
    # Learned-ranking counters (zero for exact schedulers). Probes skipped
    # are sampled candidates never exactly planned thanks to the ranking
    # budget; prediction error is summed absolute error on the log1p-cost
    # scale over ``prediction_samples`` online-training pairs; fallback
    # rounds degraded to full probing (cold start or drift).
    probes_skipped: int = 0
    prediction_samples: int = 0
    prediction_error_sum: float = 0.0
    fallback_rounds: int = 0
    # Plan-compilation counters (:mod:`repro.core.compile`). Under the
    # default atomic mode every admission is one stage, so
    # ``total_stages`` equals the admission count and ``max_stage_count``
    # is 1. ``per_event_stages`` aligns with the other per-event arrays
    # (completed events, arrival order). ``compile_epsilon`` echoes the
    # augmentation knob the run executed with.
    total_stages: int = 0
    max_stage_count: int = 0
    max_transient_overload: float = 0.0
    compile_epsilon: float = 0.0
    per_event_stages: tuple[int, ...] = ()

    @property
    def probe_cache_hit_rate(self) -> float:
        """Fraction of cost probes served from cache (0.0 when none ran)."""
        probes = self.probe_cache_hits + self.probe_cache_misses
        return self.probe_cache_hits / probes if probes else 0.0

    @property
    def mean_prediction_error(self) -> float:
        """Mean absolute prediction error per training sample (log1p-cost
        scale; 0.0 when the run produced no predictions)."""
        if not self.prediction_samples:
            return 0.0
        return self.prediction_error_sum / self.prediction_samples

    def to_dict(self) -> dict:
        """JSON-serializable representation (tuples become lists)."""
        from dataclasses import asdict
        data = asdict(self)
        for key in ("per_event_ect", "per_event_delay", "per_event_cost",
                    "per_event_stages"):
            data[key] = list(data[key])
        data["probe_cache_hit_rate"] = self.probe_cache_hit_rate
        data["mean_prediction_error"] = self.mean_prediction_error
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        """Rebuild from a :meth:`to_dict` payload, exactly.

        Floats survive a JSON round-trip bit-for-bit (``json`` serializes
        them via ``repr``), so ``from_dict(json.loads(json.dumps(
        m.to_dict())))`` equals ``m`` — the property the parallel experiment
        runner's checkpoint merge relies on.
        """
        payload = dict(data)
        payload.pop("probe_cache_hit_rate", None)  # derived property
        payload.pop("mean_prediction_error", None)  # derived property
        for key in ("per_event_ect", "per_event_delay", "per_event_cost",
                    "per_event_stages"):
            if key in payload:  # pre-compilation payloads lack the stages
                payload[key] = tuple(payload[key])
        return cls(**payload)

    def summary(self) -> str:
        """One-line human-readable digest.

        Units follow :mod:`repro.core.flow`: ``total_cost`` is migrated
        traffic *volume* (Mbit), ``stranded_traffic`` is aggregate unmet
        *demand* (Mbit/s) — the old ``Mbps`` spelling made the two look
        like the same kind of quantity.
        """
        line = (f"{self.scheduler}: events={self.event_count} "
                f"avgECT={self.average_ect:.2f}s tailECT={self.tail_ect:.2f}s "
                f"cost={self.total_cost:.0f}Mbit "
                f"avgQD={self.average_queuing_delay:.2f}s "
                f"planT={self.total_plan_time:.3f}s rounds={self.rounds}")
        if self.faults_injected or self.retries or self.dropped_events:
            line += (f" faults={self.faults_injected} "
                     f"retries={self.retries} "
                     f"deferrals={self.deferrals} "
                     f"dropped={self.dropped_events} "
                     f"stranded={self.stranded_traffic:.0f}Mbit/s")
        return line


class MetricsCollector:
    """Accumulates per-event records during a run and finalizes them."""

    def __init__(self, scheduler_name: str):
        self._scheduler = scheduler_name
        self._records: dict[str, EventRecord] = {}
        self._completed = 0
        self._dropped = 0
        self._plan_time = 0.0
        self._rounds = 0
        self._makespan = 0.0
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_invalidations = 0
        self._retries = 0
        self._deferrals = 0
        self._stranded_traffic = 0.0
        self._faults_injected = 0
        self._faults_healed = 0
        self._probes_skipped = 0
        self._prediction_samples = 0
        self._prediction_error_sum = 0.0
        self._fallback_rounds = 0
        self._total_stages = 0
        self._max_stage_count = 0
        self._max_transient_overload = 0.0
        self._compile_epsilon = 0.0

    # --------------------------------------------------------------- record

    def on_enqueue(self, event_id: str, arrival_time: float,
                   flow_count: int) -> None:
        if event_id in self._records:
            raise ValueError(f"event {event_id} enqueued twice")
        self._records[event_id] = EventRecord(
            event_id=event_id, arrival_time=arrival_time,
            flow_count=flow_count)

    def on_round(self, plan_time: float, cache_hits: int = 0,
                 cache_misses: int = 0, cache_invalidations: int = 0,
                 probes_skipped: int = 0, prediction_samples: int = 0,
                 prediction_error_sum: float = 0.0,
                 fallback: bool = False) -> None:
        self._rounds += 1
        self._plan_time += plan_time
        self._cache_hits += cache_hits
        self._cache_misses += cache_misses
        self._cache_invalidations += cache_invalidations
        self._probes_skipped += probes_skipped
        self._prediction_samples += prediction_samples
        self._prediction_error_sum += prediction_error_sum
        if fallback:
            self._fallback_rounds += 1

    def on_wait(self, event_id: str) -> None:
        self._record(event_id).rounds_waited += 1

    def on_exec_start(self, event_id: str, time: float) -> None:
        """Record when the event's update first began executing.

        Idempotent: for the flow-level baseline an event executes across
        many rounds and only the first one defines its queuing delay.
        """
        record = self._record(event_id)
        if record.exec_start_time is None:
            record.exec_start_time = time

    def on_admission(self, event_id: str, cost: float, migrations: int,
                     stage_count: int = 1,
                     max_transient_overload: float = 0.0,
                     epsilon: float = 0.0) -> None:
        """Accumulate realized plan cost; called once per admission."""
        record = self._record(event_id)
        record.cost += cost
        record.migrations += migrations
        record.stage_count += stage_count
        record.max_transient_overload = max(record.max_transient_overload,
                                            max_transient_overload)
        self._total_stages += stage_count
        self._max_stage_count = max(self._max_stage_count, stage_count)
        self._max_transient_overload = max(self._max_transient_overload,
                                           max_transient_overload)
        self._compile_epsilon = max(self._compile_epsilon, epsilon)

    def on_setup_done(self, event_id: str, time: float) -> None:
        self._record(event_id).setup_done_time = time

    def on_completion(self, event_id: str, time: float) -> None:
        record = self._record(event_id)
        if record.completion_time is None:
            self._completed += 1
        record.completion_time = time
        self._makespan = max(self._makespan, time)

    # -------------------------------------------------------- fault pipeline

    def on_retries(self, count: int) -> None:
        """Account ``count`` failed execution attempts (control plane)."""
        self._retries += count

    def on_deferral(self, event_id: str) -> None:
        """The event was requeued (execution failure or placement stall)."""
        self._record(event_id).deferrals += 1
        self._deferrals += 1

    def on_drop(self, event_id: str, time: float,
                stranded_demand: float) -> None:
        """The event was evicted after exhausting its deferrals.

        ``stranded_demand`` is the total demand of its never-placed flows;
        it accumulates into ``RunMetrics.stranded_traffic``. Dropped events
        are excluded from completion aggregates but keep any cost they
        realized before stalling.
        """
        record = self._record(event_id)
        if record.dropped:
            raise ValueError(f"event {event_id} dropped twice")
        record.dropped = True
        self._dropped += 1
        self._stranded_traffic += stranded_demand
        self._makespan = max(self._makespan, time)

    def on_fault(self) -> None:
        self._faults_injected += 1

    def on_heal(self) -> None:
        self._faults_healed += 1

    def _record(self, event_id: str) -> EventRecord:
        try:
            return self._records[event_id]
        except KeyError:
            raise ValueError(f"unknown event {event_id}") from None

    # -------------------------------------------------------- checkpointing

    def export_state(self) -> dict:
        """JSON-ready encoding of all records and counters."""
        from dataclasses import asdict
        return {
            "records": [asdict(r) for r in self._records.values()],
            "completed": self._completed,
            "dropped": self._dropped,
            "plan_time": self._plan_time,
            "rounds": self._rounds,
            "makespan": self._makespan,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "cache_invalidations": self._cache_invalidations,
            "retries": self._retries,
            "deferrals": self._deferrals,
            "stranded_traffic": self._stranded_traffic,
            "faults_injected": self._faults_injected,
            "faults_healed": self._faults_healed,
            "probes_skipped": self._probes_skipped,
            "prediction_samples": self._prediction_samples,
            "prediction_error_sum": self._prediction_error_sum,
            "fallback_rounds": self._fallback_rounds,
            "total_stages": self._total_stages,
            "max_stage_count": self._max_stage_count,
            "max_transient_overload": self._max_transient_overload,
            "compile_epsilon": self._compile_epsilon,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this collector from :meth:`export_state` output."""
        if self._records:
            raise ValueError("restore_state requires an empty collector")
        for payload in state["records"]:
            record = EventRecord(**payload)
            self._records[record.event_id] = record
        self._completed = int(state["completed"])
        self._dropped = int(state["dropped"])
        self._plan_time = state["plan_time"]
        self._rounds = int(state["rounds"])
        self._makespan = state["makespan"]
        self._cache_hits = int(state["cache_hits"])
        self._cache_misses = int(state["cache_misses"])
        self._cache_invalidations = int(state["cache_invalidations"])
        self._retries = int(state["retries"])
        self._deferrals = int(state["deferrals"])
        self._stranded_traffic = state["stranded_traffic"]
        self._faults_injected = int(state["faults_injected"])
        self._faults_healed = int(state["faults_healed"])
        self._probes_skipped = int(state["probes_skipped"])
        self._prediction_samples = int(state["prediction_samples"])
        self._prediction_error_sum = state["prediction_error_sum"]
        self._fallback_rounds = int(state["fallback_rounds"])
        # .get(): checkpoints written before plan compilation lack these.
        self._total_stages = int(state.get("total_stages", 0))
        self._max_stage_count = int(state.get("max_stage_count", 0))
        self._max_transient_overload = state.get(
            "max_transient_overload", 0.0)
        self._compile_epsilon = state.get("compile_epsilon", 0.0)

    # ------------------------------------------------------------- finalize

    @property
    def records(self) -> dict[str, EventRecord]:
        return dict(self._records)

    # O(1) counters the lifecycle auditor cross-checks on every PostRound;
    # recomputing them from ``records`` would be O(events) per round, which
    # the unbounded service mode cannot afford.

    @property
    def record_count(self) -> int:
        """Events ever enqueued (terminal ones included)."""
        return len(self._records)

    @property
    def completed_count(self) -> int:
        """Events whose completion has been recorded."""
        return self._completed

    @property
    def dropped_count(self) -> int:
        """Events evicted after exhausting their deferrals."""
        return self._dropped

    @property
    def round_count(self) -> int:
        """Rounds accounted so far (empty rounds included)."""
        return self._rounds

    @property
    def total_stages(self) -> int:
        """Compiled stages applied so far (exporter gauge)."""
        return self._total_stages

    @property
    def max_transient_overload(self) -> float:
        """Worst fractional transient overshoot seen (exporter gauge)."""
        return self._max_transient_overload

    def incomplete_events(self) -> list[str]:
        """Events neither completed nor dropped — a drained run must have
        none; dropped events are accounted, not incomplete."""
        return [eid for eid, r in self._records.items()
                if not r.completed and not r.dropped]

    def finalize(self) -> RunMetrics:
        """Build the aggregate metrics; every event must have completed or
        been dropped. Completion aggregates (ECT, delays, per-event arrays)
        cover completed events; dropped events contribute only their
        realized cost, the drop counter, and stranded traffic."""
        incomplete = self.incomplete_events()
        if incomplete:
            raise ValueError(f"{len(incomplete)} events never completed: "
                             f"{incomplete[:5]}")
        everything = sorted(self._records.values(),
                            key=lambda r: r.arrival_time)
        records = [r for r in everything if not r.dropped]
        dropped = [r for r in everything if r.dropped]
        ects = [r.ect for r in records]
        delays = [r.queuing_delay for r in records]
        costs = [r.cost for r in records]
        count = len(records)
        return RunMetrics(
            scheduler=self._scheduler,
            event_count=count,
            total_cost=sum(costs) + sum(r.cost for r in dropped),
            total_migrations=sum(r.migrations for r in everything),
            average_ect=sum(ects) / count if count else 0.0,
            tail_ect=max(ects) if ects else 0.0,
            p95_ect=percentile(ects, 95) if ects else 0.0,
            p99_ect=percentile(ects, 99) if ects else 0.0,
            average_queuing_delay=sum(delays) / count if count else 0.0,
            worst_queuing_delay=max(delays) if delays else 0.0,
            total_plan_time=self._plan_time,
            makespan=self._makespan,
            rounds=self._rounds,
            per_event_ect=tuple(ects),
            per_event_delay=tuple(delays),
            per_event_cost=tuple(costs),
            probe_cache_hits=self._cache_hits,
            probe_cache_misses=self._cache_misses,
            probe_cache_invalidations=self._cache_invalidations,
            retries=self._retries,
            deferrals=self._deferrals,
            dropped_events=len(dropped),
            stranded_traffic=self._stranded_traffic,
            faults_injected=self._faults_injected,
            faults_healed=self._faults_healed,
            probes_skipped=self._probes_skipped,
            prediction_samples=self._prediction_samples,
            prediction_error_sum=self._prediction_error_sum,
            fallback_rounds=self._fallback_rounds,
            total_stages=self._total_stages,
            max_stage_count=self._max_stage_count,
            max_transient_overload=self._max_transient_overload,
            compile_epsilon=self._compile_epsilon,
            per_event_stages=tuple(r.stage_count for r in records),
        )


class MetricsSubscriber:
    """Feeds a :class:`MetricsCollector` from hook-bus emissions.

    The simulator subscribes this adapter *before* the trace-log adapter,
    which preserves the pre-refactor call order (metrics first, listener
    second) for every shared hook type.
    """

    def __init__(self, collector: MetricsCollector, bus: "_hooks.HookBus"):
        self._collector = collector
        bus.subscribe(_hooks.EventArrived, self._on_arrived)
        bus.subscribe(_hooks.PreRound, self._on_pre_round)
        bus.subscribe(_hooks.PostRound, self._on_post_round)
        bus.subscribe(_hooks.EventAdmitted, self._on_admitted)
        bus.subscribe(_hooks.EventCompleted, self._on_completed)
        bus.subscribe(_hooks.ExecutionRetried, self._on_retried)
        bus.subscribe(_hooks.EventDeferred, self._on_deferred)
        bus.subscribe(_hooks.EventDropped, self._on_dropped)
        bus.subscribe(_hooks.FaultInjected, self._on_fault)
        bus.subscribe(_hooks.FaultHealed, self._on_heal)

    def _on_arrived(self, hook: "_hooks.EventArrived") -> None:
        self._collector.on_enqueue(hook.event_id, hook.now, hook.flow_count)

    def _on_pre_round(self, hook: "_hooks.PreRound") -> None:
        self._collector.on_round(hook.plan_time, hook.cache_hits,
                                 hook.cache_misses, hook.cache_invalidations,
                                 hook.probes_skipped, hook.prediction_samples,
                                 hook.prediction_error_sum, hook.fallback)

    def _on_post_round(self, hook: "_hooks.PostRound") -> None:
        if hook.waiting is None:
            return  # scale mode: waits unreported, not empty
        for event_id in hook.waiting:
            self._collector.on_wait(event_id)

    def _on_admitted(self, hook: "_hooks.EventAdmitted") -> None:
        self._collector.on_exec_start(hook.event_id, hook.exec_start)
        self._collector.on_admission(
            hook.event_id, hook.cost, hook.migrations,
            stage_count=hook.stage_count,
            max_transient_overload=hook.max_transient_overload,
            epsilon=hook.epsilon)
        self._collector.on_setup_done(hook.event_id, hook.setup_done_time)

    def _on_completed(self, hook: "_hooks.EventCompleted") -> None:
        self._collector.on_completion(hook.event_id, hook.now)

    def _on_retried(self, hook: "_hooks.ExecutionRetried") -> None:
        self._collector.on_retries(hook.retries)

    def _on_deferred(self, hook: "_hooks.EventDeferred") -> None:
        self._collector.on_deferral(hook.event_id)

    def _on_dropped(self, hook: "_hooks.EventDropped") -> None:
        self._collector.on_drop(hook.event_id, hook.now,
                                hook.stranded_demand)

    def _on_fault(self, hook: "_hooks.FaultInjected") -> None:
        self._collector.on_fault()

    def _on_heal(self, hook: "_hooks.FaultHealed") -> None:
        self._collector.on_heal()
