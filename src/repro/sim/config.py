"""Run-level simulator configuration (extracted from the old monolith).

Kept in its own module so the hook bus, the round pipeline, and plugins can
all name :class:`SimulationConfig` without importing the simulator itself.
``repro.sim.simulator`` re-exports it, so existing imports keep working.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level simulator knobs.

    Attributes:
        seed: seed for the planner RNG (path tiebreaks). Scheduler sampling
            uses the scheduler's own seed.
        verify_invariants: re-derive and assert network bookkeeping after
            every round (slow; the test suite turns it on).
        stall_fallback: when the scheduler admits nothing, nothing is
            running, and no future engine event can change the state, scan
            the queue in arrival order and admit the first feasible event
            instead of deadlocking. A strict-FIFO purist can turn this off
            and accept :class:`~repro.core.exceptions.SimulationError` on
            pathological workloads.
        max_rounds: safety valve on scheduling rounds.
        background_churn: when True, finite-duration background flows
            complete over simulated time and (optionally) respawn, so the
            network state — and therefore queued events' costs — keeps
            changing, as §IV-A of the paper describes.
        churn_respawn: replace each completed background flow with a fresh
            trace flow to hold utilization roughly constant.
        round_barrier: when the next scheduling round may start.
            ``completion`` (default, matching the paper's Fig. 3 arithmetic
            and its "an update event cannot finish until such flows have
            been completed") waits for every admitted flow to finish
            transmitting; an event's ECT then includes its flows'
            transmissions. ``setup`` starts the next round as soon as the
            admitted updates are installed (plan + migration drain +
            install) — the pipelined reading in which ECT measures only the
            update application; admitted flows keep transmitting across
            subsequent rounds and contend with later events. Used by the
            model-sensitivity ablation.
        exec_max_retries: execution attempts after the first failure on an
            unreliable control plane (ignored on the reliable default).
        exec_backoff_s: backoff before the first execution retry; doubles
            per retry.
        exec_deadline_s: per-plan budget of simulated execution seconds;
            ``inf`` disables the deadline.
        max_deferrals: requeue budget per event. An admitted event whose
            execution fails is requeued (deferred); an event that can
            never be placed while the run is otherwise stalled is likewise
            deferred instead of deadlocking. Past this many deferrals the
            event is *dropped* with accounting (``RunMetrics.
            dropped_events`` / ``stranded_traffic``). ``None`` (default)
            keeps the legacy strictness: execution failures still requeue,
            but nothing is ever dropped and a permanent stall raises
            :class:`~repro.core.exceptions.SimulationError` as before.
        repair_flow_duration: transmission duration given to the
            replacement flows of auto-generated repair events (stranded
            permanent background flows have none of their own).
        compile_mode: plan-compilation mode handed to the executor —
            ``atomic`` (default, the historical one-shot path bit for
            bit), ``staged`` (congestion-free stages), or ``augmented``
            (stages may transiently oversubscribe links by
            ``compile_epsilon · capacity``).
        compile_epsilon: the augmentation knob; must be 0 unless
            ``compile_mode`` is ``augmented``.
        queue_snapshots: when True (default), each round snapshots the
            queue into a list for the scheduling context and reports the
            full waiting set in ``PostRound`` — the historical contract.
            False is *scale mode*: the context carries the live indexed
            queue by reference and ``PostRound.waiting`` is ``None``,
            removing two O(queue) walks per round at 10^5+ queue depths.
            The only observable casualty is the per-event
            ``rounds_waited`` diagnostic (never serialized); admissions,
            timings and all serialized metrics are identical.
    """

    seed: int = 0
    verify_invariants: bool = False
    stall_fallback: bool = True
    max_rounds: int = 1_000_000
    background_churn: bool = False
    churn_respawn: bool = True
    round_barrier: str = "completion"
    exec_max_retries: int = 2
    exec_backoff_s: float = 0.05
    exec_deadline_s: float = math.inf
    max_deferrals: int | None = None
    repair_flow_duration: float = 30.0
    queue_snapshots: bool = True
    compile_mode: str = "atomic"
    compile_epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.round_barrier not in ("completion", "setup"):
            raise ValueError(f"unknown round_barrier "
                             f"{self.round_barrier!r}; pick 'completion' "
                             f"or 'setup'")
        if self.max_deferrals is not None and self.max_deferrals < 0:
            raise ValueError("max_deferrals must be >= 0 or None")
        if self.repair_flow_duration <= 0:
            raise ValueError("repair_flow_duration must be positive")
        if self.compile_mode not in ("atomic", "staged", "augmented"):
            raise ValueError(f"unknown compile_mode "
                             f"{self.compile_mode!r}; pick 'atomic', "
                             f"'staged' or 'augmented'")
        if self.compile_epsilon < 0:
            raise ValueError("compile_epsilon must be >= 0")
        if self.compile_epsilon > 0 and self.compile_mode != "augmented":
            raise ValueError("compile_epsilon > 0 requires "
                             "compile_mode='augmented'")
