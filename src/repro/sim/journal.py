"""Write-ahead event journal for the crash-tolerant service.

The service journals every externally visible commitment — an ingested
arrival entering the queue, a terminal completion/drop — *before* it is
acknowledged to the rest of the pipeline. Together with the periodic
full-state checkpoint (:mod:`repro.sim.snapshot`) the journal makes
``repro serve`` exactly resumable: restore = load the latest valid
checkpoint, then re-drive the deterministic simulator while cross-checking
each re-produced record against the journal suffix.

Frame format (little-endian), one frame per record::

    +----------+----------+------------------+
    | length u32 | crc32 u32 | payload (JSON) |
    +----------+----------+------------------+

``crc32`` covers the payload bytes only. The reader distinguishes two
failure shapes:

* **Torn tail** — the file ends inside a frame (header or payload cut
  short). That is the expected residue of a crash mid-append and is
  *tolerated*: the scan stops at the last complete frame and the writer
  truncates the residue before appending again.
* **Corruption** — a *complete* frame whose CRC does not match, or a frame
  followed by further readable frames that itself is malformed. That can
  only come from bit-rot or tampering and raises
  :class:`JournalCorruptionError`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO

from repro.core.ioutil import fsync_dir
from repro.sim.crashpoint import crash_imminent, crash_point

__all__ = [
    "JournalCorruptionError",
    "JournalScan",
    "JournalWriter",
    "scan_journal",
]

_HEADER = struct.Struct("<II")

#: Upper bound on a single record's payload; a "length" beyond this in an
#: otherwise complete header is treated as corruption, not an allocation.
_MAX_RECORD_BYTES = 16 * 1024 * 1024


class JournalCorruptionError(RuntimeError):
    """A complete journal frame failed its integrity check."""


@dataclass
class JournalScan:
    """Result of reading a journal file.

    Attributes:
        records: every valid record, in append order.
        valid_size: byte offset just past the last complete valid frame —
            the position a writer should truncate to before appending.
        torn_bytes: size of the tolerated torn tail (0 for a clean file).
    """

    records: list[dict] = field(default_factory=list)
    valid_size: int = 0
    torn_bytes: int = 0


def scan_journal(path: str | Path) -> JournalScan:
    """Read ``path``, tolerating a torn tail, rejecting corruption.

    Raises:
        JournalCorruptionError: a complete frame's CRC mismatched or its
            header was implausible (length beyond :data:`_MAX_RECORD_BYTES`
            or payload not valid JSON).
        FileNotFoundError: the journal does not exist.
    """
    data = Path(path).read_bytes()
    scan = JournalScan()
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            scan.torn_bytes = total - offset
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            raise JournalCorruptionError(
                f"{path}: frame at offset {offset} claims {length} payload "
                f"bytes (cap {_MAX_RECORD_BYTES}); journal is corrupt")
        body_start = offset + _HEADER.size
        if total - body_start < length:
            scan.torn_bytes = total - offset
            break
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise JournalCorruptionError(
                f"{path}: CRC mismatch in complete frame at offset "
                f"{offset}; journal is corrupt")
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JournalCorruptionError(
                f"{path}: frame at offset {offset} passed CRC but is not "
                f"valid JSON: {exc}") from exc
        scan.records.append(record)
        offset = body_start + length
        scan.valid_size = offset
    return scan


def encode_record(record: dict) -> bytes:
    """The full frame (header + payload) for ``record``."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > _MAX_RECORD_BYTES:
        raise ValueError(f"journal record too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class JournalWriter:
    """Append-only, fsync-per-record journal writer.

    Opening scans the existing file (if any): corruption raises, a torn
    tail is truncated away, and appends continue after the last valid
    frame. The file and its directory entry are fsynced on creation, and
    every :meth:`append` is flushed + fsynced before returning — a record
    handed to the journal is durable before the caller acknowledges the
    event it describes.
    """

    def __init__(self, path: str | Path, fsync: bool = True):
        self._path = Path(path)
        self._fsync = fsync
        self._handle: BinaryIO | None = None
        self._size = 0
        self.records_written = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def size(self) -> int:
        """Current byte offset at the end of the valid journal."""
        return self._size

    def open(self) -> JournalScan:
        """Open (creating if needed), truncate any torn tail, and return
        the scan of what was already on disk."""
        if self._handle is not None:
            raise RuntimeError("journal already open")
        existed = self._path.exists()
        if existed:
            scan = scan_journal(self._path)
        else:
            scan = JournalScan()
        handle = open(self._path, "ab")
        try:
            if existed and scan.torn_bytes:
                handle.truncate(scan.valid_size)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        self._size = scan.valid_size
        if not existed and self._fsync:
            fsync_dir(self._path.parent)
        return scan

    def append(self, record: dict) -> int:
        """Durably append one record; returns the offset past the frame.

        Hosts the ``journal-append`` crash point: when armed for its fatal
        visit, only a prefix of the frame reaches the file (flushed so the
        bytes are really on disk) before the process dies — producing the
        torn tail the recovery path must tolerate.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open")
        frame = encode_record(record)
        if crash_imminent("journal-append"):
            # Stage the realistic torn state *before* dying: half a frame,
            # flushed so the bytes truly reach the file.
            torn = frame[:max(1, len(frame) // 2)]
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        # Counts every visit; does not return on the fatal one (SIGKILL
        # mode) or raises (REPRO_CRASH_MODE=raise).
        crash_point("journal-append")
        self._handle.write(frame)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._size += len(frame)
        self.records_written += 1
        return self._size

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        if self._handle is None:
            self.open()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
