"""The staged round pipeline the simulator drives (paper §III / Fig. 3).

One scheduling round runs through six ordered stages::

    collect ──► schedule ──► admit ──► execute ──► settle ──► account
    snapshot    consult       assert     apply       queue      verify
    the queue   scheduler,    lifecycle  plans,      waits,     network
    into a      fall back     moves,     schedule    round      invariants
    context     on stalls     announce   flow        log,
                              the round  finishes    barrier

The pipeline owns all round state (queue, round counters, deferral
budgets, per-event outstanding-flow counts) and every event's position in
the :class:`~repro.sim.lifecycle.EventLifecycle` state machine — each move
is asserted legal and announced on the hook bus as a
:class:`~repro.sim.hooks.StateTransition`. Cross-cutting concerns never
appear here: metrics, trace logging, faults and churn all observe the
round through :mod:`repro.sim.hooks` subscriptions.

Behavior contract: the staged pipeline is byte-identical to the
pre-refactor monolithic ``UpdateSimulator`` — same engine scheduling
order (sequence numbers), same RNG draw order, same metrics, same trace
records. The schedule-pin tests enforce this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.exceptions import (
    ControlPlaneError,
    PlacementError,
    SimulationError,
)
from repro.sched.base import (
    Admission,
    QueuedEvent,
    RoundDecision,
    Scheduler,
    SchedulingContext,
)
from repro.sched.shard import IndexedQueue
from repro.sim.config import SimulationConfig
from repro.sim.hooks import (
    EventAdmitted,
    EventArrived,
    EventCompleted,
    EventDeferred,
    EventDropped,
    ExecutionFailed,
    FlowFinished,
    HookBus,
    PostRound,
    PreRound,
    StateTransition,
)
from repro.sim.lifecycle import EventLifecycle, EventState, TransitionRecord

if TYPE_CHECKING:
    from repro.core.event import UpdateEvent
    from repro.core.executor import PlanExecutor
    from repro.core.planner import EventPlanner
    from repro.network.network import Network
    from repro.sim.engine import SimulationEngine
    from repro.sim.timing import TimingModel


@dataclass
class RoundLog:
    """Diagnostic record of one scheduling round.

    The ``cache_*`` fields mirror the scheduler's probe-cache counters for
    the round (all zero for schedulers without a probe cache); benchmarks
    use them to report per-round hit rates. ``probes_skipped``/``fallback``
    mirror the learned-ranking telemetry the same way (zero/False for
    exact schedulers). ``total_stages``/``max_transient_overload`` mirror
    the plan-compilation telemetry: summed compiled stages over the
    round's successful admissions (one per admission under atomic mode)
    and the worst fractional transient capacity overshoot among them.
    """

    index: int
    start_time: float
    plan_time: float
    admitted_events: tuple[str, ...]
    planning_ops: int
    total_cost: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    probes_skipped: int = 0
    fallback: bool = False
    total_stages: int = 0
    max_transient_overload: float = 0.0


class RoundPipeline:
    """Owns the round state machine; the simulator merely drives it.

    Args:
        engine: the discrete-event engine (clock + calendar queue).
        scheduler: inter-event scheduling policy consulted each round.
        planner: event planner used by the stall fallback.
        timing: converts planning ops into simulated plan time.
        executor: applies admitted plans (may retry / fail).
        network: the live network state.
        config: simulator knobs.
        rng: the planner RNG (path tiebreaks) shared with the scheduler
            context.
        hooks: the bus every stage announces on.
        lifecycle: the event-lifecycle registry asserting move legality.
    """

    def __init__(self, *, engine: SimulationEngine, scheduler: Scheduler,
                 planner: EventPlanner, timing: TimingModel,
                 executor: PlanExecutor, network: Network,
                 config: SimulationConfig, rng: random.Random,
                 hooks: HookBus, lifecycle: EventLifecycle):
        self._engine = engine
        self._scheduler = scheduler
        self._planner = planner
        self._timing = timing
        self._executor = executor
        self._network = network
        self._config = config
        self._rng = rng
        self._hooks = hooks
        self._lifecycle = lifecycle
        # Fenwick-indexed: O(log n) removal/indexing instead of list.remove's
        # O(n) scan — iteration order is identical to the list it replaced.
        self._queue: IndexedQueue = IndexedQueue()
        self._round_active = False
        self._round_outstanding = 0
        self._round_index = 0
        self._event_outstanding: dict[str, int] = {}
        self._event_done_queueing: set[str] = set()
        self._rounds: list[RoundLog] = []
        self._events_remaining = 0
        self._enqueue_seq = 0
        self._deferral_counts: dict[str, int] = {}

    # ------------------------------------------------------------- queries

    @property
    def rounds(self) -> list[RoundLog]:
        """Per-round diagnostic log (copy)."""
        return list(self._rounds)

    @property
    def scheduler(self) -> Scheduler:
        """The scheduling policy this pipeline consults each round."""
        return self._scheduler

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def round_count(self) -> int:
        """Rounds logged so far (no copy, unlike ``len(self.rounds)``)."""
        return len(self._rounds)

    def queued_event_ids(self) -> tuple[str, ...]:
        """Event ids currently waiting, in queue order."""
        return tuple(q.event.event_id for q in self._queue)

    @property
    def events_remaining(self) -> int:
        """Events enqueued but not yet completed or dropped."""
        return self._events_remaining

    @property
    def round_outstanding(self) -> int:
        """Flows whose completion the current round still waits on."""
        return self._round_outstanding

    @round_outstanding.setter
    def round_outstanding(self, value: int) -> None:
        # Tests pin this to simulate a mid-round state.
        self._round_outstanding = value

    @property
    def lifecycle(self) -> EventLifecycle:
        return self._lifecycle

    # ----------------------------------------------------- queue admission

    def enqueue(self, event: UpdateEvent, origin: str = "submitted",
                kick: bool = True) -> None:
        """Admit ``event`` into the waiting queue and kick a round check.

        Used for both trace arrivals (``origin="submitted"``) and
        simulator-generated repair events (``origin="repair"``). The round
        check is deferred to an engine event at the current time so that
        simultaneous arrivals (a batch queued at t=0) are all visible to
        the first scheduling decision. Bulk loaders (the scale bench)
        pass ``kick=False`` and call :meth:`schedule_round` once after the
        batch, avoiding one engine event per enqueued event.
        """
        record = self._lifecycle.register(event.event_id, self._engine.now,
                                          origin=origin)
        self._hooks.emit(StateTransition(record))
        self._queue.append(QueuedEvent(event, seq=self._enqueue_seq))
        self._enqueue_seq += 1
        self._hooks.emit(EventArrived(now=self._engine.now,
                                      event_id=event.event_id,
                                      flow_count=len(event.flows),
                                      origin=origin))
        self._events_remaining += 1
        if kick:
            self.schedule_round()

    def schedule_round(self) -> None:
        """Schedule a round check at the current simulated time."""
        self._engine.schedule_callback(self._engine.now, self.maybe_round,
                                       tag="round")

    # ---------------------------------------------------------- the stages

    def maybe_round(self) -> None:
        """Run one round through the staged pipeline (no-op if a round is
        already active or the queue is empty)."""
        if self._round_active or not self._queue:
            return
        self._round_active = True
        ctx = self._collect()
        scope = self._scheduler.probe_scope(ctx)
        decision = self._schedule(ctx, scope)
        plan_time = self._timing.plan_time(decision.planning_ops)
        if not self._admit(ctx, decision, plan_time, scope):
            return
        admitted, total_cost, round_end, stages, overload = \
            self._execute(decision, plan_time)
        self._settle(decision, plan_time, admitted, total_cost, round_end,
                     total_stages=stages, max_transient_overload=overload)
        self._account()

    def _collect(self) -> SchedulingContext:
        """Stage 1 — snapshot the queue into a scheduling context.

        With ``queue_snapshots`` off (scale mode) the context carries the
        live indexed queue by reference instead of an O(n) list copy; no
        stage mutates the queue between collect and admit, so schedulers
        observe the same sequence either way.
        """
        queue: "list[QueuedEvent] | IndexedQueue" = self._queue
        if self._config.queue_snapshots:
            queue = list(self._queue)
        return SchedulingContext(now=self._engine.now, queue=queue,
                                 planner=self._planner,
                                 network=self._network, rng=self._rng)

    def _schedule(self, ctx: SchedulingContext,
                  scope: "list[QueuedEvent] | IndexedQueue",
                  ) -> RoundDecision:
        """Stage 2 — consult the scheduler; fall back on terminal stalls.

        Every event in the scheduler's probe scope moves QUEUED→PROBED for
        the consultation; the admit stage settles each into ADMITTED or
        back to QUEUED. The scope is the whole queue for classic policies
        and only the probe candidates under the sharded wrapper (O(α)
        lifecycle traffic per round instead of O(queue)).
        """
        now = self._engine.now
        for queued in scope:
            self._advance(queued.event.event_id, EventState.PROBED, now)
        decision = self._scheduler.select(ctx)
        if decision.empty and self.should_fallback():
            decision = self.fallback_decision(ctx, decision)
        return decision

    def _admit(self, ctx: SchedulingContext, decision: RoundDecision,
               plan_time: float,
               scope: "list[QueuedEvent] | IndexedQueue") -> bool:
        """Stage 3 — commit lifecycle moves and announce the round.

        Returns False when the decision is empty: the round is abandoned
        (after deadlock/stall checks) and nothing executes.
        """
        now = self._engine.now
        admitted_ids = set()
        for admission in decision.admissions:
            event_id = admission.queued.event.event_id
            if self._lifecycle.state(event_id) is EventState.QUEUED:
                # The stall fallback may admit an event outside the probe
                # scope (narrowed scopes only); route it through PROBED so
                # the lifecycle assertion holds.
                self._advance(event_id, EventState.PROBED, now)
            decision.transitions.append(
                self._advance(event_id, EventState.ADMITTED, now))
            admitted_ids.add(event_id)
        for queued in scope:
            event_id = queued.event.event_id
            if event_id not in admitted_ids:
                self._advance(event_id, EventState.QUEUED, now)
        self._round_index += 1
        self._hooks.emit(PreRound(
            now=now, index=self._round_index,
            admitted=tuple(a.queued.event.event_id
                           for a in decision.admissions),
            planning_ops=decision.planning_ops, plan_time=plan_time,
            queue_depth=len(self._queue),
            cache_hits=decision.cache_hits,
            cache_misses=decision.cache_misses,
            cache_invalidations=decision.cache_invalidations,
            probes_skipped=decision.probes_skipped,
            prediction_samples=decision.prediction_samples,
            prediction_error_sum=decision.prediction_error_sum,
            fallback=decision.fallback))
        if self._round_index > self._config.max_rounds:
            raise SimulationError(
                f"exceeded {self._config.max_rounds} scheduling rounds")
        if decision.empty:
            # An empty decision still consumed a round — PreRound above
            # charged the round and its plan time — so the round must also
            # settle: log it and emit PostRound. Returning early here used
            # to leave ``RunMetrics.rounds`` ahead of ``len(rounds)`` and
            # never charge waiting events the round they just waited
            # through (the empty-round accounting drift the lifecycle
            # auditor turns into a hard failure).
            self._log_round(decision, plan_time, admitted_ids=(),
                            total_cost=0.0)
            self._hooks.emit(PostRound(
                now=now, index=self._round_index,
                waiting=self._waiting_snapshot()))
            self._round_active = False
            self._check_deadlock()
            return False
        return True

    def _execute(self, decision: RoundDecision, plan_time: float,
                 ) -> tuple[list[str], float, float, int, float]:
        """Stage 4 — apply the admitted plans and schedule flow finishes.

        Returns ``(admitted_ids, total_cost, round_end, total_stages,
        max_transient_overload)`` for the settle stage; execution failures
        defer their events in place.
        """
        setup_barrier = self._config.round_barrier == "setup"
        now = self._engine.now
        exec_start = now + plan_time
        admitted_ids: list[str] = []
        total_cost = 0.0
        round_end = exec_start
        total_stages = 0
        max_overload = 0.0
        for admission in decision.admissions:
            event_id = admission.queued.event.event_id
            self._advance(event_id, EventState.EXECUTING, now)
            try:
                record = self._executor.execute(self._network, admission.plan,
                                                exec_start)
            except (ControlPlaneError, PlacementError) as exc:
                # Rule installs / migration drains exhausted their retries
                # (or the state no longer admits the plan). The executor
                # already rolled the network back; charge the wasted
                # simulated time to the round and requeue the event.
                round_end = max(round_end,
                                exec_start + getattr(exc, "elapsed", 0.0))
                self._exec_failed(admission, exc)
                continue
            admitted_ids.append(event_id)
            total_cost += admission.plan.cost
            round_end = max(round_end, record.finish_setup_time)
            total_stages += record.stage_count
            max_overload = max(max_overload,
                               record.max_transient_overload)
            self._hooks.emit(EventAdmitted(
                exec_start=exec_start, event_id=event_id,
                cost=admission.plan.cost,
                migrations=admission.plan.migration_count,
                flows=len(admission.plan.flow_plans),
                setup_done_time=record.finish_setup_time,
                stage_count=record.stage_count,
                max_transient_overload=record.max_transient_overload,
                epsilon=record.epsilon))
            admitted_flow_ids = set()
            for flow_plan in admission.plan.flow_plans:
                flow = flow_plan.flow
                admitted_flow_ids.add(flow.flow_id)
                finish = record.finish_setup_time + flow.service_time
                if not setup_barrier:
                    self._round_outstanding += 1
                self._event_outstanding[event_id] = \
                    self._event_outstanding.get(event_id, 0) + 1
                self._engine.schedule_callback(
                    finish,
                    lambda f=flow.flow_id, e=event_id:
                        self._flow_finished(f, e),
                    tag=f"flow-finish:{event_id}/{flow.flow_id}")
            # Queue bookkeeping: drop admitted flows; drop drained events.
            admission.queued.remaining = [
                f for f in admission.queued.remaining
                if f.flow_id not in admitted_flow_ids]
            if admission.queued.done:
                self._queue.remove(admission.queued)
                self._event_done_queueing.add(event_id)
                if setup_barrier:
                    # Under the pipelined reading the event is "complete"
                    # once its update is fully applied; its flows keep
                    # transmitting as ordinary traffic.
                    self._complete(event_id, record.finish_setup_time)
            else:
                # Partial admission (flow-level baseline): the event keeps
                # queueing with its remaining flows.
                self._advance(event_id, EventState.QUEUED, now)
        return admitted_ids, total_cost, round_end, total_stages, max_overload

    def _settle(self, decision: RoundDecision, plan_time: float,
                admitted_ids: list[str], total_cost: float,
                round_end: float, total_stages: int = 0,
                max_transient_overload: float = 0.0) -> None:
        """Stage 5 — log the round, charge queue waits, arm the barrier.

        The round log is appended *before* PostRound goes out so that
        PostRound subscribers (the lifecycle auditor above all) observe
        ``len(rounds) == index`` — the round they are told about is already
        on the books.
        """
        setup_barrier = self._config.round_barrier == "setup"
        self._log_round(decision, plan_time, admitted_ids=admitted_ids,
                        total_cost=total_cost, total_stages=total_stages,
                        max_transient_overload=max_transient_overload)
        self._hooks.emit(PostRound(
            now=self._engine.now, index=self._round_index,
            waiting=self._waiting_snapshot()))
        if setup_barrier:
            self._engine.schedule_callback(round_end, self._end_round,
                                           tag="end-round")
        elif self._round_outstanding == 0:
            # Every admission failed and rolled back: no flow transmission
            # will end this round, so end it once the wasted retry time has
            # elapsed (the deferred events are already back in the queue).
            self._engine.schedule_callback(round_end, self._end_round,
                                           tag="end-round")

    def _log_round(self, decision: RoundDecision, plan_time: float,
                   admitted_ids: tuple[str, ...] | list[str],
                   total_cost: float, total_stages: int = 0,
                   max_transient_overload: float = 0.0) -> None:
        """Append the :class:`RoundLog` for the round just decided.

        Every round that emitted PreRound must land here exactly once —
        empty rounds included — so ``len(rounds)`` tracks the round index
        and the metrics collector's round count.
        """
        self._rounds.append(RoundLog(
            index=self._round_index, start_time=self._engine.now,
            plan_time=plan_time, admitted_events=tuple(admitted_ids),
            planning_ops=decision.planning_ops, total_cost=total_cost,
            cache_hits=decision.cache_hits,
            cache_misses=decision.cache_misses,
            cache_invalidations=decision.cache_invalidations,
            probes_skipped=decision.probes_skipped,
            fallback=decision.fallback,
            total_stages=total_stages,
            max_transient_overload=max_transient_overload))

    def _waiting_snapshot(self) -> tuple[str, ...] | None:
        """PostRound's ``waiting`` payload: the queued event ids, or None.

        ``queue_snapshots=False`` (scale mode) skips the O(queue) tuple —
        the per-event ``rounds_waited`` diagnostic then stays zero, which
        no serialized metric consumes.
        """
        if not self._config.queue_snapshots:
            return None
        return tuple(q.event.event_id for q in self._queue)

    def _account(self) -> None:
        """Stage 6 — verify network bookkeeping when configured."""
        if self._config.verify_invariants:
            self._network.check_invariants()

    def _end_round(self) -> None:
        self._round_active = False
        self.maybe_round()

    # ------------------------------------------------------ stall handling

    def should_fallback(self) -> bool:
        """Fallback only when waiting cannot help: nothing is running and no
        future engine event (arrival, churn) will change the state."""
        return (self._config.stall_fallback
                and self._round_outstanding == 0
                and self._engine.pending == 0)

    def fallback_decision(self, ctx: SchedulingContext,
                          prior: RoundDecision) -> RoundDecision:
        """Admit the first feasible queued event in arrival order.

        ``prior`` is the scheduler's empty decision; its planning ops and
        probe-cache counters carry over into the fallback decision.
        """
        ops = prior.planning_ops
        for queued in ctx.queue:
            plan = self._planner.plan_event(
                self._network, queued.subevent(queued.remaining), self._rng,
                commit=False)
            ops += plan.planning_ops
            if plan.feasible:
                return RoundDecision(
                    admissions=[Admission(queued=queued, plan=plan)],
                    planning_ops=ops,
                    cache_hits=prior.cache_hits,
                    cache_misses=prior.cache_misses,
                    cache_invalidations=prior.cache_invalidations)
        return RoundDecision(planning_ops=ops,
                             cache_hits=prior.cache_hits,
                             cache_misses=prior.cache_misses,
                             cache_invalidations=prior.cache_invalidations)

    def _check_deadlock(self) -> None:
        if self._round_outstanding != 0 or self._engine.pending != 0:
            return
        if self._config.max_deferrals is not None:
            self._handle_stall()
            return
        raise SimulationError(
            f"deadlock: {len(self._queue)} events queued, nothing "
            f"running, and no event can be placed (first blocked: "
            f"{self._queue[0].event.event_id})")

    def _handle_stall(self) -> None:
        """Degrade gracefully when no queued event can ever be placed.

        Nothing is running and no future engine event can change the state
        (a post-failure partition is the canonical case), so waiting is
        useless. Every stalled event is charged one deferral; events past
        ``max_deferrals`` are dropped with accounting. Each pass strictly
        increases deferral counts, so the stall resolves within
        ``max_deferrals + 1`` passes instead of burning ``max_rounds`` —
        and without tripping the stall fallback, which already ran and
        found nothing feasible.
        """
        for queued in list(self._queue):
            self._defer(queued, requeue=False)
        if self._queue:
            self.schedule_round()

    # ------------------------------------------------------ defer and drop

    def _exec_failed(self, admission: Admission, exc: Exception) -> None:
        """An admitted plan's execution failed terminally; requeue it.

        The executor has already rolled the network back to its
        pre-attempt state (and emitted the retry accounting), so the
        queued event (whose ``remaining`` flows were never trimmed — that
        happens only after a successful execute) simply goes back through
        :meth:`_defer`.
        """
        event_id = admission.queued.event.event_id
        self._hooks.emit(ExecutionFailed(
            now=self._engine.now, event_id=event_id,
            attempts=getattr(exc, "attempts", 1), reason=str(exc)))
        self._defer(admission.queued)

    def _defer(self, queued: QueuedEvent, requeue: bool = True) -> None:
        """Charge ``queued`` one deferral; requeue or drop it.

        ``requeue`` moves the event to the back of the queue with a fresh
        sequence number, so FIFO treats it as newly arrived — a failed
        event must not wedge the queue head. Stall passes keep the order
        (``requeue=False``): every stalled event is charged together and
        relative order carries no information.
        """
        event_id = queued.event.event_id
        count = self._deferral_counts.get(event_id, 0) + 1
        self._deferral_counts[event_id] = count
        now = self._engine.now
        self._advance(event_id, EventState.DEFERRED, now)
        self._hooks.emit(EventDeferred(now=now, event_id=event_id,
                                       count=count))
        limit = self._config.max_deferrals
        if limit is not None and count > limit:
            self._drop_event(queued)
            return
        self._advance(event_id, EventState.QUEUED, now)
        if requeue:
            self._queue.remove(queued)
            queued.seq = self._enqueue_seq
            self._enqueue_seq += 1
            self._queue.append(queued)

    def _drop_event(self, queued: QueuedEvent) -> None:
        """Evict an event that exhausted its requeue deferrals.

        Its never-placed flows' demand is accounted as stranded traffic;
        any cost it realized through earlier partial admissions stays in
        the metrics (that traffic really moved). The probe cache forgets
        the event's keys so they stop occupying slots.
        """
        event_id = queued.event.event_id
        self._queue.remove(queued)
        stranded = sum(flow.demand for flow in queued.remaining)
        self._advance(event_id, EventState.DROPPED, self._engine.now)
        self._hooks.emit(EventDropped(now=self._engine.now,
                                      event_id=event_id,
                                      stranded_demand=stranded))
        self._events_remaining -= 1
        # DROPPED is terminal: release the per-event bookkeeping, exactly
        # as _complete does. (The outstanding-flow count, if an earlier
        # partial admission left flows in flight, removes itself when the
        # last of them finishes.)
        self._deferral_counts.pop(event_id, None)
        self._event_done_queueing.discard(event_id)
        self._forget_scheduler_state(event_id)

    # ----------------------------------------------------------- completion

    def _flow_finished(self, flow_id: str, event_id: str) -> None:
        """An admitted flow's transmission ended (engine callback).

        A mid-round fault may have stranded (removed) the flow; its
        replacement travels in a repair event, but the admission barrier
        still releases here at the nominal finish time. Identified by
        ``flow_id`` alone (not the Flow object) so the pending callback is
        fully described by its engine tag — the property checkpoint
        restore uses to rebuild the heap.
        """
        setup_barrier = self._config.round_barrier == "setup"
        if self._network.has_flow(flow_id):
            self._network.remove(flow_id)
        # Drop the outstanding-count entry at zero instead of parking a
        # zero forever: the dict must not grow one entry per event over an
        # unbounded (service-mode) run.
        remaining = self._event_outstanding[event_id] - 1
        if remaining:
            self._event_outstanding[event_id] = remaining
        else:
            del self._event_outstanding[event_id]
        self._hooks.emit(FlowFinished(now=self._engine.now,
                                      flow_id=flow_id,
                                      event_id=event_id))
        if setup_barrier:
            # Completion was recorded at setup time; flow drain only
            # frees bandwidth (and may unblock a waiting round).
            self.maybe_round()
            return
        if remaining == 0 and event_id in self._event_done_queueing:
            self._complete(event_id, self._engine.now)
        self._round_outstanding -= 1
        if self._round_outstanding == 0:
            self._round_active = False
            self.maybe_round()

    def _complete(self, event_id: str, time: float) -> None:
        """Mark an event complete (lifecycle terminal + hook).

        Terminal states release the event's per-event bookkeeping
        (deferral count, done-queueing membership; the outstanding-flow
        count removes itself when it hits zero) — otherwise every event
        ever processed leaves a dict entry behind, which an unbounded
        service-mode run turns into a leak. The probe cache is purged
        here exactly as on drop: a completed event's keys can never hit
        again (its id has left the queue for good), yet before this purge
        they lingered until LRU eviction — on long service runs the cache
        was effectively ``maxsize`` stale entries slowing every store.
        """
        self._advance(event_id, EventState.COMPLETED, time)
        self._hooks.emit(EventCompleted(now=time, event_id=event_id))
        self._events_remaining -= 1
        self._event_done_queueing.discard(event_id)
        self._deferral_counts.pop(event_id, None)
        self._forget_scheduler_state(event_id)

    # -------------------------------------------------------- checkpointing

    def export_state(self) -> dict[str, Any]:
        """JSON-ready encoding of all round/queue state for a checkpoint.

        Queue entries carry the full event payload plus the *ids* of the
        remaining flows (rebuilt by filtering ``event.flows``, preserving
        order) and the enqueue seq. The round log is exported whole: it
        already lives unbounded in memory for the run's lifetime, and the
        auditor cross-checks its length against the round index.
        """
        from dataclasses import asdict
        return {
            "queue": [{"event": q.event.to_payload(),
                       "remaining": [f.flow_id for f in q.remaining],
                       "seq": q.seq}
                      for q in self._queue],
            "round_active": self._round_active,
            "round_outstanding": self._round_outstanding,
            "round_index": self._round_index,
            "event_outstanding": dict(self._event_outstanding),
            "event_done_queueing": sorted(self._event_done_queueing),
            "rounds": [asdict(r) for r in self._rounds],
            "events_remaining": self._events_remaining,
            "enqueue_seq": self._enqueue_seq,
            "deferral_counts": dict(self._deferral_counts),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite this pipeline's state from :meth:`export_state`.

        Lifecycle registration and hook emission are *not* replayed — the
        lifecycle registry restores separately and the events were already
        announced in the original run.
        """
        from repro.core.event import UpdateEvent as _UpdateEvent
        if len(self._queue) or self._rounds or self._round_index:
            raise SimulationError("restore_state requires a fresh pipeline")
        for entry in state["queue"]:
            event = _UpdateEvent.from_payload(entry["event"])
            keep = set(entry["remaining"])
            remaining = [f for f in event.flows if f.flow_id in keep]
            self._queue.append(QueuedEvent(event, remaining=remaining,
                                           seq=int(entry["seq"])))
        self._round_active = bool(state["round_active"])
        self._round_outstanding = int(state["round_outstanding"])
        self._round_index = int(state["round_index"])
        self._event_outstanding = {
            eid: int(n) for eid, n in state["event_outstanding"].items()}
        self._event_done_queueing = set(state["event_done_queueing"])
        self._rounds = [RoundLog(**{**payload,
                                    "admitted_events":
                                        tuple(payload["admitted_events"])})
                        for payload in state["rounds"]]
        self._events_remaining = int(state["events_remaining"])
        self._enqueue_seq = int(state["enqueue_seq"])
        self._deferral_counts = {
            eid: int(n) for eid, n in state["deferral_counts"].items()}

    def resolve_tag(self, tag: str) -> Callable[[], None] | None:
        """Rebuild the engine callback a pipeline-owned tag denotes.

        Returns None for tags the pipeline does not own. Covers the three
        pipeline tags: ``round``, ``end-round``, and
        ``flow-finish:<event_id>/<flow_id>``.
        """
        if tag == "round":
            return self.maybe_round
        if tag == "end-round":
            return self._end_round
        if tag.startswith("flow-finish:"):
            event_id, _, flow_id = tag[len("flow-finish:"):].partition("/")
            if not event_id or not flow_id:
                raise SimulationError(f"malformed flow-finish tag {tag!r}")
            return lambda f=flow_id, e=event_id: self._flow_finished(f, e)
        return None

    # -------------------------------------------------------------- helpers

    def _forget_scheduler_state(self, event_id: str) -> None:
        """Purge scheduler-side memos of a terminally departed event.

        Covers the probe cache and, for learned schedulers, the feature
        memo — both key by event id, and a completed/dropped id can never
        recur, so lingering entries would only crowd out live ones on
        long service-mode runs. Duck-typed: schedulers without either
        attribute (or the sharded wrapper delegating to an inner without
        them) are no-ops.
        """
        cache = getattr(self._scheduler, "cache", None)
        if cache is not None:
            cache.forget_event(event_id)
        extractor = getattr(self._scheduler, "extractor", None)
        if extractor is not None:
            extractor.forget_event(event_id)

    def _advance(self, event_id: str, to: EventState,
                 at: float) -> TransitionRecord:
        record = self._lifecycle.advance(event_id, to, at)
        self._hooks.emit(StateTransition(record))
        return record
