"""Copy-on-write what-if overlay over a :class:`NetworkState`.

Cost probing is the inner loop of LMTF/P-LMTF: every scheduling round the
scheduler plans ``α+1`` candidate events against the *current* network just to
compare their costs, then executes at most a few of them. Copying the whole
network per probe would dominate runtime, so a :class:`NetworkView` overlays
only the links and flows the probe touches and can be thrown away for free.

Views nest: P-LMTF builds a batch view on the live network, probes each
candidate on a child view of the batch view, and commits the child when the
candidate is admitted to the batch.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    RuleSpaceError,
    UnknownFlowError,
)
from repro.core.flow import Flow, Placement
from repro.network.link import EPS, LinkId, format_link, is_simple_path, path_links
from repro.network.state import NetworkState


class NetworkView(NetworkState):
    """A mutable overlay on a base network state.

    Mutations are recorded locally and in an operation log; :meth:`commit`
    replays the log onto the base. Discarding the view discards the what-if.
    """

    def __init__(self, base: NetworkState):
        self._base = base
        self._used_over: dict[LinkId, float] = {}
        self._flows_over: dict[LinkId, set[str]] = {}
        self._rules_over: dict[str, int] = {}
        # flow_id -> Placement, or None as a tombstone for a removed flow.
        self._placements_over: dict[str, Placement | None] = {}
        # Version deltas: local mutation counts layered over base versions.
        self._ver_over: dict[LinkId, int] = {}
        self._node_ver_over: dict[str, int] = {}
        self._log: list[tuple] = []

    # ------------------------------------------------------------- structure

    @property
    def base(self) -> NetworkState:
        return self._base

    @property
    def graph(self):
        """The topology graph of the ultimate base network."""
        node = self._base
        while isinstance(node, NetworkView):
            node = node._base
        return node.graph  # type: ignore[attr-defined]

    def links(self) -> Iterable[LinkId]:
        return self._base.links()

    # ----------------------------------------------------------------- reads

    def capacity(self, u: str, v: str) -> float:
        return self._base.capacity(u, v)

    def used(self, u: str, v: str) -> float:
        override = self._used_over.get((u, v))
        if override is not None:
            return override
        return self._base.used(u, v)

    def flows_on_link(self, u: str, v: str) -> frozenset[str]:
        override = self._flows_over.get((u, v))
        if override is not None:
            return frozenset(override)
        return self._base.flows_on_link(u, v)

    def has_flow(self, flow_id: str) -> bool:
        if flow_id in self._placements_over:
            return self._placements_over[flow_id] is not None
        return self._base.has_flow(flow_id)

    def placement(self, flow_id: str) -> Placement:
        if flow_id in self._placements_over:
            placement = self._placements_over[flow_id]
            if placement is None:
                raise UnknownFlowError(f"flow {flow_id!r} removed in view")
            return placement
        return self._base.placement(flow_id)

    @property
    def supports_versions(self) -> bool:
        return self._base.supports_versions

    def link_version(self, u: str, v: str) -> int:
        return self._base.link_version(u, v) + self._ver_over.get((u, v), 0)

    def node_version(self, node: str) -> int:
        return (self._base.node_version(node)
                + self._node_ver_over.get(node, 0))

    def rule_capacity(self, node: str) -> int | None:
        return self._base.rule_capacity(node)

    def rules_used(self, node: str) -> int:
        override = self._rules_over.get(node)
        if override is not None:
            return override
        return self._base.rules_used(node)

    @property
    def tracks_rules(self) -> bool:
        return self._base.tracks_rules

    def flow_ids(self) -> Iterator[str]:
        for fid in self._base.flow_ids():
            if self._placements_over.get(fid, ...) is not None:
                yield fid
        for fid, placement in self._placements_over.items():
            if placement is not None and not self._base.has_flow(fid):
                yield fid

    # ------------------------------------------------------------- mutations

    def _touch_link(self, link: LinkId) -> None:
        if link not in self._used_over:
            self._used_over[link] = self._base.used(*link)
            self._flows_over[link] = set(self._base.flows_on_link(*link))

    def place(self, flow: Flow, path: Sequence[str]) -> Placement:
        if self.has_flow(flow.flow_id):
            raise DuplicateFlowError(f"flow {flow.flow_id!r} already placed")
        placement = Placement(flow=flow, path=tuple(path))
        if not is_simple_path(placement.path):
            raise InvalidPathError(f"path {path!r} is not a simple path")
        for u, v in placement.links:
            # capacity() raises TopologyError for nonexistent links.
            free = self.capacity(u, v) - self.used(u, v)
            if free + EPS < flow.demand:
                raise InsufficientBandwidthError(
                    f"link {format_link((u, v))} has {free:.3f} Mbit/s free "
                    f"in view, flow {flow.flow_id} needs {flow.demand:.3f}",
                    bottleneck=(u, v), deficit=flow.demand - free)
        if self.tracks_rules:
            for node in placement.path:
                limit = self.rule_capacity(node)
                if limit is not None and self.rules_used(node) >= limit:
                    raise RuleSpaceError(
                        f"switch {node} rule table full ({limit} rules) "
                        f"in view, cannot install {flow.flow_id}",
                        switch=node)
        for link in placement.links:
            self._touch_link(link)
            self._used_over[link] += flow.demand
            self._flows_over[link].add(flow.flow_id)
            self._ver_over[link] = self._ver_over.get(link, 0) + 1
        if self.tracks_rules:
            for node in placement.path:
                if self.rule_capacity(node) is not None:
                    self._rules_over[node] = self.rules_used(node) + 1
                    self._node_ver_over[node] = \
                        self._node_ver_over.get(node, 0) + 1
        self._placements_over[flow.flow_id] = placement
        self._log.append(("place", flow, placement.path))
        return placement

    def remove(self, flow_id: str) -> Placement:
        placement = self.placement(flow_id)
        for link in placement.links:
            self._touch_link(link)
            self._used_over[link] = max(
                0.0, self._used_over[link] - placement.flow.demand)
            self._flows_over[link].discard(flow_id)
            self._ver_over[link] = self._ver_over.get(link, 0) + 1
        if self.tracks_rules:
            for node in placement.path:
                if self.rule_capacity(node) is not None:
                    self._rules_over[node] = self.rules_used(node) - 1
                    self._node_ver_over[node] = \
                        self._node_ver_over.get(node, 0) + 1
        self._placements_over[flow_id] = None
        self._log.append(("remove", flow_id))
        return placement

    # ------------------------------------------------------------ life cycle

    def commit(self) -> None:
        """Replay this view's mutations onto the base state.

        After a commit the view is reset and tracks the base afresh, so it
        may be reused for further what-if work.
        """
        for op in self._log:
            if op[0] == "place":
                __, flow, path = op
                self._base.place(flow, path)
            else:
                __, flow_id = op
                self._base.remove(flow_id)
        self.reset()

    def reset(self) -> None:
        """Discard all local mutations, making the view transparent again."""
        self._used_over.clear()
        self._flows_over.clear()
        self._rules_over.clear()
        self._placements_over.clear()
        self._ver_over.clear()
        self._node_ver_over.clear()
        self._log.clear()

    @property
    def dirty(self) -> bool:
        """True when the view holds uncommitted mutations."""
        return bool(self._log)
