"""Copy-on-write what-if overlay over a :class:`NetworkState`.

Cost probing is the inner loop of LMTF/P-LMTF: every scheduling round the
scheduler plans ``α+1`` candidate events against the *current* network just to
compare their costs, then executes at most a few of them. Copying the whole
network per probe would dominate runtime, so a :class:`NetworkView` overlays
only the links and flows the probe touches and can be thrown away for free.

Views nest: P-LMTF builds a batch view on the live network, probes each
candidate on a child view of the batch view, and commits the child when the
candidate is admitted to the batch.

When the base is rooted at an index-backed :class:`Network`, overlays are
keyed by the dense integer link index and every view precomputes its *view
chain* — the list of overlay dicts from itself down to the root — so a read
resolves the whole chain in one flat loop (first overlay hit wins, else one
root column access) instead of recursing a string-keyed call per level.
Reads that must funnel through a non-view root (e.g. a
:class:`~repro.network.footprint.FootprintRecorder`) still do, so footprint
recording semantics are unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import (
    DuplicateFlowError,
    InsufficientBandwidthError,
    InvalidPathError,
    RuleSpaceError,
    UnknownFlowError,
)
from repro.core.flow import Flow, Placement
from repro.network.link import EPS, LinkId, format_link, is_simple_path, path_links
from repro.network.network import Network
from repro.network.state import NetworkState


class NetworkView(NetworkState):
    """A mutable overlay on a base network state.

    Mutations are recorded locally and in an operation log; :meth:`commit`
    replays the log onto the base. Discarding the view discards the what-if.

    Overlay dicts are keyed by the base's integer link index when one
    exists (the common case), by ``LinkId`` otherwise; ``_key_of`` maps a
    link to its overlay key either way.
    """

    def __init__(self, base: NetworkState):
        self._base = base
        # Overlay dicts, keyed by int index (or LinkId without a table).
        # They are cleared in place on reset — child views hold direct
        # references to them in their chain lists.
        self._used_over: dict = {}
        self._flows_over: dict = {}
        self._ver_over: dict = {}
        self._rules_over: dict[str, int] = {}
        # flow_id -> Placement, or None as a tombstone for a removed flow.
        self._placements_over: dict[str, Placement | None] = {}
        self._node_ver_over: dict[str, int] = {}
        self._log: list[tuple] = []
        table = base.link_table()
        self._table = table
        # The view chain: this view, every NetworkView below it, then the
        # root (a Network, a FootprintRecorder, or any other state). Bases
        # are fixed at construction, so the chain never changes.
        chain = [self]
        node = base
        while type(node) is NetworkView:
            chain.append(node)
            node = node._base
        self._root = node
        self._used_maps = [view._used_over for view in chain]
        self._flows_maps = [view._flows_over for view in chain]
        self._ver_maps = [view._ver_over for view in chain]
        self._parent_used_maps = self._used_maps[1:]
        self._parent_flows_maps = self._flows_maps[1:]
        if table is not None:
            if type(node) is Network:
                # Bind the root columns directly: a chain miss costs one
                # flat array access, no method dispatch.
                self._root_used = node._used_col.__getitem__
                self._root_flows = node._flows_col.__getitem__
                self._root_ver = node._ver_col.__getitem__
                self._root_cap = node._cap_col.__getitem__
            else:
                # Root intercepts reads (footprint recorder); capacity is
                # immutable and never recorded, so it may skip the root.
                self._root_used = node.used_idx
                self._root_flows = node.flows_idx
                self._root_ver = node.link_version_idx
                self._root_cap = node.capacity_col().__getitem__
            self._key_of = table.index.get
        else:
            self._root_used = lambda link, r=node: r.used(*link)
            self._root_flows = lambda link, r=node: r.flows_on_link(*link)
            self._root_ver = lambda link, r=node: r.link_version(*link)
            self._root_cap = lambda link, r=node: r.capacity(*link)
            self._key_of = lambda link: link

    # ------------------------------------------------------------- structure

    @property
    def base(self) -> NetworkState:
        return self._base

    @property
    def graph(self):
        """The topology graph of the ultimate base network."""
        node = self._base
        while isinstance(node, NetworkView):
            node = node._base
        return node.graph  # type: ignore[attr-defined]

    def links(self) -> Iterable[LinkId]:
        return self._base.links()

    def link_table(self):
        return self._table

    # ----------------------------------------------------------------- reads

    def capacity(self, u: str, v: str) -> float:
        if self._table is not None:
            i = self._table.index.get((u, v))
            if i is not None:
                return self._root_cap(i)
        return self._base.capacity(u, v)

    def used(self, u: str, v: str) -> float:
        key = self._key_of((u, v))
        if key is None:
            return self._base.used(u, v)  # unknown link: consistent error
        for over in self._used_maps:
            value = over.get(key)
            if value is not None:
                return value
        return self._root_used(key)

    def flows_on_link(self, u: str, v: str) -> frozenset[str]:
        key = self._key_of((u, v))
        if key is None:
            return self._base.flows_on_link(u, v)
        for over in self._flows_maps:
            flows = over.get(key)
            if flows is not None:
                return frozenset(flows)
        return frozenset(self._root_flows(key))

    def has_flow(self, flow_id: str) -> bool:
        if flow_id in self._placements_over:
            return self._placements_over[flow_id] is not None
        return self._base.has_flow(flow_id)

    def placement(self, flow_id: str) -> Placement:
        if flow_id in self._placements_over:
            placement = self._placements_over[flow_id]
            if placement is None:
                raise UnknownFlowError(f"flow {flow_id!r} removed in view")
            return placement
        return self._base.placement(flow_id)

    # ------------------------------------------------------- indexed kernel

    def used_idx(self, i: int) -> float:
        for over in self._used_maps:
            value = over.get(i)
            if value is not None:
                return value
        return self._root_used(i)

    def capacity_idx(self, i: int) -> float:
        return self._root_cap(i)

    def flows_idx(self, i: int) -> set:
        """Flow set of link ``i`` — callers must not mutate it."""
        for over in self._flows_maps:
            flows = over.get(i)
            if flows is not None:
                return flows
        return self._root_flows(i)

    def link_version_idx(self, i: int) -> int:
        version = self._root_ver(i)
        for over in self._ver_maps:
            version += over.get(i, 0)
        return version

    def capacity_col(self):
        return self._root.capacity_col()

    def path_residual(self, path: Sequence[str],
                      ignore: frozenset[str] = frozenset()) -> float:
        idx = getattr(path, "link_idx", None)
        if idx is None or self._table is None or path.table is not self._table:
            return super().path_residual(path, ignore=ignore)
        used_maps = self._used_maps
        root_used, root_cap = self._root_used, self._root_cap
        best = float("inf")
        if not ignore:
            for i in idx:
                for over in used_maps:
                    value = over.get(i)
                    if value is not None:
                        break
                else:
                    value = root_used(i)
                res = root_cap(i) - value
                if res < best:
                    best = res
            return best
        flows_maps, root_flows = self._flows_maps, self._root_flows
        for i in idx:
            for over in used_maps:
                value = over.get(i)
                if value is not None:
                    break
            else:
                value = root_used(i)
            res = root_cap(i) - value
            for over in flows_maps:
                flows = over.get(i)
                if flows is not None:
                    break
            else:
                flows = root_flows(i)
            for fid in flows & ignore:
                res += self.placement(fid).flow.demand
            if res < best:
                best = res
        return best

    def path_residuals(self, path: Sequence[str]) -> list[float]:
        idx = getattr(path, "link_idx", None)
        if idx is None or self._table is None or path.table is not self._table:
            return super().path_residuals(path)
        used_maps = self._used_maps
        root_used, root_cap = self._root_used, self._root_cap
        residuals = []
        for i in idx:
            for over in used_maps:
                value = over.get(i)
                if value is not None:
                    break
            else:
                value = root_used(i)
            res = root_cap(i) - value
            residuals.append(res if res > 0.0 else 0.0)
        return residuals

    # ------------------------------------------------------------ versioning

    @property
    def supports_versions(self) -> bool:
        return self._base.supports_versions

    def link_version(self, u: str, v: str) -> int:
        key = self._key_of((u, v))
        if key is None:
            return self._base.link_version(u, v)
        version = self._root_ver(key)
        for over in self._ver_maps:
            version += over.get(key, 0)
        return version

    def node_version(self, node: str) -> int:
        return (self._base.node_version(node)
                + self._node_ver_over.get(node, 0))

    # ------------------------------------------------------------ rule space

    def rule_capacity(self, node: str) -> int | None:
        return self._base.rule_capacity(node)

    def rules_used(self, node: str) -> int:
        override = self._rules_over.get(node)
        if override is not None:
            return override
        return self._base.rules_used(node)

    @property
    def tracks_rules(self) -> bool:
        return self._base.tracks_rules

    def flow_ids(self) -> Iterator[str]:
        for fid in self._base.flow_ids():
            if self._placements_over.get(fid, ...) is not None:
                yield fid
        for fid, placement in self._placements_over.items():
            if placement is not None and not self._base.has_flow(fid):
                yield fid

    # ------------------------------------------------------------- mutations

    def _touch(self, key) -> None:
        """Populate this view's overlay slot for ``key`` from the chain.

        A parent view's overlay wins over the root, exactly as a recursive
        base read would resolve; a root read funnels through the root's
        accessors (recording, when the root is a footprint recorder).
        """
        for over in self._parent_used_maps:
            value = over.get(key)
            if value is not None:
                break
        else:
            value = self._root_used(key)
        for over in self._parent_flows_maps:
            flows = over.get(key)
            if flows is not None:
                break
        else:
            flows = self._root_flows(key)
        self._used_over[key] = value
        self._flows_over[key] = set(flows)

    def _path_keys(self, placement: Placement) -> Sequence:
        """Overlay keys of a placement's path links, in order."""
        path = placement.path
        idx = getattr(path, "link_idx", None)
        if idx is not None and self._table is not None \
                and path.table is self._table:
            return idx
        key_of = self._key_of
        return [key_of(link) for link in placement.links]

    def place(self, flow: Flow, path: Sequence[str]) -> Placement:
        if self.has_flow(flow.flow_id):
            raise DuplicateFlowError(f"flow {flow.flow_id!r} already placed")
        placement = Placement(
            flow=flow, path=path if isinstance(path, tuple) else tuple(path))
        path_t = placement.path
        demand = flow.demand
        table = self._table
        idx = getattr(path_t, "link_idx", None)
        if idx is not None and table is not None and path_t.table is table:
            # Interned path: feasibility over the chain in one flat loop.
            keys: Sequence = idx
            used_maps = self._used_maps
            root_used, root_cap = self._root_used, self._root_cap
            for pos, i in enumerate(idx):
                for over in used_maps:
                    value = over.get(i)
                    if value is not None:
                        break
                else:
                    value = root_used(i)
                free = root_cap(i) - value
                if free + EPS < demand:
                    u, v = path_t.links[pos]
                    raise InsufficientBandwidthError(
                        f"link {format_link((u, v))} has {free:.3f} Mbit/s "
                        f"free in view, flow {flow.flow_id} needs "
                        f"{flow.demand:.3f}",
                        bottleneck=(u, v), deficit=flow.demand - free)
        else:
            if not is_simple_path(path_t):
                raise InvalidPathError(f"path {path!r} is not a simple path")
            keys = []
            key_of = self._key_of
            for u, v in path_links(path_t):
                # capacity() raises TopologyError for nonexistent links.
                free = self.capacity(u, v) - self.used(u, v)
                if free + EPS < demand:
                    raise InsufficientBandwidthError(
                        f"link {format_link((u, v))} has {free:.3f} Mbit/s "
                        f"free in view, flow {flow.flow_id} needs "
                        f"{flow.demand:.3f}",
                        bottleneck=(u, v), deficit=flow.demand - free)
                keys.append(key_of((u, v)))
        if self.tracks_rules:
            for node in path_t:
                limit = self.rule_capacity(node)
                if limit is not None and self.rules_used(node) >= limit:
                    raise RuleSpaceError(
                        f"switch {node} rule table full ({limit} rules) "
                        f"in view, cannot install {flow.flow_id}",
                        switch=node)
        fid = flow.flow_id
        used_over, flows_over, ver_over = \
            self._used_over, self._flows_over, self._ver_over
        for key in keys:
            if key not in used_over:
                self._touch(key)
            used_over[key] += demand
            flows_over[key].add(fid)
            ver_over[key] = ver_over.get(key, 0) + 1
        if self.tracks_rules:
            for node in path_t:
                if self.rule_capacity(node) is not None:
                    self._rules_over[node] = self.rules_used(node) + 1
                    self._node_ver_over[node] = \
                        self._node_ver_over.get(node, 0) + 1
        self._placements_over[fid] = placement
        self._log.append(("place", flow, path_t))
        return placement

    def remove(self, flow_id: str) -> Placement:
        placement = self.placement(flow_id)
        demand = placement.flow.demand
        used_over, flows_over, ver_over = \
            self._used_over, self._flows_over, self._ver_over
        for key in self._path_keys(placement):
            if key not in used_over:
                self._touch(key)
            value = used_over[key] - demand
            used_over[key] = value if value > 0.0 else 0.0
            flows_over[key].discard(flow_id)
            ver_over[key] = ver_over.get(key, 0) + 1
        if self.tracks_rules:
            for node in placement.path:
                if self.rule_capacity(node) is not None:
                    self._rules_over[node] = self.rules_used(node) - 1
                    self._node_ver_over[node] = \
                        self._node_ver_over.get(node, 0) + 1
        self._placements_over[flow_id] = None
        self._log.append(("remove", flow_id))
        return placement

    # ------------------------------------------------------------ life cycle

    def commit(self) -> None:
        """Replay this view's mutations onto the base state.

        After a commit the view is reset and tracks the base afresh, so it
        may be reused for further what-if work.
        """
        for op in self._log:
            if op[0] == "place":
                __, flow, path = op
                self._base.place(flow, path)
            else:
                __, flow_id = op
                self._base.remove(flow_id)
        self.reset()

    def reset(self) -> None:
        """Discard all local mutations, making the view transparent again.

        The overlay dicts are cleared in place (never re-bound): child
        views hold references to them in their precomputed chains.
        """
        self._used_over.clear()
        self._flows_over.clear()
        self._rules_over.clear()
        self._placements_over.clear()
        self._ver_over.clear()
        self._node_ver_over.clear()
        self._log.clear()

    @property
    def dirty(self) -> bool:
        """True when the view holds uncommitted mutations."""
        return bool(self._log)
