"""Subpackage of repro."""
