"""The abstract network-state interface.

Both the live :class:`~repro.network.network.Network` and the copy-on-write
:class:`~repro.network.view.NetworkView` implement this interface, so the
planner and schedulers can run identically against real state (to execute) or
an overlay (to probe update costs without side effects — the heart of LMTF's
cheap cost sampling).
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import PlacementError, TopologyError
from repro.core.flow import Flow, Placement
from repro.network.link import EPS, LinkId, path_links


class NetworkState(abc.ABC):
    """Read/write view of link residuals and flow placements."""

    # ------------------------------------------------------------------ reads

    @abc.abstractmethod
    def capacity(self, u: str, v: str) -> float:
        """Capacity of directed link ``(u, v)`` in Mbit/s."""

    @abc.abstractmethod
    def used(self, u: str, v: str) -> float:
        """Bandwidth currently consumed on ``(u, v)`` in Mbit/s."""

    @abc.abstractmethod
    def flows_on_link(self, u: str, v: str) -> frozenset[str]:
        """Ids of flows whose path traverses ``(u, v)``."""

    @abc.abstractmethod
    def has_flow(self, flow_id: str) -> bool:
        """True when a flow with this id is placed."""

    @abc.abstractmethod
    def placement(self, flow_id: str) -> Placement:
        """The placement of a flow; raises ``UnknownFlowError`` if absent."""

    @abc.abstractmethod
    def flow_ids(self) -> Iterator[str]:
        """Iterate over the ids of all placed flows."""

    @abc.abstractmethod
    def links(self) -> Iterable[LinkId]:
        """Iterate over all directed links."""

    # --------------------------------------------------------- indexed kernel
    #
    # States rooted at a :class:`~repro.network.network.Network` expose an
    # int-keyed read protocol over the network's interned
    # :class:`~repro.network.link.LinkTable`: ``link_table()`` returns the
    # table (or ``None`` when the state is not index-backed) and
    # ``used_idx``/``capacity_idx``/``flows_idx``/``link_version_idx`` read
    # one link's column slot. Interned candidate paths carry their link
    # indices precomputed, so the hot loops (``path_residual``,
    # ``path_residuals``, place/remove feasibility scans) iterate int tuples
    # instead of hashing string-pair link ids. A state that returns a table
    # must implement the ``*_idx`` reads; the defaults here serve
    # non-indexed states, for which the fast paths simply never activate.

    def link_table(self):
        """The dense link index this state is keyed by, or ``None``."""
        return None

    def link_version_idx(self, i: int) -> int:
        """:meth:`link_version` of the link with table index ``i``."""
        table = self.link_table()
        if table is None:
            raise TypeError(f"{type(self).__name__} is not index-backed")
        return self.link_version(*table.ids[i])

    # ------------------------------------------------------------- versioning
    #
    # Monotonic per-link (and, on rule-tracking states, per-node) version
    # counters let probe results be memoized: a cached plan is provably still
    # valid when every link/node of its read/write footprint reports the same
    # version it had at planning time. States that do not implement
    # versioning report ``supports_versions = False`` and are simply never
    # cached against.

    @property
    def supports_versions(self) -> bool:
        """True when this state maintains mutation version counters."""
        return False

    def link_version(self, u: str, v: str) -> int:
        """Monotonic counter bumped on every mutation touching ``(u, v)``.

        Only meaningful when :attr:`supports_versions` is True; the default
        implementation returns 0 for every link.
        """
        return 0

    def node_version(self, node: str) -> int:
        """Monotonic counter bumped whenever ``node``'s rule-table occupancy
        changes. Always 0 on states that do not track rules."""
        return 0

    # -------------------------------------------------------------- mutations

    @abc.abstractmethod
    def place(self, flow: Flow, path: Sequence[str]) -> Placement:
        """Place ``flow`` on ``path``, consuming its demand on every link.

        Raises:
            InsufficientBandwidthError: some link lacks residual bandwidth.
            DuplicateFlowError: the flow id is already placed.
            InvalidPathError: the path is not a simple path in the graph.
        """

    @abc.abstractmethod
    def remove(self, flow_id: str) -> Placement:
        """Remove a placed flow, releasing its bandwidth; returns the old
        placement. Raises ``UnknownFlowError`` if absent."""

    def reroute(self, flow_id: str, new_path: Sequence[str]) -> Placement:
        """Atomically move a placed flow onto ``new_path``.

        The flow's own demand on shared links is released before feasibility
        is checked, so rerouting onto a path that overlaps the old one is
        allowed as long as the *net* usage fits. For a single unsplittable
        flow this condition coincides with the make-before-break transient
        condition (links shared with the old path already carry the flow;
        new-only links need the full demand either way) — see
        :mod:`repro.core.consistency` for the *plan-level* one-shot
        transition analysis, where the distinction is real. On *any*
        placement failure — insufficient bandwidth, a full rule table, an
        invalid or nonexistent path — the flow is restored to its old path
        before the error propagates, so a failed reroute never loses the
        flow.
        """
        old = self.remove(flow_id)
        try:
            return self.place(old.flow, new_path)
        except (PlacementError, TopologyError):
            self.place(old.flow, old.path)
            raise

    # ------------------------------------------------------------- rule space
    #
    # Default implementations model unlimited rule tables so states that do
    # not track rules (and overlays over them) pay nothing.

    def rule_capacity(self, node: str) -> int | None:
        """Rule-table size of ``node``; None means unlimited."""
        return None

    def rules_used(self, node: str) -> int:
        """Forwarding rules currently installed on ``node``."""
        return 0

    @property
    def tracks_rules(self) -> bool:
        """True when at least one node has a finite rule table."""
        return False

    # ------------------------------------------------------------ conveniences

    def residual(self, u: str, v: str) -> float:
        """Free bandwidth on ``(u, v)`` in Mbit/s (never below zero)."""
        return max(0.0, self.capacity(u, v) - self.used(u, v))

    def path_residual(self, path: Sequence[str],
                      ignore: frozenset[str] = frozenset()) -> float:
        """Bottleneck residual bandwidth along ``path``.

        Args:
            ignore: flow ids whose consumption should be discounted — used to
                ask "would this path fit if those flows were migrated away?".
        """
        best = float("inf")
        for u, v in path_links(path):
            res = self.capacity(u, v) - self.used(u, v)
            if ignore:
                for fid in self.flows_on_link(u, v) & ignore:
                    res += self.placement(fid).flow.demand
            best = min(best, res)
        return best

    def path_residuals(self, path: Sequence[str]) -> list[float]:
        """Per-link residuals along ``path``, in link order.

        Each entry equals :meth:`residual` of that link (clamped at zero),
        so congestion scans (:meth:`~repro.core.migration.MigrationPlanner.
        congested_links`) and deficit estimates can consume one vectorized
        read instead of a string-keyed call per link. Index-backed states
        override this with a flat column loop.
        """
        return [max(0.0, self.capacity(u, v) - self.used(u, v))
                for u, v in path_links(path)]

    def path_feasible(self, path: Sequence[str], demand: float,
                      ignore: frozenset[str] = frozenset()) -> bool:
        """True when every link of ``path`` can absorb ``demand``."""
        return self.path_residual(path, ignore=ignore) + EPS >= demand

    def utilization(self, u: str, v: str) -> float:
        """Fraction of ``(u, v)``'s capacity in use (0 when capacity is 0)."""
        cap = self.capacity(u, v)
        return self.used(u, v) / cap if cap > 0 else 0.0
